#!/usr/bin/env python
"""The main theorem, live: acyclic domains preserve causality; a cycle
breaks it (§4.3, Figure 4).

Part 1 builds the formal Figure-4(a) counterexample on a ring of domains
and shows the checkers agreeing with the proof: every per-domain
restriction is causally clean, yet the global trace is violated.

Part 2 reproduces the same anomaly in the *running MOM*: a ring topology
is booted with validation disabled, a relayed message races a delayed
direct one, and the receiver observes them out of causal order. The same
schedule on an acyclic topology is then shown to be safe.

Run:  python examples/theorem_demo.py
"""

from repro import (
    BusConfig,
    FunctionAgent,
    Membership,
    MessageBus,
    build_violation_trace,
    check_all_domains,
    check_trace,
    find_cycle_path,
    from_domain_map,
    validate_topology,
)
from repro.causality import render_space_time
from repro.errors import CyclicDomainGraphError
from repro.mom.agent import Agent


def formal_counterexample():
    print("=" * 70)
    print("Part 1 - the formal Figure-4(a) counterexample")
    print("=" * 70)
    membership = Membership(
        {"d0": {"r0", "r2"}, "d1": {"r0", "r1"}, "d2": {"r1", "r2"}}
    )
    path = find_cycle_path(membership)
    print(f"domain ring d0-d1-d2 contains the cycle path: {path}")
    trace, direct, chain = build_violation_trace(path, membership)
    print(f"direct message n: {direct}")
    print(f"relay chain     : {chain}")
    print()
    print("space-time diagram (n received after the chain it precedes):")
    print(render_space_time(trace))
    print()
    print("checker verdicts:")
    print(" ", check_trace(trace).summary())
    for report in check_all_domains(trace, membership).values():
        print("   ", report.summary())
    assert not check_trace(trace).respects_causality
    print("=> per-domain causality holds, global causality is broken. QED(half)")
    print()


class _Relay(Agent):
    def __init__(self):
        super().__init__()
        self.next_hop = None

    def react(self, ctx, sender, payload):
        ctx.send(self.next_hop, payload)


def run_race(topology, label, expect_violation):
    order = []
    mom = MessageBus(BusConfig(topology=topology, validate=False, seed=1))
    sink = FunctionAgent(lambda ctx, s, p: order.append(p))
    sink_id = mom.deploy(sink, 2)
    relay = _Relay()
    relay_id = mom.deploy(relay, 1)
    relay.next_hop = sink_id
    starter = FunctionAgent(lambda ctx, s, p: None)

    def boot(ctx):
        ctx.send(sink_id, "n (direct)")
        ctx.send(relay_id, "m (via relay)")

    starter.on_boot = boot
    mom.deploy(starter, 0)

    # delay the direct route between servers 0 and 2
    mom.network.partition(0, 2)
    mom.sim.schedule_at(400.0, mom.network.heal, 0, 2)

    mom.start()
    mom.run_until_idle()
    report = mom.check_app_causality()
    print(f"{label}:")
    print(f"  delivery order at the sink: {order}")
    print(f"  {report.summary()}")
    assert report.respects_causality != expect_violation
    print()
    return order


def live_demo():
    print("=" * 70)
    print("Part 2 - the same race through the running MOM")
    print("=" * 70)

    ring = from_domain_map({"d0": [0, 1], "d1": [1, 2], "d2": [2, 0]})
    try:
        validate_topology(ring)
    except CyclicDomainGraphError as error:
        print(f"boot-time validation would refuse this topology: {error}")
    print("...booting it anyway (validate=False) to exhibit the break:\n")
    run_race(ring, "CYCLIC ring d0-d1-d2", expect_violation=True)

    chain_topology = from_domain_map({"d0": [0, 1], "d1": [1, 2]})
    validate_topology(chain_topology)
    run_race(
        chain_topology,
        "ACYCLIC chain d0-d1 (same schedule, same delays)",
        expect_violation=False,
    )
    print("=> exactly the theorem: the cycle is what breaks causality.")


def main():
    formal_counterexample()
    live_demo()


if __name__ == "__main__":
    main()
