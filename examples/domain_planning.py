#!/usr/bin/env python
"""Domain planning — the §7 "optimal splitting" workflow, end to end.

The paper's conclusion leaves deployment engineers a question: *how do I
split my MOM into domains?* This walkthrough answers it with the tools in
:mod:`repro.topology`:

1. profile the application's communication (here: a trading system whose
   desks talk within regions, with a thin cross-region order flow);
2. derive a decomposition from the traffic (`partition_communication_graph`);
3. compare its §6.2 cost against the flat MOM and a blind √n bus;
4. show what happens when an admin "improves" the map by hand and closes
   a domain cycle — validation rejects it, `repair_topology` fixes it;
5. boot the planned topology and confirm causal delivery on live traffic.

Run:  python examples/domain_planning.py
"""

import random

from repro import (
    Agent,
    BusConfig,
    Domain,
    MessageBus,
    Topology,
    bus_topology,
    single_domain,
    validate_topology,
)
from repro.errors import CyclicDomainGraphError
from repro.topology import (
    CommunicationGraph,
    estimate_traffic_cost,
    partition_communication_graph,
    repair_topology,
)

REGIONS = {
    "europe": [0, 3, 6, 9],
    "americas": [1, 4, 7, 10],
    "asia": [2, 5, 8, 11],
}


def profile_traffic():
    """Step 1 — the application graph (an ADL would provide this, §7)."""
    comm = CommunicationGraph(12)
    for region, servers in REGIONS.items():
        for i, a in enumerate(servers):
            for b in servers[i + 1 :]:
                comm.add_traffic(a, b, 20.0)     # chatty regional flow
    comm.add_traffic(0, 1, 2.0)                  # thin cross-region links
    comm.add_traffic(1, 2, 2.0)
    print("traffic profile: 3 regions x 4 servers, heavy intra-region flow")
    print(f"  {comm!r}")
    return comm


def plan(comm):
    """Steps 2-3 — derive and score the decomposition."""
    planned = partition_communication_graph(comm, max_domain_size=4)
    validate_topology(planned)
    print()
    print("planned decomposition (traffic-aware):")
    print(planned.describe())

    flat_cost = estimate_traffic_cost(single_domain(12), comm)
    blind_cost = estimate_traffic_cost(bus_topology(12), comm)
    smart_cost = estimate_traffic_cost(planned, comm)
    print()
    print("expected causality cost per unit time (§6.2 model):")
    print(f"  flat single domain : {flat_cost:10.0f}")
    print(f"  blind sqrt(n) bus  : {blind_cost:10.0f}")
    print(f"  traffic-aware plan : {smart_cost:10.0f}")
    assert smart_cost < flat_cost
    return planned


def admin_mistake(planned):
    """Step 4 — a hand edit closes a cycle; validation + repair."""
    domains = list(planned.domains)
    first, last = domains[0], domains[-1]
    # "let's also connect the first and last domains directly":
    extra_router = first.servers[0]
    patched = Topology(
        [
            Domain(last.domain_id, last.servers + (extra_router,))
            if d.domain_id == last.domain_id
            else d
            for d in domains
        ]
    )
    print()
    print(f"admin adds S{extra_router} to {last.domain_id!r} as a shortcut...")
    try:
        validate_topology(patched)
        raise AssertionError("the cycle should have been rejected")
    except CyclicDomainGraphError as error:
        print(f"  boot-time validation: {error}")
    repaired, actions = repair_topology(patched)
    print("  repair proposes:")
    for action in actions:
        print(f"    - {action.describe()}")
    validate_topology(repaired)
    return repaired


class RegionalDesk(Agent):
    """Sends a burst to regional peers, then one cross-region order."""

    def __init__(self, peers, cross):
        super().__init__()
        self.peers = peers
        self.cross = cross
        self.seen = []

    def on_boot(self, ctx):
        for peer in self.peers:
            ctx.send(peer, "regional-update")
        if self.cross is not None:
            ctx.send(self.cross, "cross-region-order")

    def react(self, ctx, sender, payload):
        self.seen.append(payload)


def live_check(topology):
    """Step 5 — boot the plan and audit causal delivery."""
    mom = MessageBus(BusConfig(topology=topology, seed=99))
    desks = {}
    for region, servers in REGIONS.items():
        for server in servers:
            desks[server] = RegionalDesk([], None)
            mom.deploy(desks[server], server)
    ids = {server: desk.agent_id for server, desk in desks.items()}
    rng = random.Random(5)
    for region, servers in REGIONS.items():
        for server in servers:
            desks[server].peers = [
                ids[s] for s in servers if s != server
            ]
            if rng.random() < 0.3:
                other_region = rng.choice(
                    [r for r in REGIONS if r != region]
                )
                desks[server].cross = ids[rng.choice(REGIONS[other_region])]
    mom.start()
    mom.run_until_idle()
    report = mom.check_app_causality()
    print()
    print(f"live audit on the planned topology: {report.summary()}")
    print(f"  {mom.metrics.counter('bus.notifications').value} notifications, "
          f"{mom.network.cells_transmitted} clock cells on the wire")
    assert report.respects_causality


def main():
    comm = profile_traffic()
    planned = plan(comm)
    repaired = admin_mistake(planned)
    live_check(planned)
    print("\nplan accepted.")


if __name__ == "__main__":
    main()
