#!/usr/bin/env python
"""Replicated-log update propagation — the matrix-clock use case of §1.

"Such shared knowledge is needed in many instances involving close
cooperation, such as replica update management and collaborative work."

Each site keeps a replica of an append-only document log. Edits flow
through a hub agent that fans them out to every replica; a reviewer's
response causally follows the draft it reviews, so with causal delivery
no replica can ever apply the response before the draft — across any
number of domain hops. (Fanning out from the hub matters: N independent
unicasts from the *author* would leave each replica's copy of the draft
concurrent with the review, a classic multicast-vs-unicast pitfall this
example deliberately avoids.)

The example also reads the matrix clocks directly to show the "A knows
that B knows about C" knowledge level [Wuu–Bernstein 1984] that plain
vector clocks cannot express.

Run:  python examples/collaborative_log.py
"""

from repro import Agent, BusConfig, MessageBus, daisy


class EditorHub(Agent):
    """Fans every incoming edit out to all replicas except its author.

    The hub's per-destination FIFO, preserved end to end by the domain
    protocol, is what makes "draft before review" hold at every replica.
    """

    def __init__(self):
        super().__init__()
        self.replicas = []
        self.forwarded = 0

    def react(self, ctx, sender, payload):
        self.forwarded += 1
        for replica in self.replicas:
            if replica != sender:
                ctx.send(replica, payload)


class Replica(Agent):
    """One site's replica of the shared log."""

    def __init__(self, hub):
        super().__init__()
        self.hub = hub
        self.log = []  # applied edits, in local apply order

    def edit(self, ctx, text, responding_to=None):
        entry = (str(ctx.my_id), text, responding_to)
        self.log.append(entry)
        ctx.send(self.hub, entry)

    def on_boot(self, ctx):
        if ctx.my_id.server == 0:
            self.edit(ctx, "initial draft: causality is easy?")

    def react(self, ctx, sender, payload):
        author, text, responding_to = payload
        if responding_to is not None:
            applied_texts = [t for _, t, _ in self.log]
            assert responding_to in applied_texts, (
                f"replica {ctx.my_id} got a response before its target!"
            )
        self.log.append(payload)
        if ctx.my_id.server == 8 and responding_to is None:
            self.edit(
                ctx,
                "review: no - needs matrix clocks",
                responding_to=text,
            )


def main():
    # a daisy of 3-server domains: sites chained like branch offices;
    # the author (S0) and the reviewer (S8) sit at opposite ends, four
    # domain hops apart.
    topology = daisy(9, 3)
    print(topology.describe())
    print()

    mom = MessageBus(BusConfig(topology=topology, record_hop_trace=True))
    hub = EditorHub()
    hub_id = mom.deploy(hub, 4)  # hub at the middle site
    replicas = []
    for server in topology.servers:
        if server == 4:
            continue
        replica = Replica(hub_id)
        mom.deploy(replica, server)
        replicas.append(replica)
    hub.replicas = [replica.agent_id for replica in replicas]

    mom.start()
    mom.run_until_idle()

    print("replica logs:")
    for replica in replicas:
        print(f"  {replica.agent_id}: {len(replica.log)} entries")
        for _, text, responding in replica.log:
            arrow = f"   (responds to: {responding!r})" if responding else ""
            print(f"      - {text!r}{arrow}")
        texts = [t for _, t, _ in replica.log]
        assert texts.index("initial draft: causality is easy?") < texts.index(
            "review: no - needs matrix clocks"
        )

    # Shared knowledge, read off a matrix clock: in the middle domain, what
    # does the hub's server know about what its neighbours know?
    channel = mom.server(4).channel
    domain_id = topology.domains_of(4)[0].domain_id
    item = channel.domain_items[domain_id]
    print()
    print(f"matrix clock of server 4 in domain {domain_id!r} "
          f"(cell [i][j] = messages i->j that server 4 knows about):")
    for i in range(item.clock.size):
        print(f"    {[item.clock.cell(i, j) for j in range(item.clock.size)]}")

    report = mom.check_app_causality()
    print(f"\ncausal delivery: {report.summary()}")
    for domain_report in mom.check_domain_causality().values():
        print(f"  {domain_report.summary()}")
    assert report.respects_causality


if __name__ == "__main__":
    main()
