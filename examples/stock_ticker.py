#!/usr/bin/env python
"""Stock-exchange quotation feed — the paper's motivating workload (§1).

A quote publisher and a *correction* publisher feed a topic; trading desks
across several sites subscribe. The correction causally follows the bad
quote it amends (the corrections desk saw the quote before issuing the
fix), so causal delivery guarantees no subscriber ever sees the correction
before the quote it corrects — on any site, across any number of domain
hops, even though the two publications come from different servers.

The MOM is organized as a bus of domains: one domain per trading site plus
a backbone — the decomposition that keeps matrix-clock costs linear (§6.2).

Run:  python examples/stock_ticker.py
"""

from repro import Agent, BusConfig, MessageBus, bus_topology
from repro.pubsub import Delivery, Publish, Subscribe, TopicAgent
from repro.simulation.network import UniformLatency


class QuotePublisher(Agent):
    """Publishes a stream of quotes for one symbol."""

    def __init__(self, topic, quotes):
        super().__init__()
        self.topic = topic
        self.quotes = quotes

    def on_boot(self, ctx):
        for symbol, price in self.quotes:
            ctx.send(self.topic, Publish(("QUOTE", symbol, price)))

    def react(self, ctx, sender, payload):
        pass  # publishers do not consume the feed


class CorrectionsDesk(Agent):
    """Subscribes to the feed; when it sees a fat-finger quote it publishes
    a correction — a message that causally depends on the bad quote."""

    def __init__(self, topic, bad_price_threshold):
        super().__init__()
        self.topic = topic
        self.threshold = bad_price_threshold
        self.corrections = 0

    def on_boot(self, ctx):
        ctx.send(self.topic, Subscribe(ctx.my_id))

    def react(self, ctx, sender, payload):
        if not isinstance(payload, Delivery):
            return
        kind, symbol, price = payload.body
        if kind == "QUOTE" and price > self.threshold:
            self.corrections += 1
            ctx.send(self.topic, Publish(("CORRECTION", symbol, price / 100)))


class TradingDesk(Agent):
    """A subscriber that books trades; it must never act on a corrected
    quote after... before seeing the correction that supersedes it."""

    def __init__(self, topic, name):
        super().__init__()
        self.topic = topic
        self.name = name
        self.tape = []

    def on_boot(self, ctx):
        ctx.send(self.topic, Subscribe(ctx.my_id))

    def react(self, ctx, sender, payload):
        if isinstance(payload, Delivery):
            self.tape.append(payload.body)


def main():
    # 16 servers in ~4-server site domains joined by a backbone.
    topology = bus_topology(16)
    print(topology.describe())
    print()

    mom = MessageBus(
        BusConfig(
            topology=topology,
            latency=UniformLatency(0.2, 12.0),  # WAN jitter between sites
            seed=2024,
        )
    )

    topic = TopicAgent()
    topic_id = mom.deploy(topic, server_id=5)

    desks = []
    for server in (0, 1, 8, 9, 12):  # desks spread over different sites
        desk = TradingDesk(topic_id, name=f"desk@S{server}")
        mom.deploy(desk, server)
        desks.append(desk)

    corrections = CorrectionsDesk(topic_id, bad_price_threshold=1000.0)
    mom.deploy(corrections, server_id=14)

    publisher = QuotePublisher(
        topic_id,
        quotes=[
            ("ACME", 101.2),
            ("ACME", 101.4),
            ("ACME", 10140.0),  # fat-finger: will be corrected
            ("ACME", 101.5),
        ],
    )
    mom.deploy(publisher, server_id=2)

    mom.start()
    mom.run_until_idle()

    print(f"corrections issued: {corrections.corrections}")
    for desk in desks:
        quote_pos = desk.tape.index(("QUOTE", "ACME", 10140.0))
        corr_pos = next(
            i for i, entry in enumerate(desk.tape) if entry[0] == "CORRECTION"
        )
        status = "OK" if quote_pos < corr_pos else "ANOMALY"
        print(
            f"  {desk.name}: saw bad quote at tape[{quote_pos}], "
            f"correction at tape[{corr_pos}] -> {status}"
        )
        assert quote_pos < corr_pos, (
            "causal delivery must order the correction after the bad quote"
        )

    report = mom.check_app_causality()
    print(f"causal delivery: {report.summary()}")
    assert report.respects_causality


if __name__ == "__main__":
    main()
