#!/usr/bin/env python
"""Quickstart: boot a domained MOM, exchange messages, check causality.

Builds the paper's Figure-2 topology (8 servers, 4 domains, 3 causal
router-servers), deploys a couple of agents, routes a message from S1 to
S8 across three domains — transparently, exactly like the paper's example
— and verifies the recorded trace respects causal order.

Run:  python examples/quickstart.py
"""

from repro import (
    Agent,
    BusConfig,
    EchoAgent,
    MessageBus,
    from_domain_map,
    validate_topology,
)


class Greeter(Agent):
    """Sends one greeting at boot and reports the echoed reply."""

    def __init__(self, partner):
        super().__init__()
        self.partner = partner
        self.replies = []

    def on_boot(self, ctx):
        print(f"[{ctx.now:7.1f} ms] {ctx.my_id} sends greeting to {self.partner}")
        ctx.send(self.partner, "hello across the domains")

    def react(self, ctx, sender, payload):
        self.replies.append(payload)
        print(f"[{ctx.now:7.1f} ms] {ctx.my_id} got echo back: {payload!r}")


def main():
    # The paper's Figure 2, 0-indexed: domains A{S1,S2,S3}, B{S4,S5},
    # C{S7,S8}, D{S3,S5,S6,S7}; S3, S5, S7 are causal router-servers.
    topology = from_domain_map(
        {
            "A": [0, 1, 2],
            "B": [3, 4],
            "C": [6, 7],
            "D": [2, 4, 5, 6],
        }
    )
    validate_topology(topology)  # acyclic domain graph: the theorem applies
    print(topology.describe())
    print()

    mom = MessageBus(BusConfig(topology=topology))
    echo_on_s8 = mom.deploy(EchoAgent(), server_id=7)
    greeter = Greeter(partner=echo_on_s8)
    mom.deploy(greeter, server_id=0)

    mom.start()
    mom.run_until_idle()

    print()
    print(f"notifications sent : {mom.metrics.counter('bus.notifications').value}")
    print(f"channel hops       : {mom.metrics.counter('channel.hops_sent').value} "
          "(S1->S3, S3->S7, S7->S8 and back: routing is invisible to agents)")
    report = mom.check_app_causality()
    print(f"causal delivery    : {report.summary()}")
    assert greeter.replies == ["hello across the domains"]
    assert report.respects_causality


if __name__ == "__main__":
    main()
