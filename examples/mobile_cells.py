#!/usr/bin/env python
"""Mobile cells — the deployment sketched in the paper's conclusion (§7).

"It is well adapted to a mobile environment (a group of mobile phones is
represented by a domain and a station by a causal-router-server)."

Each radio cell is a domain whose base station is the causal
router-server; stations are interconnected by a backbone domain. Phones
exchange text threads within and across cells. Causal delivery keeps every
pairwise thread readable — a reply can never overtake the message it
quotes — while each phone's matrix clock stays the size of its *cell*,
not of the whole network, and the Updates algorithm keeps the stamps on
the radio links tiny.

Run:  python examples/mobile_cells.py
"""

from repro import Agent, BusConfig, Domain, MessageBus, Topology
from repro.simulation.network import UniformLatency


class Phone(Agent):
    """Exchanges text threads; a reply always goes back to the sender of
    the message that triggered it and quotes that message."""

    def __init__(self):
        super().__init__()
        self.inbox = []
        self.sent_texts = []
        self.opening = []   # list of (text, to) fired at boot
        self.replies = {}   # trigger text -> reply text

    def on_boot(self, ctx):
        for text, to in self.opening:
            self.sent_texts.append(text)
            ctx.send(to, {"text": text, "quotes": None})

    def react(self, ctx, sender, payload):
        self.inbox.append((sender, payload))
        quoted = payload["quotes"]
        if quoted is not None:
            seen = [m["text"] for _, m in self.inbox] + self.sent_texts
            assert quoted in seen, (
                f"{ctx.my_id} saw a reply before the message it quotes!"
            )
        reply = self.replies.get(payload["text"])
        if reply is not None:
            self.sent_texts.append(reply)
            ctx.send(sender, {"text": reply, "quotes": payload["text"]})


def build_cells():
    """3 cells of 4 phones + base station; stations form the backbone.

    Servers 0-3: cell A phones, 4: station A; 5-8: cell B phones,
    9: station B; 10-13: cell C phones, 14: station C.
    """
    return Topology(
        [
            Domain("cell-A", (0, 1, 2, 3, 4)),
            Domain("cell-B", (5, 6, 7, 8, 9)),
            Domain("cell-C", (10, 11, 12, 13, 14)),
            Domain("backbone", (4, 9, 14)),
        ]
    )


def main():
    topology = build_cells()
    print(topology.describe())
    print()

    mom = MessageBus(
        BusConfig(
            topology=topology,
            clock_algorithm="updates",   # lean stamps on the radio links
            latency=UniformLatency(0.5, 20.0),
            seed=7,
        )
    )
    phones = {}
    for server in topology.servers:
        if topology.is_router(server):
            continue  # stations carry no user agents
        phone = Phone()
        phones[server] = phone
        mom.deploy(phone, server)
    ids = {server: phone.agent_id for server, phone in phones.items()}

    # Thread 1: inside cell A
    phones[0].opening = [("lunch?", ids[1])]
    phones[1].replies["lunch?"] = "yes - noon"

    # Thread 2: across cells A -> C, with a reply and a counter-reply
    phones[2].opening = [("did you see the draft?", ids[12])]
    phones[12].replies["did you see the draft?"] = "reading it now"
    phones[2].replies["reading it now"] = "take your time"

    # Thread 3: B announces to A and C; both acknowledge back to B
    phones[6].opening = [
        ("standup moved to 10am", ids[3]),
        ("standup moved to 10am", ids[13]),
    ]
    phones[3].replies["standup moved to 10am"] = "works for me"
    phones[13].replies["standup moved to 10am"] = "same"

    mom.start()
    mom.run_until_idle()

    for server, phone in sorted(phones.items()):
        if phone.inbox:
            texts = [m["text"] for _, m in phone.inbox]
            print(f"  phone@S{server}: {texts}")

    # The per-phone matrix clock covers its 5-server cell (25 cells), not
    # the whole 15-server network (225 cells) — the scalability point.
    cell_clock = mom.server(0).channel.domain_items["cell-A"].clock
    print(f"\nphone@S0 clock size: {cell_clock.size}x{cell_clock.size} "
          f"(cell-local; a flat MOM would need 15x15)")
    print(f"cells on the wire  : {mom.network.cells_transmitted} "
          "(Updates deltas, not full matrices)")

    report = mom.check_app_causality()
    print(f"causal delivery    : {report.summary()}")
    assert report.respects_causality


if __name__ == "__main__":
    main()
