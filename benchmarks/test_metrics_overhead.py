"""Cost of the always-on accounting layer (``repro.metrics``).

The claims that keep "always-on" honest:

1. **Observation-only** — an accounted run is bit-identical to a
   disabled one on every simulated observable (metrics snapshot, sim
   time): accounting never schedules events, never draws randomness,
   never touches the experiment metrics.
2. **Hot-path budget** — the per-event cost is a preallocated-handle
   increment, so the churn benchmark with accounting on stays within
   1.10x of the accounting-off run (the ISSUE's acceptance band; a
   generous pathological bound backs it up for noisy CI boxes).

The companion exporter (``export_bench.py --metrics``) records the same
ratio into ``BENCH_hotpath.json`` under ``metrics_overhead``, which
``tools/bench_gate.py`` gates.
"""

import time

import pytest

from conftest import bench_once
from repro.mom import BusConfig, EchoAgent, FunctionAgent, MessageBus
from repro.simulation.network import UniformLatency
from repro.topology import single_domain


def _churn(accounting=True, sends=25):
    """The export_bench hold-back churn scenario: 4 senders flood one
    echo across a jittery 12-server domain."""
    mom = MessageBus(
        BusConfig(
            topology=single_domain(12),
            seed=11,
            latency=UniformLatency(0.1, 20.0),
            accounting=accounting,
        )
    )
    echo_id = mom.deploy(EchoAgent(), 11)
    for src in range(4):
        sender = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx, echo_id=echo_id):
            for i in range(sends):
                ctx.send(echo_id, i)

        sender.on_boot = boot
        mom.deploy(sender, src)
    mom.start()
    mom.run_until_idle()
    return mom


def test_accounted_churn(benchmark):
    mom = bench_once(benchmark, _churn)
    benchmark.extra_info["sim_ms"] = round(mom.sim.now, 3)
    snapshot = mom.cost_snapshot()
    benchmark.extra_info["instruments"] = len(snapshot["instruments"])
    assert mom.check_app_causality().respects_causality


def test_unaccounted_churn(benchmark):
    mom = bench_once(benchmark, lambda: _churn(accounting=False))
    benchmark.extra_info["sim_ms"] = round(mom.sim.now, 3)
    assert mom.cost_snapshot() is None


def test_accounting_is_observation_only():
    """Same seed, same workload: accounted and disabled runs agree on
    every simulated observable."""
    off = _churn(accounting=False)
    on = _churn(accounting=True)
    assert on.metrics.snapshot() == off.metrics.snapshot()
    assert on.sim.now == off.sim.now
    assert on.total_persisted_cells() == off.total_persisted_cells()
    assert on.cost_snapshot() is not None


def test_overhead_within_budget():
    """Accounting on the churn run stays within the 1.10x acceptance
    band. Measured on an 8x-longer churn (~250ms a run) with the two
    sides interleaved, best-of-4 each — on the short default run a
    couple of ms of scheduler jitter can fake a 10% overhead."""
    off_s = on_s = float("inf")
    for _ in range(4):
        start = time.perf_counter()
        _churn(accounting=False, sends=200)
        off_s = min(off_s, time.perf_counter() - start)
        start = time.perf_counter()
        _churn(accounting=True, sends=200)
        on_s = min(on_s, time.perf_counter() - start)
    ratio = on_s / off_s if off_s > 0 else 0.0
    assert ratio <= 1.10, (
        f"accounting overhead {ratio:.3f}x exceeds the 1.10x budget "
        f"(off={off_s:.4f}s on={on_s:.4f}s)"
    )


def test_env_kill_switch(monkeypatch):
    """REPRO_METRICS=0 disables accounting even with the config on."""
    monkeypatch.setenv("REPRO_METRICS", "0")
    mom = _churn(accounting=True)
    assert mom.accounting is None
    assert mom.acct is None
    assert mom.cost_snapshot() is None


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-v"]))
