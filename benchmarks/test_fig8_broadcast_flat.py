"""Figure 8: broadcast WITHOUT domains of causality.

Paper series (ms): 10→636, 20→1382, 30→2771, 40→4187, 50→6613, 60→8933,
90→25323; the paper overlays a quadratic fit. Absolute values differ (the
paper's constant term includes JVM overheads we don't model), but the
growth must be strongly superlinear with the same ordering, and the
quadratic coefficient of our fit must land within ~2x of the paper's
(ours ≈ 3.9 ms/server², paper ≈ 4.1).
"""

import pytest

from conftest import bench_once, record
from repro.bench import PAPER_FIG8, quadratic_fit, run_broadcast

NS = [10, 20, 30, 50, 90]
ROUNDS = 3


@pytest.mark.parametrize("n", NS)
def test_fig8_point(benchmark, n):
    result = benchmark.pedantic(
        run_broadcast,
        kwargs=dict(server_count=n, topology="flat", rounds=ROUNDS),
        iterations=1,
        rounds=1,
    )
    record(benchmark, result)
    assert result.causal_ok
    # same side of the ballpark: within a factor ~2.4 of the paper's point
    assert PAPER_FIG8[n] / 2.4 < result.mean_turnaround_ms < PAPER_FIG8[n] * 2.4


def test_fig8_quadratic_shape(benchmark):
    values = bench_once(
        benchmark,
        lambda: [
            run_broadcast(n, topology="flat", rounds=ROUNDS).mean_turnaround_ms
            for n in NS
        ],
    )
    ours = quadratic_fit(NS, values)
    paper = quadratic_fit(NS, [PAPER_FIG8[n] for n in NS])
    assert ours.r_squared > 0.99
    assert paper.coeffs[0] / 2 < ours.coeffs[0] < paper.coeffs[0] * 2, (
        f"quadratic growth {ours.coeffs[0]:.2f} vs paper {paper.coeffs[0]:.2f}"
    )


def test_fig8_superlinear_growth(benchmark):
    t10, t90 = bench_once(
        benchmark,
        lambda: (
            run_broadcast(10, rounds=ROUNDS).mean_turnaround_ms,
            run_broadcast(90, rounds=ROUNDS).mean_turnaround_ms,
        ),
    )
    assert t90 / t10 > 9 * 2, "broadcast must grow much faster than n"
