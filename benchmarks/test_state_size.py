"""§1's state argument: matrix clocks need O(n³) global state
(n servers × n² cells); domain decomposition makes it near-linear.

Also measures disk traffic (§3's "high disk I/O activity") per delivered
message, flat vs domained.
"""

import pytest

from conftest import bench_once, record
from repro.bench import run_local_unicast, run_remote_unicast

NS = [10, 50, 150]


@pytest.mark.parametrize("n", NS)
@pytest.mark.parametrize("kind", ["flat", "bus"])
def test_state_point(benchmark, n, kind):
    result = benchmark.pedantic(
        run_local_unicast,
        kwargs=dict(server_count=n, topology=kind, rounds=1),
        iterations=1,
        rounds=2,
    )
    benchmark.extra_info["n"] = n
    benchmark.extra_info["topology"] = kind
    benchmark.extra_info["state_cells"] = result.clock_state_cells


def test_flat_state_is_cubic(benchmark):
    small, large = bench_once(
        benchmark,
        lambda: (
            run_local_unicast(10, topology="flat", rounds=1),
            run_local_unicast(100, topology="flat", rounds=1),
        ),
    )
    assert small.clock_state_cells == 10 ** 3
    assert large.clock_state_cells == 100 ** 3


def test_bus_state_is_near_linear(benchmark):
    small, large = bench_once(
        benchmark,
        lambda: (
            run_local_unicast(10, topology="bus", rounds=1),
            run_local_unicast(100, topology="bus", rounds=1),
        ),
    )
    growth = large.clock_state_cells / small.clock_state_cells
    # n grew 10x; near-linear state grows ~O(n·s) = O(n^1.5) here, far from
    # the flat MOM's 1000x
    assert growth < 100


def test_disk_traffic_per_message_shrinks_with_domains(benchmark):
    flat, domained = bench_once(
        benchmark,
        lambda: (
            run_remote_unicast(90, topology="flat", rounds=5),
            run_remote_unicast(90, topology="bus", rounds=5),
        ),
    )
    flat_per_hop = flat.persisted_cells / flat.hops
    domained_per_hop = domained.persisted_cells / domained.hops
    assert domained_per_hop < flat_per_hop / 20
