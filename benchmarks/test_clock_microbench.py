"""Microbenchmarks of the clock data structures themselves.

Not a paper figure — an engineering regression guard: the simulator's
throughput is dominated by ``prepare_send`` / ``can_deliver`` / ``deliver``
at domain size s, so these keep the hot path honest and quantify the
asymmetry the Updates algorithm introduces (cheap wire, same merge).
"""

import pytest

from repro.clocks import MatrixClock, UpdatesClock
from repro.mom import BusConfig, EchoAgent, FunctionAgent, MessageBus
from repro.simulation.network import UniformLatency
from repro.topology import single_domain

SIZES = [10, 50, 150]


def pingpong_pair(clock_cls, size):
    a = clock_cls(size, 0)
    b = clock_cls(size, 1)
    # warm the clocks so deltas are steady-state
    for _ in range(3):
        b.deliver(a.prepare_send(1))
        a.deliver(b.prepare_send(0))
    return a, b


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("clock_cls", [MatrixClock, UpdatesClock],
                         ids=["matrix", "updates"])
def test_prepare_send(benchmark, clock_cls, size):
    a, b = pingpong_pair(clock_cls, size)

    def op():
        stamp = a.prepare_send(1)
        b.deliver(stamp)
        back = b.prepare_send(0)
        a.deliver(back)
        return stamp

    stamp = benchmark(op)
    benchmark.extra_info["wire_cells"] = stamp.wire_cells
    benchmark.extra_info["size"] = size


@pytest.mark.parametrize("size", SIZES)
def test_full_matrix_stamp_cells_are_quadratic(benchmark, size):
    a, _ = pingpong_pair(MatrixClock, size)
    stamp = benchmark(a.prepare_send, 1)
    assert stamp.wire_cells == size * size


@pytest.mark.parametrize("size", SIZES)
def test_updates_stamp_cells_constant(benchmark, size):
    a, _ = pingpong_pair(UpdatesClock, size)
    stamp = benchmark(a.prepare_send, 1)
    assert stamp.wire_cells <= 2


@pytest.mark.parametrize("size", SIZES)
def test_snapshot_cost(benchmark, size):
    a, b = pingpong_pair(MatrixClock, size)
    snapshot = benchmark(a.snapshot)
    assert len(snapshot) == size


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("clock_cls", [MatrixClock, UpdatesClock],
                         ids=["matrix", "updates"])
def test_deliver_merge_fan_in(benchmark, clock_cls, size):
    """Every peer sends to server 0 each round — the receiver's merge is
    the hot loop at a busy router. The flat-buffer clocks merge only the
    cells changed since the peer's previous stamp (the change-log window),
    so this stays O(changed) instead of O(s²) per delivery."""
    receiver = clock_cls(size, 0)
    peers = [clock_cls(size, i) for i in range(1, size)]
    # steady state: every peer has sent before
    for peer in peers:
        receiver.deliver(peer.prepare_send(0))

    def fan_in_round():
        for peer in peers:
            receiver.deliver(peer.prepare_send(0))

    benchmark(fan_in_round)
    benchmark.extra_info["size"] = size
    benchmark.extra_info["dirty_cells"] = receiver.dirty_cells()


def _holdback_churn_run():
    """A jittery single-domain run: 4 senders stream 25 messages each to
    one receiver over a 200:1-spread latency distribution, so most hops
    arrive out of FIFO order and sit in the hold-back store. Exercises the
    (sender, seq)-indexed wake-up probe instead of the old full rescan."""
    mom = MessageBus(
        BusConfig(
            topology=single_domain(12),
            seed=11,
            latency=UniformLatency(0.1, 20.0),
        )
    )
    echo_id = mom.deploy(EchoAgent(), 11)
    for src in range(4):
        sender = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx, echo_id=echo_id):
            for i in range(25):
                ctx.send(echo_id, i)

        sender.on_boot = boot
        mom.deploy(sender, src)
    mom.start()
    mom.run_until_idle()
    return mom


def test_holdback_churn(benchmark):
    mom = benchmark(_holdback_churn_run)
    snapshot = mom.metrics.snapshot()
    assert snapshot["channel.heldback"] > 50, "churn scenario lost its bite"
    benchmark.extra_info["heldback"] = snapshot["channel.heldback"]
    benchmark.extra_info["hops_delivered"] = snapshot["channel.hops_delivered"]
