"""Microbenchmarks of the clock data structures themselves.

Not a paper figure — an engineering regression guard: the simulator's
throughput is dominated by ``prepare_send`` / ``can_deliver`` / ``deliver``
at domain size s, so these keep the hot path honest and quantify the
asymmetry the Updates algorithm introduces (cheap wire, same merge).
"""

import pytest

from repro.clocks import MatrixClock, UpdatesClock

SIZES = [10, 50, 150]


def pingpong_pair(clock_cls, size):
    a = clock_cls(size, 0)
    b = clock_cls(size, 1)
    # warm the clocks so deltas are steady-state
    for _ in range(3):
        b.deliver(a.prepare_send(1))
        a.deliver(b.prepare_send(0))
    return a, b


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("clock_cls", [MatrixClock, UpdatesClock],
                         ids=["matrix", "updates"])
def test_prepare_send(benchmark, clock_cls, size):
    a, b = pingpong_pair(clock_cls, size)

    def op():
        stamp = a.prepare_send(1)
        b.deliver(stamp)
        back = b.prepare_send(0)
        a.deliver(back)
        return stamp

    stamp = benchmark(op)
    benchmark.extra_info["wire_cells"] = stamp.wire_cells
    benchmark.extra_info["size"] = size


@pytest.mark.parametrize("size", SIZES)
def test_full_matrix_stamp_cells_are_quadratic(benchmark, size):
    a, _ = pingpong_pair(MatrixClock, size)
    stamp = benchmark(a.prepare_send, 1)
    assert stamp.wire_cells == size * size


@pytest.mark.parametrize("size", SIZES)
def test_updates_stamp_cells_constant(benchmark, size):
    a, _ = pingpong_pair(UpdatesClock, size)
    stamp = benchmark(a.prepare_send, 1)
    assert stamp.wire_cells <= 2


@pytest.mark.parametrize("size", SIZES)
def test_snapshot_cost(benchmark, size):
    a, b = pingpong_pair(MatrixClock, size)
    snapshot = benchmark(a.snapshot)
    assert len(snapshot) == size
