"""Export hot-path wall-clock benchmarks to ``BENCH_hotpath.json``.

This is the before/after ledger for the flat-buffer clock core and the
O(1) hold-back wake-up. It times the scenarios the optimization targets —
the s=150 clock microbenches, the fan-in merge loop, a jittery hold-back
churn run, and the 1000-server scale points — using only APIs that exist
in both the seed and the optimized tree, so the *same script* can measure
either side:

    # current tree ("after")
    PYTHONPATH=src python benchmarks/export_bench.py --label after

    # a pristine seed checkout ("before")
    PYTHONPATH=<seed>/src python benchmarks/export_bench.py --label before

Each run merges its numbers under its label into the output JSON (default
``BENCH_hotpath.json`` next to this script's repo root) and recomputes the
``speedup`` section whenever both labels are present. Simulated-time
observables (sim_ms / wire_cells / causal_ok) are recorded alongside so a
reader can verify the two sides ran *identical experiments* — the
optimization must move wall-clock only.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


def _time(fn, repeat: int = 3):
    """Best-of-``repeat`` wall time in seconds, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def bench_pingpong(clock_cls, size: int, iterations: int = 2000):
    a = clock_cls(size, 0)
    b = clock_cls(size, 1)
    for _ in range(3):
        b.deliver(a.prepare_send(1))
        a.deliver(b.prepare_send(0))

    def run():
        for _ in range(iterations):
            b.deliver(a.prepare_send(1))
            a.deliver(b.prepare_send(0))

    secs, _ = _time(run)
    return {"wall_s": round(secs, 4), "iterations": iterations}


def bench_fan_in(clock_cls, size: int, rounds: int = 50):
    receiver = clock_cls(size, 0)
    peers = [clock_cls(size, i) for i in range(1, size)]
    for peer in peers:
        receiver.deliver(peer.prepare_send(0))

    def run():
        for _ in range(rounds):
            for peer in peers:
                receiver.deliver(peer.prepare_send(0))

    secs, _ = _time(run)
    return {"wall_s": round(secs, 4), "deliveries": rounds * (size - 1)}


def _run_churn(trace: bool = False, accounting: bool = True,
               sends: int = 25):
    """One jittery hold-back churn run; optionally with the obs tracer."""
    from repro.mom import BusConfig, EchoAgent, FunctionAgent, MessageBus
    from repro.simulation.network import UniformLatency
    from repro.topology import single_domain

    mom = MessageBus(
        BusConfig(
            topology=single_domain(12),
            seed=11,
            latency=UniformLatency(0.1, 20.0),
            accounting=accounting,
        )
    )
    if trace:
        from repro.obs.tracer import attach

        attach(mom)
    echo_id = mom.deploy(EchoAgent(), 11)
    for src in range(4):
        sender = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx, echo_id=echo_id):
            for i in range(sends):
                ctx.send(echo_id, i)

        sender.on_boot = boot
        mom.deploy(sender, src)
    mom.start()
    mom.run_until_idle()
    return mom


def bench_holdback_churn():
    secs, mom = _time(_run_churn)
    snapshot = mom.metrics.snapshot()
    return {
        "wall_s": round(secs, 4),
        "heldback": snapshot["channel.heldback"],
        "hops_delivered": snapshot["channel.hops_delivered"],
        "sim_ms": round(mom.sim.now, 3),
    }


def bench_scale(topology: str, rounds: int = 3):
    from repro.bench import run_remote_unicast

    def run():
        return run_remote_unicast(1000, topology=topology, rounds=rounds)

    secs, result = _time(run, repeat=2)
    return {
        "wall_s": round(secs, 4),
        "sim_ms": round(result.mean_turnaround_ms, 3),
        "wire_cells": result.wire_cells,
        "causal_ok": result.causal_ok,
    }


def bench_trace_overhead() -> dict:
    """Wall-clock cost of the obs tracer on the hold-back churn workload.

    Runs the identical experiment with and without a tracer attached and
    records the ratio. The simulated observables must match exactly —
    tracing is observation-only — so any divergence is a hard error.
    """
    untraced_s, untraced = _time(_run_churn)
    traced_s, traced = _time(lambda: _run_churn(trace=True))
    before, after = untraced.metrics.snapshot(), traced.metrics.snapshot()
    if before != after:
        diff = {
            k: (before.get(k), after.get(k))
            for k in set(before) | set(after)
            if before.get(k) != after.get(k)
        }
        raise SystemExit(f"DIVERGENCE: tracing changed metrics: {diff}")
    tracer = traced._obs_tracer
    return {
        "untraced_wall_s": round(untraced_s, 4),
        "traced_wall_s": round(traced_s, 4),
        "overhead_ratio": round(traced_s / untraced_s, 3)
        if untraced_s > 0
        else 0.0,
        "events_recorded": tracer.ring.next_seq,
        "metrics_identical": True,
    }


def _run_accounted(topology, rounds: int = 6):
    """A ping-pong across ``topology`` with cost accounting on; returns
    (bus, notifications) after quiescence."""
    from repro.mom import BusConfig, EchoAgent, MessageBus
    from repro.mom.workloads import PingPongDriver

    mom = MessageBus(BusConfig(topology=topology, seed=0))
    echo_id = mom.deploy(EchoAgent(), topology.server_count - 1)
    driver = PingPongDriver(rounds)
    driver.bind(echo_id)
    mom.deploy(driver, 0)
    mom.start()
    mom.run_until_idle()
    return mom


def bench_metrics_costs(sizes=(16, 64, 150)) -> dict:
    """Per-message causality costs from repro.metrics, flat vs decomposed.

    The paper's §6 claim, read straight off the accounting registry: with
    one flat domain the stamp on every hop is 8·n² bytes, so bytes/message
    grows quadratically in the server count; with the bus-of-domains
    decomposition at the paper's √n domain size every hop's stamp is
    8·(√n)² = 8·n bytes over a constant 3-hop route, so bytes/message
    grows linearly. ``merge_cells`` shrinks the same way (cells actually
    advanced per commit).
    """
    from repro.metrics import total as metrics_total
    from repro.topology import builders

    out: dict = {}
    for size in sizes:
        row: dict = {}
        for label, topology in (
            ("flat", builders.single_domain(size)),
            ("bus", builders.bus(size)),  # default √n leaves (linear cost)
        ):
            mom = _run_accounted(topology)
            snapshot = mom.cost_snapshot()
            assert snapshot is not None
            messages = metrics_total(snapshot, "bus_notifications_total")
            stamp_bytes = metrics_total(snapshot, "channel_stamp_bytes_total")
            merges = metrics_total(snapshot, "channel_merge_cells_total")
            commits = metrics_total(snapshot, "channel_commits_total")
            row[label] = {
                "messages": int(messages),
                "stamp_bytes_per_msg": round(stamp_bytes / messages, 2),
                "merge_cells_per_msg": round(merges / messages, 2),
                "commits": int(commits),
                "clock_state_cells": int(
                    metrics_total(snapshot, "clock_state_cells")
                ),
                "sim_ms": round(mom.sim.now, 3),
            }
        row["bytes_ratio_flat_over_bus"] = round(
            row["flat"]["stamp_bytes_per_msg"]
            / row["bus"]["stamp_bytes_per_msg"],
            2,
        )
        out[f"s{size}"] = row
    return out


def bench_metrics_overhead() -> dict:
    """Wall-clock cost of always-on accounting on the hold-back churn
    workload, accounting-on vs accounting-off. The simulated observables
    must match exactly — accounting is observation-only — so any
    divergence is a hard error. The 1.10x budget is enforced by
    ``benchmarks/test_metrics_overhead.py`` and ``tools/bench_gate.py``.
    """
    # The default churn run is ~25ms — small enough that scheduler
    # jitter can fake a 10% "overhead". Measure on an 8x-longer run
    # (~250ms) with the two sides interleaved and best-of-5 each, which
    # cancels drift and keeps the ratio stable across invocations.
    off_s = on_s = float("inf")
    off = on = None
    for _ in range(5):
        start = time.perf_counter()
        off = _run_churn(accounting=False, sends=200)
        off_s = min(off_s, time.perf_counter() - start)
        start = time.perf_counter()
        on = _run_churn(accounting=True, sends=200)
        on_s = min(on_s, time.perf_counter() - start)
    before, after = off.metrics.snapshot(), on.metrics.snapshot()
    if before != after or off.sim.now != on.sim.now:
        diff = {
            k: (before.get(k), after.get(k))
            for k in set(before) | set(after)
            if before.get(k) != after.get(k)
        }
        raise SystemExit(f"DIVERGENCE: accounting changed results: {diff}")
    snapshot = on.cost_snapshot()
    return {
        "disabled_wall_s": round(off_s, 4),
        "enabled_wall_s": round(on_s, 4),
        "overhead_ratio": round(on_s / off_s, 3) if off_s > 0 else 0.0,
        "instruments": len(snapshot["instruments"]),
        "sim_identical": True,
    }


def _run_fan_in(parallel: str, workers: int = 0, servers: int = 150,
                senders: int = 12, count: int = 40):
    """The s=150 fan-in workload of the parallel-speedup bench: one
    open-loop sender per (roughly) leaf domain, all converging on a
    single sink across the bus-of-domains — heavy per-shard stamping and
    channel work, constant cross-shard traffic through every window."""
    from repro.mom.config import BusConfig
    from repro.mom.parallel import ShardedBus, make_bus
    from repro.mom.workloads import OpenLoopDriver, SinkAgent
    from repro.topology import builders

    topology = builders.bus(servers)
    bus = make_bus(
        BusConfig(
            topology=topology, seed=5, parallel=parallel, workers=workers
        )
    )
    if parallel == "auto" and not isinstance(bus, ShardedBus):
        raise SystemExit(
            "parallel-speedup bench: the fan-in workload was expected to "
            "be shard-eligible but fell back to sequential"
        )
    sink_server = topology.servers[-1]
    sink = SinkAgent()
    sink_id = bus.deploy(sink, sink_server)
    plain = [
        s for s in topology.servers
        if not topology.is_router(s) and s != sink_server
    ]
    step = max(1, len(plain) // senders)
    for src in plain[::step][:senders]:
        driver = OpenLoopDriver(period_ms=5.0, count=count)
        driver.bind(sink_id)
        bus.deploy(driver, src)
    bus.start()
    bus.run_until_idle()
    return bus, sink


def bench_parallel_speedup(workers: int = 4) -> dict:
    """Wall-clock of the sharded kernel vs sequential on the s=150
    fan-in, with the bit-identity contract enforced: the two runs must
    produce byte-identical cost snapshots and delivery counts, or the
    bench aborts. The speedup ratio itself is only recorded on hosts
    with at least ``workers`` CPUs — a 1-core container can verify
    identity but cannot honestly measure parallel speedup."""
    sequential_s, (seq_bus, seq_sink) = _time(
        lambda: _run_fan_in("off"), repeat=2
    )
    sharded_s, (par_bus, par_sink) = _time(
        lambda: _run_fan_in("auto", workers=workers), repeat=2
    )
    seq_obs = (
        round(seq_bus.sim.now, 6),
        seq_sink.received,
        json.dumps(seq_bus.cost_snapshot(), sort_keys=True),
    )
    par_obs = (
        round(par_bus.sim.now, 6),
        par_sink.received,
        json.dumps(par_bus.cost_snapshot(), sort_keys=True),
    )
    if seq_obs != par_obs:
        raise SystemExit(
            "DIVERGENCE: sharded run changed simulated observables "
            f"(sim_ms {seq_obs[0]} vs {par_obs[0]}, deliveries "
            f"{seq_obs[1]} vs {par_obs[1]}, snapshots "
            f"{'equal' if seq_obs[2] == par_obs[2] else 'DIFFER'})"
        )
    cpus = os.cpu_count() or 1
    out = {
        "workers": workers,
        "cpu_count": cpus,
        "sequential_wall_s": round(sequential_s, 4),
        "sharded_wall_s": round(sharded_s, 4),
        "observables_identical": True,
        "sim_ms": round(seq_bus.sim.now, 3),
        "deliveries": seq_sink.received,
    }
    if cpus >= workers:
        out["speedup"] = (
            round(sequential_s / sharded_s, 2) if sharded_s > 0 else 0.0
        )
    else:
        out["speedup_skipped"] = (
            f"host has {cpus} CPU(s); need >= {workers} for an honest "
            "parallel-speedup measurement"
        )
    telemetry = par_bus.shard_telemetry()
    if telemetry is not None:
        # the sim section is deterministic (grant counts, window widths,
        # cross-shard message counts are pinned by the gate); the sync
        # overhead fraction is wall-clock and only band-checked [0, 1]
        sim = telemetry["sim"]
        out["shardmon"] = {
            "sim": {
                "grants": sim["grants"],
                "window_width_ms": sim["window_width_ms"],
                "events_total": sim["events_total"],
                "events_per_shard": sim["events_per_shard"],
                "cross_shard_messages": sim["cross_shard"]["messages"],
                "cross_shard_bytes": sim["cross_shard"]["bytes"],
            },
            "sync_overhead_fraction": round(
                telemetry["wallclock"]["sync_overhead_fraction"], 4
            ),
        }
    return out


def bench_profile_overhead() -> dict:
    """Wall-clock cost of the critical-path profiler on the churn run.

    The analysis is post-hoc (it only reads the event ring), so the cost
    model is: traced run + full critpath extraction (a breakdown for
    every delivery, the run-level path, the category summary) vs the
    traced run alone. Gated at <= 1.15x by ``tools/bench_gate.py``. The
    summary's exactness flag — every delivery's five categories sum
    bit-identically to its measured end-to-end latency — rides along and
    is gated to ``true``.
    """
    from repro.obs.critpath import CriticalPathAnalyzer

    # Interleaved best-of-7, like bench_metrics_overhead above: the
    # analysis side is ~40ms, small enough that scheduler drift between
    # two separately-timed phases can fake (or hide) a 5% "overhead".
    # Timing run and analysis back-to-back in each round cancels it.
    traced_s = analysis_s = float("inf")
    summary = steps = None
    for _ in range(7):
        start = time.perf_counter()
        traced = _run_churn(trace=True, sends=200)
        traced_s = min(traced_s, time.perf_counter() - start)
        events = traced._obs_tracer.ring.events()
        start = time.perf_counter()
        analyzer = CriticalPathAnalyzer(events)
        steps = analyzer.run_critical_path()
        summary = analyzer.category_summary()
        analysis_s = min(analysis_s, time.perf_counter() - start)
    ratio = (
        (traced_s + analysis_s) / traced_s if traced_s > 0 else 0.0
    )
    return {
        "traced_wall_s": round(traced_s, 4),
        "critpath_wall_s": round(analysis_s, 4),
        "overhead_ratio": round(ratio, 3),
        "deliveries": summary["deliveries"],
        "e2e_ms_total": round(summary["e2e_ms_total"], 3),
        "critical_path_len": len(steps),
        "sum_exact": summary["exact"],
    }


def trace_histograms() -> dict:
    """Histogram snapshots of traced runs, for BENCH_trace_histograms.json:
    the Fig-10 remote unicast (percentile extras via the bench harness)
    and the jittery churn run (full tracer snapshots, hold-back engaged).
    """
    from repro.bench import run_remote_unicast

    fig10 = run_remote_unicast(50, topology="bus", rounds=20, trace=True)
    churn_tracer = _run_churn(trace=True)._obs_tracer
    return {
        "fig10_remote_unicast_n50": {
            k: v for k, v in sorted(fig10.extras.items())
        },
        "holdback_churn": churn_tracer.histogram_snapshot(),
    }


def measure() -> dict:
    from repro.clocks import MatrixClock, UpdatesClock

    scenarios = {}
    for size in (50, 150):
        scenarios[f"pingpong_matrix_s{size}"] = bench_pingpong(
            MatrixClock, size
        )
        scenarios[f"pingpong_updates_s{size}"] = bench_pingpong(
            UpdatesClock, size
        )
        scenarios[f"fan_in_matrix_s{size}"] = bench_fan_in(MatrixClock, size)
    scenarios["holdback_churn"] = bench_holdback_churn()
    scenarios["scale_bus_1000"] = bench_scale("bus")
    scenarios["scale_tree_1000"] = bench_scale("tree")
    return scenarios


def merge(path: str, label: str, scenarios: dict) -> dict:
    doc = {}
    if os.path.exists(path):
        with open(path) as fh:
            doc = json.load(fh)
    doc[label] = scenarios
    before, after = doc.get("before"), doc.get("after")
    if before and after:
        speedup = {}
        for name, b in before.items():
            a = after.get(name)
            if a and a["wall_s"] > 0:
                speedup[name] = round(b["wall_s"] / a["wall_s"], 2)
        doc["speedup"] = speedup
        # the point of the exercise: same experiments, faster clock
        for name, b in before.items():
            a = after.get(name)
            if not a:
                continue
            for key in ("sim_ms", "wire_cells", "causal_ok", "heldback"):
                if key in b and b[key] != a.get(key):
                    raise SystemExit(
                        f"DIVERGENCE: {name}.{key} before={b[key]} "
                        f"after={a.get(key)} — optimization changed results"
                    )
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", choices=["before", "after"],
                        default="after")
    parser.add_argument(
        "--trace",
        action="store_true",
        help="measure obs-tracer overhead (merged under 'trace_overhead') "
        "and the critical-path profiler cost (merged under "
        "'profile_overhead'), and export traced-run histograms to "
        "BENCH_trace_histograms.json instead of re-running the hot-path "
        "scenarios",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="measure repro.metrics cost accounting: per-message stamp "
        "bytes / merge cells flat-vs-decomposed (merged under 'metrics') "
        "and the accounting wall-clock overhead on the churn workload "
        "(merged under 'metrics_overhead')",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="measure the sharded-parallel kernel against sequential on "
        "the s=150 fan-in workload (merged under 'parallel_speedup'); "
        "always verifies bit-identical observables, and records the "
        "wall-clock speedup when the host has enough CPUs",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_hotpath.json",
        ),
    )
    args = parser.parse_args()
    if args.parallel:
        # like 'trace_overhead'/'metrics', this section lives outside the
        # before/after labels; merge()'s bookkeeping never walks it
        section = bench_parallel_speedup()
        doc = {}
        if os.path.exists(args.out):
            with open(args.out) as fh:
                doc = json.load(fh)
        doc["parallel_speedup"] = section
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        shown = section.get("speedup", section.get("speedup_skipped"))
        print(
            f"parallel fan-in s=150: sequential "
            f"{section['sequential_wall_s']}s vs sharded "
            f"{section['sharded_wall_s']}s ({shown}) -> {args.out}"
        )
        return
    if args.metrics:
        # like 'trace_overhead', these live outside the before/after
        # labels: merge()'s speedup/divergence bookkeeping never sees them
        doc = {}
        if os.path.exists(args.out):
            with open(args.out) as fh:
                doc = json.load(fh)
        doc["metrics"] = bench_metrics_costs()
        doc["metrics_overhead"] = bench_metrics_overhead()
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        for size, row in sorted(doc["metrics"].items()):
            print(
                f"{size}: flat {row['flat']['stamp_bytes_per_msg']} B/msg "
                f"vs bus {row['bus']['stamp_bytes_per_msg']} B/msg "
                f"({row['bytes_ratio_flat_over_bus']}x)"
            )
        print(
            f"accounting overhead "
            f"{doc['metrics_overhead']['overhead_ratio']}x -> {args.out}"
        )
        return
    if args.trace:
        # 'trace_overhead' lives outside the before/after labels on
        # purpose: the speedup/divergence bookkeeping in merge() only
        # walks those two, so trace numbers never leak into it.
        overhead = bench_trace_overhead()
        profile = bench_profile_overhead()
        doc = {}
        if os.path.exists(args.out):
            with open(args.out) as fh:
                doc = json.load(fh)
        doc["trace_overhead"] = overhead
        doc["profile_overhead"] = profile
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        hist_path = os.path.join(
            os.path.dirname(args.out), "BENCH_trace_histograms.json"
        )
        with open(hist_path, "w") as fh:
            json.dump(trace_histograms(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(
            f"trace overhead {overhead['overhead_ratio']}x "
            f"({overhead['events_recorded']} events) -> {args.out}"
        )
        print(
            f"critpath profile overhead {profile['overhead_ratio']}x "
            f"({profile['deliveries']} deliveries, "
            f"sum_exact={profile['sum_exact']})"
        )
        print(f"wrote traced-run histograms to {hist_path}")
        return
    scenarios = measure()
    doc = merge(args.out, args.label, scenarios)
    print(f"wrote {args.label} ({len(scenarios)} scenarios) to {args.out}")
    if "speedup" in doc:
        for name, ratio in sorted(doc["speedup"].items()):
            print(f"  {name}: {ratio}x")


if __name__ == "__main__":
    sys.exit(main())
