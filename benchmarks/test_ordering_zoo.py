"""The ordering-mechanism zoo: every causal-ordering substrate this
repository implements, on one workload, one table.

Mechanisms (all behind the same CausalClock interface or substrate API):

- ``matrix`` — full-matrix stamps, the classical AAA algorithm (§3);
- ``updates`` — Appendix-A delta stamps;
- ``histories`` — explicit causal histories with ack-pruning ([10] family);
- ``fifo`` — the over-reduced FM-class baseline (per-pair FIFO, §2 [19]):
  cheapest wire, **forfeits global causality**;
- BSS broadcast — vector clocks + flooding ([13]/[17] substrate).

The table reports wire cells per hop and turn-around on the flat MOM,
plus whether the mechanism actually preserves causal order — the column
the paper's whole design is about keeping True for less.
"""

import pytest

from conftest import bench_once
from repro.baselines.causal_histories import HistoryClock
from repro.bench import run_baseline_unicast, run_remote_unicast
from repro.mom.config import _CLOCKS

N = 30
ROUNDS = 10


@pytest.fixture(autouse=True)
def register_history_clock():
    _CLOCKS["histories"] = HistoryClock
    yield
    _CLOCKS.pop("histories", None)


@pytest.mark.parametrize("clock", ["matrix", "updates", "histories", "fifo"])
def test_zoo_point(benchmark, clock):
    result = benchmark.pedantic(
        run_remote_unicast,
        kwargs=dict(server_count=N, topology="flat", rounds=ROUNDS, clock=clock),
        iterations=1,
        rounds=2,
    )
    benchmark.extra_info["clock"] = clock
    benchmark.extra_info["sim_ms"] = round(result.mean_turnaround_ms, 1)
    benchmark.extra_info["cells_per_hop"] = result.wire_cells // max(1, result.hops)
    benchmark.extra_info["causal_ok"] = result.causal_ok


def test_zoo_summary(benchmark):
    rows = bench_once(
        benchmark,
        lambda: {
            clock: run_remote_unicast(
                N, topology="flat", rounds=ROUNDS, clock=clock
            )
            for clock in ("matrix", "updates", "histories", "fifo")
        },
    )
    cells = {
        clock: result.wire_cells / max(1, result.hops)
        for clock, result in rows.items()
    }
    # wire footprint ordering on a quiet pair: full matrix >> the rest
    assert cells["matrix"] == N * N
    assert cells["updates"] <= 3
    assert cells["histories"] <= 4
    assert cells["fifo"] == 1
    # every *correct* mechanism preserves causality on this workload...
    for clock in ("matrix", "updates", "histories"):
        assert rows[clock].causal_ok
    # (fifo happens to pass too on a pure ping-pong — no relays — which is
    # exactly why §2 calls the reduction tempting; the relay tests and the
    # exhaustive checker are where it falls apart)
    assert rows["fifo"].causal_ok


def test_zoo_broadcast_substrate(benchmark):
    """The flooding substrate pays in packets what the others pay in
    cells: n-1 transmissions per logical message."""
    baseline = bench_once(
        benchmark, lambda: run_baseline_unicast(N, rounds=ROUNDS)
    )
    assert baseline.hops / baseline.messages == N - 1


def test_zoo_histories_widen_under_fanout(benchmark):
    """Histories are cheap on quiet pairs but track the causal past's
    breadth: a broadcast-y workload widens the stamps, while Updates
    deltas stay bounded by the matrix size."""
    from repro.bench import run_broadcast

    histories, updates = bench_once(
        benchmark,
        lambda: (
            run_broadcast(12, rounds=4, clock="histories"),
            run_broadcast(12, rounds=4, clock="updates"),
        ),
    )
    hist_cells = histories.wire_cells / max(1, histories.hops)
    upd_cells = updates.wire_cells / max(1, updates.hops)
    assert hist_cells > upd_cells
    assert histories.causal_ok and updates.causal_ok
