"""Wall-clock bench for the cold-path replay/diff tooling.

Records one traced s=150 churn run (the hold-back-heavy scenario the
observability tools exist for), then times the tool under test:

    PYTHONPATH=src python benchmarks/replay_bench.py --mode replay
    PYTHONPATH=src python benchmarks/replay_bench.py --mode diff

``--mode replay`` times full state reconstruction — a seek to mid-run, a
backward seek (checkpoint restore + re-apply), and a seek to the end —
and verifies the end snapshot against the live bus byte for byte.
``--mode diff`` times the canonical alignment + prefix-hash binary
search, on the identical pair (the worst case: every probe hashes equal)
and on a perturbed pair, verifying the seeded divergence is found.

The bench gate (tools/bench_baseline.json ``runtime`` entries) runs both
modes inside generous wall-clock bands: this is cold-path tooling, the
band exists so a quadratic regression cannot land silently.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def _churn_dump():
    from repro.mom.bus import MessageBus
    from repro.mom.config import BusConfig
    from repro.mom.workloads import OpenLoopDriver, SinkAgent
    from repro.obs.export import TraceDump
    from repro.obs.tracer import attach
    from repro.topology import builders

    config = BusConfig(
        topology=builders.bus(150, 10),
        record_delivered_log=True,
    )
    bus = MessageBus(config)
    for src, dst in [(0, 149), (149, 0), (74, 120)]:
        sink_id = bus.deploy(SinkAgent(), dst)
        driver = OpenLoopDriver(period_ms=7.0, count=15)
        driver.bind(sink_id)
        bus.deploy(driver, src)
    tracer = attach(bus)
    bus.start()
    bus.run_until_idle()
    return TraceDump.from_tracer(tracer), bus


def bench_replay(dump, bus):
    from repro.obs.replay import Replayer

    end = bus.sim.now
    started = time.perf_counter()
    replay = Replayer(dump)
    replay.seek(end * 0.5)
    mid = replay.snapshot_json()
    replay.seek(end)
    final = replay.snapshot_json()
    replay.seek(end * 0.25)  # backward: checkpoint restore + re-apply
    replay.seek(end)
    elapsed = time.perf_counter() - started
    assert replay.snapshot_json() == final
    live = json.dumps(bus.protocol_snapshot(), sort_keys=True)
    assert final == live, "replay bench identity check failed"
    return {
        "wall_s": round(elapsed, 4),
        "events": len(replay.events),
        "mid_bytes": len(mid),
        "identity_ok": True,
    }


def bench_diff(dump, bus):
    from repro.obs.diff import diff_dumps
    from repro.obs.export import TraceDump

    started = time.perf_counter()
    clean = diff_dumps(dump, dump)
    target = next(
        e for e in dump.events if e.kind == "commit" and e.nid >= 0
    )
    perturbed = TraceDump(
        dict(dump.meta),
        [
            e._replace(value=e.value + 1.0) if e is target else e
            for e in dump.events
        ],
        dump.cpu,
        dump.histograms,
    )
    report = diff_dumps(dump, perturbed)
    elapsed = time.perf_counter() - started
    assert clean is None, "self-diff must be clean"
    assert report is not None
    assert report.classification == "stamp-mismatch"
    assert report.nid == target.nid
    return {
        "wall_s": round(elapsed, 4),
        "events": len(dump.events),
        "found": report.classification,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=("replay", "diff"), required=True)
    args = parser.parse_args(argv)
    dump, bus = _churn_dump()
    result = (bench_replay if args.mode == "replay" else bench_diff)(
        dump, bus
    )
    print(json.dumps({"mode": args.mode, **result}))
    return 0


if __name__ == "__main__":
    sys.exit(main())
