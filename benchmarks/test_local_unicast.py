"""§6.1's first series: unicast on the local server.

The local bus bypasses the channel entirely (Figure 1), so the time is a
small constant independent of the system size — the baseline against which
the remote series' causality cost is visible.
"""

import pytest

from conftest import bench_once, record
from repro.bench import run_local_unicast

NS = [10, 50, 150]
ROUNDS = 20


@pytest.mark.parametrize("n", NS)
def test_local_point(benchmark, n):
    result = benchmark.pedantic(
        run_local_unicast,
        kwargs=dict(server_count=n, topology="flat", rounds=ROUNDS),
        iterations=1,
        rounds=2,
    )
    record(benchmark, result)
    assert result.causal_ok


def test_local_is_constant_in_n(benchmark):
    values = bench_once(
        benchmark,
        lambda: [
            run_local_unicast(n, rounds=ROUNDS).mean_turnaround_ms for n in NS
        ],
    )
    assert max(values) == pytest.approx(min(values))


def test_local_uses_no_network_and_no_stamps(benchmark):
    result = bench_once(benchmark, lambda: run_local_unicast(50, rounds=5))
    assert result.wire_cells == 0
    assert result.hops == 0
