"""Scale demonstration: 1000 servers.

The paper stops at 150 servers (their hardware limit: ~15 JVMs per host).
The simulator has no such limit, so this bench runs the domained MOM an
order of magnitude past the paper's edge and checks the §6.2 scaling
claims keep holding:

- flat MOM at n=1000 would cost ~`0.026·10⁶ ≈ 26 s` of CPU per message —
  we assert the *model's* prediction rather than simulate the absurdity;
- the bus of ~√n domains keeps remote unicast in the low hundreds of ms;
- a deeper tree (fixed domain size, log-depth routing) beats the bus at
  this scale *on state* while paying more hops — the K vs K′ trade §6.2
  works out.
"""

import pytest

from conftest import bench_once, record
from repro.bench import run_remote_unicast
from repro.simulation.costs import CostModel
from repro.topology.cost import flat_unicast_cost

N = 1000
ROUNDS = 3

#: REPRO_PARALLEL value per execution mode: ``auto`` pins two workers so
#: the sharded kernel actually engages even on single-core CI runners.
_PARALLEL_ENV = {"off": "0", "auto": "2"}


def _observables(result):
    """The sim-level outputs that must not depend on the execution mode."""
    return (
        result.mean_turnaround_ms,
        result.wire_cells,
        result.persisted_cells,
        result.clock_state_cells,
        result.messages,
        result.hops,
        result.causal_ok,
    )


@pytest.mark.parametrize("parallel", ["off", "auto"])
@pytest.mark.parametrize("kind", ["bus", "tree"])
def test_scale_point(benchmark, kind, parallel, monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", _PARALLEL_ENV[parallel])
    result = benchmark.pedantic(
        run_remote_unicast,
        kwargs=dict(server_count=N, topology=kind, rounds=ROUNDS),
        iterations=1,
        rounds=1,
    )
    benchmark.extra_info["parallel"] = parallel
    record(benchmark, result)
    assert result.causal_ok


def test_parallel_observables_identical(benchmark, monkeypatch):
    """The sharded kernel is invisible at n=1000: every simulated
    observable matches the sequential run exactly."""

    def both():
        runs = {}
        for parallel, env in _PARALLEL_ENV.items():
            monkeypatch.setenv("REPRO_PARALLEL", env)
            runs[parallel] = run_remote_unicast(
                N, topology="bus", rounds=ROUNDS
            )
        return runs

    runs = bench_once(benchmark, both)
    assert _observables(runs["auto"]) == _observables(runs["off"])


def test_bus_keeps_unicast_in_the_hundreds_of_ms(benchmark):
    result = bench_once(
        benchmark,
        lambda: run_remote_unicast(N, topology="bus", rounds=ROUNDS),
    )
    assert result.mean_turnaround_ms < 500.0
    # while the flat model predicts tens of seconds per round trip:
    model = CostModel()
    flat_per_message_ms = (
        model.ser_ms_per_cell + model.deser_ms_per_cell
        + 2 * model.io_ms_per_cell
    ) * flat_unicast_cost(N)
    assert flat_per_message_ms > 20_000

def test_state_stays_tractable(benchmark):
    bus_result, tree_result = bench_once(
        benchmark,
        lambda: (
            run_remote_unicast(N, topology="bus", rounds=1),
            run_remote_unicast(N, topology="tree", rounds=1, domain_size=8),
        ),
    )
    flat_cells = N ** 3  # what the undomained MOM would hold resident
    # bus of √n domains: ~n·(√n)² = n² cells — here ~900x below flat's n³
    assert bus_result.clock_state_cells < flat_cells / 500
    # fixed-size tree domains hold even less state than √n bus domains
    assert tree_result.clock_state_cells < bus_result.clock_state_cells
