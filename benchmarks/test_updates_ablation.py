"""Appendix-A ablation: full-matrix stamps vs the Updates algorithm.

§3's claim, quantified: the Updates optimization shrinks the *message*
size (to O(1) cells in steady-state unicast) but leaves the per-server
state and its persistent image at O(n²) — so it alone cannot make the MOM
scale, which is why §4 adds domains. We measure both wire footprints and
both turn-around curves, plus the combination (updates + domains +
journaling persistence), which is the cheapest of all.
"""

import pytest

from conftest import bench_once, record
from repro.bench import run_remote_unicast
from repro.simulation.costs import CostModel

NS = [10, 30, 50]
ROUNDS = 10


@pytest.mark.parametrize("n", NS)
@pytest.mark.parametrize("clock", ["matrix", "updates"])
def test_updates_point(benchmark, n, clock):
    result = benchmark.pedantic(
        run_remote_unicast,
        kwargs=dict(server_count=n, topology="flat", rounds=ROUNDS, clock=clock),
        iterations=1,
        rounds=2,
    )
    record(benchmark, result)
    assert result.causal_ok


def test_wire_footprint_collapses(benchmark):
    full, delta = bench_once(
        benchmark,
        lambda: (
            run_remote_unicast(50, rounds=ROUNDS, clock="matrix"),
            run_remote_unicast(50, rounds=ROUNDS, clock="updates"),
        ),
    )
    per_hop_full = full.wire_cells / full.hops
    per_hop_delta = delta.wire_cells / delta.hops
    assert per_hop_full == 2500
    assert per_hop_delta <= 3


def test_persistence_still_quadratic_with_updates(benchmark):
    """With the default full-image persistence the Updates run still pays
    O(n²) disk traffic per message — §3's second problem."""
    small, large = bench_once(
        benchmark,
        lambda: (
            run_remote_unicast(10, rounds=ROUNDS, clock="updates"),
            run_remote_unicast(50, rounds=ROUNDS, clock="updates"),
        ),
    )
    per_msg_small = small.persisted_cells / small.hops
    per_msg_large = large.persisted_cells / large.hops
    assert per_msg_large > 15 * per_msg_small


def test_journaling_persistence_flattens_updates_unicast(benchmark):
    """Updates + dirty-only persistence: the remaining causality cost is
    O(1) per message, so turn-around stops depending on n entirely."""
    model = CostModel(persist_dirty_only=True)
    small, large = bench_once(
        benchmark,
        lambda: (
            run_remote_unicast(
                10, rounds=ROUNDS, clock="updates", cost_model=model
            ),
            run_remote_unicast(
                50, rounds=ROUNDS, clock="updates", cost_model=model
            ),
        ),
    )
    assert large.mean_turnaround_ms == pytest.approx(
        small.mean_turnaround_ms, rel=0.02
    )


def test_updates_plus_domains_is_cheapest(benchmark):
    model = CostModel(persist_dirty_only=True)
    flat_full, combo = bench_once(
        benchmark,
        lambda: (
            run_remote_unicast(90, rounds=5, clock="matrix"),
            run_remote_unicast(
                90, rounds=5, topology="bus", clock="updates", cost_model=model
            ),
        ),
    )
    assert combo.mean_turnaround_ms < flat_full.mean_turnaround_ms
    assert combo.wire_cells < flat_full.wire_cells / 50
