"""§7 ablation: application-driven optimal splitting.

The conclusion sketches two ways to pick domains — by network architecture
or by application topology. This bench builds a clustered application
(three communities talking mostly internally), derives a decomposition
from its traffic with the §7 partitioner, and compares it against the flat
MOM and an application-blind uniform bus under the §6.2 cost model AND
under live simulation.
"""

import pytest

from repro.bench.harness import make_topology
from repro.mom import BusConfig, MessageBus
from repro.mom.agent import Agent
from repro.topology import (
    CommunicationGraph,
    bus as bus_topology,
    estimate_traffic_cost,
    partition_communication_graph,
    single_domain,
    validate_topology,
)

CLUSTERS = 4
SIZE = 4
N = CLUSTERS * SIZE


def cluster_members(cluster):
    """Clusters are *strided* across the id space (cluster = server mod k):
    an application's communication structure has no reason to align with
    server numbering, and a blind contiguous split cuts every one of these
    clusters into pieces."""
    return [s for s in range(N) if s % CLUSTERS == cluster]


def clustered_traffic():
    comm = CommunicationGraph(N)
    for c in range(CLUSTERS):
        members = cluster_members(c)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                comm.add_traffic(a, b, 10.0)
    for c in range(CLUSTERS - 1):
        comm.add_traffic(cluster_members(c)[0], cluster_members(c + 1)[0], 1.0)
    return comm


class ClusterTalker(Agent):
    """Talks to every peer in its cluster each round, occasionally across."""

    def __init__(self, peers, rounds):
        super().__init__()
        self.peers = peers
        self.rounds = rounds
        self.sent_rounds = 0

    def on_boot(self, ctx):
        self._round(ctx)

    def react(self, ctx, sender, payload):
        if payload == "kick" and self.sent_rounds < self.rounds:
            self._round(ctx)

    def _round(self, ctx):
        self.sent_rounds += 1
        for peer in self.peers:
            ctx.send(peer, "data")
        ctx.send(ctx.my_id, "kick")


def run_live(topology, rounds=3):
    mom = MessageBus(BusConfig(topology=topology, validate=False))
    ids = {}
    talkers = []
    for server in topology.servers:
        talker = ClusterTalker([], rounds)
        ids[server] = mom.deploy(talker, server)
        talkers.append((server, talker))
    for server, talker in talkers:
        talker.peers = [
            ids[s] for s in cluster_members(server % CLUSTERS) if s != server
        ]
    mom.start()
    mom.run_until_idle()
    assert mom.check_app_causality().respects_causality
    return mom


def test_partitioner_beats_flat_and_blind_bus_analytically(benchmark):
    comm = clustered_traffic()
    partitioned = benchmark(partition_communication_graph, comm, SIZE)
    validate_topology(partitioned)
    flat_cost = estimate_traffic_cost(single_domain(N), comm)
    # "blind" = the default √n-sized bus, which slices the 6-server
    # clusters across ~4-server domains and forces heavy intra-cluster
    # traffic through routers
    blind_cost = estimate_traffic_cost(bus_topology(N), comm)
    smart_cost = estimate_traffic_cost(partitioned, comm)
    assert smart_cost < flat_cost / 3
    assert smart_cost < blind_cost


def test_partitioner_beats_flat_in_live_simulation(benchmark):
    comm = clustered_traffic()
    partitioned = partition_communication_graph(comm, SIZE)

    def compute():
        return run_live(single_domain(N)).sim.now, run_live(partitioned).sim.now

    flat_time, smart_time = benchmark.pedantic(compute, iterations=1, rounds=1)
    assert smart_time < flat_time


@pytest.mark.parametrize("kind", ["flat", "partitioned"])
def test_partition_live_point(benchmark, kind):
    comm = clustered_traffic()
    topology = (
        single_domain(N)
        if kind == "flat"
        else partition_communication_graph(comm, SIZE)
    )
    mom = benchmark.pedantic(run_live, args=(topology,), iterations=1, rounds=1)
    benchmark.extra_info["sim_ms"] = round(mom.sim.now, 1)
    benchmark.extra_info["wire_cells"] = mom.network.cells_transmitted
