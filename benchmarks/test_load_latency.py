"""Latency under load: the queueing consequence of O(n²) per-message cost.

Not a paper figure — the paper measures unloaded turn-around — but the
direct operational translation of its complaint: at n=50 the flat MOM
spends ~45 ms of CPU per message, so any source sustaining more than
~22 msg/s saturates a server; the domained MOM's ~15 ms per hop triples
the sustainable rate. An open-loop source sweeps the sending period and
the sink records true sojourn times (intended-send to delivery).
"""

import pytest

from conftest import bench_once
from repro.bench import OpenLoopDriver, SinkAgent
from repro.mom import BusConfig, MessageBus
from repro.topology import bus as bus_topology
from repro.topology import single_domain

N = 50
COUNT = 40


def run_load(topology, period_ms, count=COUNT):
    mom = MessageBus(BusConfig(topology=topology))
    sink = SinkAgent()
    sink_id = mom.deploy(sink, topology.server_count - 1)
    driver = OpenLoopDriver(period_ms=period_ms, count=count)
    driver.bind(sink_id)
    mom.deploy(driver, 0)
    mom.start()
    mom.run_until_idle()
    assert sink.received == count
    return sink.sojourn_ms


@pytest.mark.parametrize("period", [100.0, 50.0, 25.0, 10.0])
@pytest.mark.parametrize("kind", ["flat", "bus"])
def test_load_point(benchmark, kind, period):
    topology = single_domain(N) if kind == "flat" else bus_topology(N)
    sojourns = benchmark.pedantic(
        run_load, args=(topology, period), iterations=1, rounds=1
    )
    benchmark.extra_info["kind"] = kind
    benchmark.extra_info["period_ms"] = period
    benchmark.extra_info["sojourn_p50"] = round(
        sorted(sojourns)[len(sojourns) // 2], 1
    )
    benchmark.extra_info["sojourn_max"] = round(max(sojourns), 1)


def test_flat_saturates_below_service_time(benchmark):
    light, heavy = bench_once(
        benchmark,
        lambda: (
            run_load(single_domain(N), 100.0),
            run_load(single_domain(N), 10.0),
        ),
    )
    # under light load sojourn is flat; past saturation it grows linearly
    # with the message index (queue build-up)
    assert max(light) < 1.2 * min(light)
    assert heavy[-1] > 5 * heavy[0]


def test_domains_triple_the_sustainable_rate(benchmark):
    flat, domained = bench_once(
        benchmark,
        lambda: (
            run_load(single_domain(N), 25.0),
            run_load(bus_topology(N), 25.0),
        ),
    )
    # 25 ms/msg overloads the flat MOM (45 ms service) but not the bus
    assert max(flat) > 2 * max(domained)
    assert max(domained) < 3 * min(domained)
