"""Cost of the observability layer (``repro.obs``).

Two claims to hold the tracer to:

1. **Off means off** — an un-traced bus carries only a handful of
   ``if self._tracer is not None`` guards on the hot path; its wall time
   must be indistinguishable from the seed's.
2. **On is observation-only** — with a tracer attached, the run may be
   slower in wall-clock, but every simulated observable (metrics
   snapshot, sim time) must be bit-identical: the tracer never touches
   metrics, never schedules events, never draws randomness.

The companion exporter (``export_bench.py --trace``) records the same
ratio into ``BENCH_hotpath.json`` under ``trace_overhead``.
"""

import pytest

from conftest import bench_once
from repro.mom import BusConfig, EchoAgent, FunctionAgent, MessageBus
from repro.obs.tracer import attach
from repro.simulation.network import UniformLatency
from repro.topology import single_domain


def _churn(trace=False):
    """The export_bench hold-back churn scenario: 4 senders flood one
    echo across a jittery 12-server domain."""
    mom = MessageBus(
        BusConfig(
            topology=single_domain(12),
            seed=11,
            latency=UniformLatency(0.1, 20.0),
        )
    )
    tracer = attach(mom) if trace else None
    echo_id = mom.deploy(EchoAgent(), 11)
    for src in range(4):
        sender = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx, echo_id=echo_id):
            for i in range(25):
                ctx.send(echo_id, i)

        sender.on_boot = boot
        mom.deploy(sender, src)
    mom.start()
    mom.run_until_idle()
    return mom, tracer


def test_untraced_churn(benchmark):
    mom, _ = bench_once(benchmark, _churn)
    benchmark.extra_info["sim_ms"] = round(mom.sim.now, 3)
    assert mom.check_app_causality().respects_causality


def test_traced_churn(benchmark):
    mom, tracer = bench_once(benchmark, lambda: _churn(trace=True))
    benchmark.extra_info["sim_ms"] = round(mom.sim.now, 3)
    benchmark.extra_info["events"] = tracer.ring.next_seq
    benchmark.extra_info["histograms"] = len(tracer.histograms)
    assert tracer.ring.next_seq > 0
    assert tracer.hist("holdback_dwell_ms").count > 0


def test_tracing_is_observation_only():
    """Same seed, same workload: traced and untraced runs agree on every
    simulated observable."""
    bare, _ = _churn()
    traced, tracer = _churn(trace=True)
    assert traced.metrics.snapshot() == bare.metrics.snapshot()
    assert traced.sim.now == bare.sim.now
    assert tracer.ring.next_seq > 0


def test_overhead_ratio_bounded():
    """Tracer overhead on the churn run stays within a generous bound.

    This is a smoke limit against pathological regressions (accidental
    O(n) work per event, dump-on-every-record), not a tight perf gate:
    CI machines are noisy, so we only fail beyond 10x.
    """
    import time

    def best_of(fn, repeat=3):
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    bare_s = best_of(lambda: _churn())
    traced_s = best_of(lambda: _churn(trace=True))
    assert traced_s < bare_s * 10, (
        f"tracer overhead {traced_s / bare_s:.1f}x exceeds the 10x "
        "pathological-regression bound"
    )


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-v"]))
