"""Figure 11: cost comparison WITH vs WITHOUT domains of causality.

The paper's headline picture: the flat curve starts lower but grows
quadratically; the domained curve starts higher (three routing hops) but
stays linear. They cross between 40 and 50 servers, and at 150 servers the
flat MOM is several times slower.
"""

import pytest

from conftest import bench_once, record
from repro.bench import run_remote_unicast
from repro.bench.figures import figure11

ROUNDS = 10


@pytest.mark.parametrize("n", [10, 50, 150])
@pytest.mark.parametrize("kind", ["flat", "bus"])
def test_fig11_point(benchmark, n, kind):
    result = benchmark.pedantic(
        run_remote_unicast,
        kwargs=dict(server_count=n, topology=kind, rounds=ROUNDS),
        iterations=1,
        rounds=2,
    )
    record(benchmark, result)
    assert result.causal_ok


def test_fig11_crossover_in_paper_band(benchmark):
    flat40, bus40, flat60, bus60 = bench_once(
        benchmark,
        lambda: (
            run_remote_unicast(40, topology="flat", rounds=ROUNDS),
            run_remote_unicast(40, topology="bus", rounds=ROUNDS),
            run_remote_unicast(60, topology="flat", rounds=ROUNDS),
            run_remote_unicast(60, topology="bus", rounds=ROUNDS),
        ),
    )
    assert flat40.mean_turnaround_ms < bus40.mean_turnaround_ms, (
        "below the crossover the flat MOM must win"
    )
    assert bus60.mean_turnaround_ms < flat60.mean_turnaround_ms, (
        "above the crossover the domains must win"
    )


def test_fig11_blowout_at_scale(benchmark):
    flat, domained = bench_once(
        benchmark,
        lambda: (
            run_remote_unicast(150, topology="flat", rounds=5),
            run_remote_unicast(150, topology="bus", rounds=5),
        ),
    )
    assert flat.mean_turnaround_ms > 4 * domained.mean_turnaround_ms, (
        "at n=150 the quadratic flat MOM must be several times slower"
    )


def test_fig11_figure_object_reports_crossover(benchmark):
    result = bench_once(benchmark, lambda: figure11(ns=[30, 40, 50, 60], rounds=5))
    assert any("crossover" in note or "win" in note for note in result.notes)
    winners = [row["winner"] for row in result.rows]
    assert winners[0] == "flat" and winners[-1] == "domains"
