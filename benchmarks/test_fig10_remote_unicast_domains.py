"""Figure 10: remote unicast WITH domains of causality (bus of ~√n
domains).

Paper series (ms): 10→159 up to 150→218 — a shallow linear slope. Ours
must stay within the same band (≈160–220 ms across the whole sweep), fit a
line with a small positive slope, and never exhibit the flat MOM's
quadratic blow-up.
"""

import pytest

from conftest import bench_once, record
from repro.bench import PAPER_FIG10, linear_fit, run_remote_unicast

NS = sorted(PAPER_FIG10)
ROUNDS = 10


@pytest.mark.parametrize("n", NS)
def test_fig10_point(benchmark, n):
    result = benchmark.pedantic(
        run_remote_unicast,
        kwargs=dict(server_count=n, topology="bus", rounds=ROUNDS),
        iterations=1,
        rounds=2,
    )
    record(benchmark, result)
    assert result.causal_ok
    assert result.mean_turnaround_ms == pytest.approx(PAPER_FIG10[n], rel=0.25)


def test_fig10_linear_shape(benchmark):
    values = bench_once(
        benchmark,
        lambda: [
            run_remote_unicast(
                n, topology="bus", rounds=ROUNDS
            ).mean_turnaround_ms
            for n in NS
        ],
    )
    fit = linear_fit(NS, values)
    assert 0.0 < fit.coeffs[0] < 1.0, "slope must be shallow and positive"
    # 15x more servers must cost far less than 2x the time
    assert values[-1] < 1.3 * values[0]


def test_fig10_routers_add_fixed_hops(benchmark):
    """The higher intercept vs Figure 7 is the 3-hop route: 6 channel sends
    per round trip instead of 2."""
    result = bench_once(
        benchmark, lambda: run_remote_unicast(50, topology="bus", rounds=5)
    )
    assert result.hops == result.messages * 3
