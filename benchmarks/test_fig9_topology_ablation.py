"""Figure 9 ablation: bus vs daisy vs tree organizations (§6.2).

The paper only *measures* the bus but derives the costs of the others:
the bus crosses at most 3 domains (C ≈ 3s²); a tree crosses ≈ 2d+1
domains (logarithmic but with a bigger constant K′ > K); a daisy's
worst-case route crosses every domain. The measured ordering at a fixed n
must reproduce that analysis.
"""

import pytest

from conftest import bench_once, record
from repro.bench import run_remote_unicast
from repro.topology.cost import bus_unicast_cost, tree_unicast_cost

N = 60
ROUNDS = 10


@pytest.mark.parametrize("kind", ["flat", "bus", "daisy", "tree"])
def test_fig9_point(benchmark, kind):
    result = benchmark.pedantic(
        run_remote_unicast,
        kwargs=dict(server_count=N, topology=kind, rounds=ROUNDS),
        iterations=1,
        rounds=2,
    )
    record(benchmark, result)
    assert result.causal_ok


def test_fig9_measured_ordering(benchmark):
    times = bench_once(
        benchmark,
        lambda: {
            kind: run_remote_unicast(
                N, topology=kind, rounds=ROUNDS
            ).mean_turnaround_ms
            for kind in ("flat", "bus", "daisy", "tree")
        },
    )
    assert times["bus"] < times["flat"], "past the crossover the bus wins"
    assert times["daisy"] > times["bus"], "the daisy's long chain is worse"
    assert times["daisy"] > times["flat"], (
        "at n=60 a ~8-domain daisy worst-case is worse than even the flat MOM"
    )


def test_fig9_state_is_what_domains_shrink(benchmark):
    flat, domained_results = bench_once(
        benchmark,
        lambda: (
            run_remote_unicast(N, topology="flat", rounds=2),
            [
                run_remote_unicast(N, topology=kind, rounds=2)
                for kind in ("bus", "daisy", "tree")
            ],
        ),
    )
    for domained in domained_results:
        assert domained.clock_state_cells < flat.clock_state_cells / 10


def test_fig9_analytic_tree_vs_bus_tradeoff(benchmark):
    """§6.2: with fixed s and k a tree is asymptotically better (log n vs
    n) but carries a larger constant, so the bus can win at moderate n."""
    moderate = 64
    huge = 10_000
    costs = bench_once(
        benchmark,
        lambda: (
            bus_unicast_cost(moderate, 8),
            tree_unicast_cost(moderate, 8, 2),
            tree_unicast_cost(huge, 8, 2),
            bus_unicast_cost(huge),
        ),
    )
    bus_moderate, tree_moderate, tree_huge, bus_huge = costs
    assert bus_moderate <= tree_moderate
    assert tree_huge < bus_huge
