"""§2 baseline comparison: vector-clock causal broadcast vs the
domain-partitioned matrix-clock MOM.

The related-work systems ([13], [17]) keep stamps at O(n) by *broadcasting
everything*: a logical unicast floods n-1 packets whose clock processing
every member must perform. The paper's approach keeps messages
point-to-point and shrinks the matrix state with domains. This bench
quantifies the trade: packets and wire cells per logical message, and
turn-around, across group sizes.
"""

import pytest

from conftest import bench_once, record
from repro.baselines import DaisyChain
from repro.bench import run_baseline_unicast, run_remote_unicast

NS = [10, 30, 50]
ROUNDS = 10


def run_daisy_baseline(group_count, group_size, rounds=ROUNDS):
    """Ping-pong across the whole Daisy chain; returns (mean_rtt, wire
    cells, packets, logical messages)."""
    chain = DaisyChain(group_count, group_size)
    far = chain.node_count - 1
    state = {"rounds": 0, "sent_at": 0.0, "rtts": []}

    def pong(origin, payload):
        chain.send(far, 0, payload)

    def ping(origin, payload):
        state["rtts"].append(chain.sim.now - state["sent_at"])
        state["rounds"] += 1
        if state["rounds"] < rounds:
            state["sent_at"] = chain.sim.now
            chain.send(0, far, state["rounds"])

    chain.set_handler(far, pong)
    chain.set_handler(0, ping)
    state["sent_at"] = 0.0
    chain.send(0, far, 0)
    chain.run_until_idle()
    mean_rtt = sum(state["rtts"]) / len(state["rtts"])
    return mean_rtt, chain.wire_cells, chain.packets_sent, 2 * rounds


@pytest.mark.parametrize("n", NS)
def test_baseline_point(benchmark, n):
    result = benchmark.pedantic(
        run_baseline_unicast,
        kwargs=dict(server_count=n, rounds=ROUNDS),
        iterations=1,
        rounds=2,
    )
    record(benchmark, result)
    assert result.causal_ok


def test_wire_packets_per_logical_message(benchmark):
    baseline, mom = bench_once(
        benchmark,
        lambda: (
            run_baseline_unicast(50, rounds=ROUNDS),
            run_remote_unicast(50, topology="bus", rounds=ROUNDS),
        ),
    )
    assert baseline.hops / baseline.messages == 49
    assert mom.hops / mom.messages <= 3


def test_wire_cells_comparison(benchmark):
    baseline, mom = bench_once(
        benchmark,
        lambda: (
            run_baseline_unicast(50, rounds=ROUNDS),
            run_remote_unicast(50, topology="bus", rounds=ROUNDS),
        ),
    )
    # baseline: ~n packets × n cells = ~n² cells per logical message;
    # domained MOM: ≤3 stamps of s² = n cells each.
    baseline_per_msg = baseline.wire_cells / baseline.messages
    mom_per_msg = mom.wire_cells / mom.messages
    assert baseline_per_msg > 10 * mom_per_msg


def test_daisy_baseline_vs_matrix_domains(benchmark):
    """Both scale by grouping — but the Daisy still floods each group it
    crosses, so its per-message packet count is (groups crossed)×(s-1)
    versus the MOM's one packet per domain hop."""
    n = 49  # daisy: 8 groups of 7 (7*6+... pick 8 groups of 7 -> 8*6+1=49)
    daisy_rtt, daisy_cells, daisy_packets, daisy_msgs = bench_once(
        benchmark, lambda: run_daisy_baseline(8, 7)
    )
    mom = run_remote_unicast(n, topology="daisy", rounds=ROUNDS, domain_size=7)
    daisy_packets_per_msg = daisy_packets / daisy_msgs
    mom_packets_per_msg = mom.hops / mom.messages
    assert daisy_packets_per_msg > 3 * mom_packets_per_msg
    assert daisy_cells / daisy_msgs > (mom.wire_cells / mom.messages) / 3


def test_turnaround_comparison_at_scale(benchmark):
    """The broadcast baseline's sender serializes n-1 transmissions per
    message, so even its latency loses to the routed MOM at size."""
    baseline, mom = bench_once(
        benchmark,
        lambda: (
            run_baseline_unicast(50, rounds=5),
            run_remote_unicast(50, topology="bus", rounds=5),
        ),
    )
    assert mom.mean_turnaround_ms < baseline.mean_turnaround_ms
