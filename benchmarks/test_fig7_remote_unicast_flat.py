"""Figure 7: remote unicast WITHOUT domains of causality.

Paper series (ms): 10→61, 20→69, 30→88, 40→136, 50→201; quadratic fit.
Ours must pass near the anchors and grow quadratically (leading
coefficient ≈ 0.052 ms/server², within the paper's 0.03–0.11 band).
"""

import pytest

from conftest import bench_once, record
from repro.bench import PAPER_FIG7, quadratic_fit, run_remote_unicast

NS = sorted(PAPER_FIG7)
ROUNDS = 10


@pytest.mark.parametrize("n", NS)
def test_fig7_point(benchmark, n):
    result = benchmark.pedantic(
        run_remote_unicast,
        kwargs=dict(server_count=n, topology="flat", rounds=ROUNDS),
        iterations=1,
        rounds=2,
    )
    record(benchmark, result)
    assert result.causal_ok
    # shape agreement: within 35% of the paper's measurement at each point
    assert result.mean_turnaround_ms == pytest.approx(
        PAPER_FIG7[n], rel=0.35
    )


def test_fig7_quadratic_shape(benchmark):
    values = bench_once(
        benchmark,
        lambda: [
            run_remote_unicast(
                n, topology="flat", rounds=ROUNDS
            ).mean_turnaround_ms
            for n in NS
        ],
    )
    fit = quadratic_fit(NS, values)
    assert fit.r_squared > 0.99
    assert 0.02 < fit.coeffs[0] < 0.12, (
        f"quadratic coefficient {fit.coeffs[0]} out of the paper's band"
    )
