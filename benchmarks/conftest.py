"""Shared helpers for the benchmark suite.

Each benchmark runs one experiment point of a paper figure. pytest-benchmark
measures the *wall time* of regenerating the point (the simulator's own
speed); the *simulated* turn-around — the number the paper reports — is
attached as ``extra_info`` and asserted against the expected shape.

Run with::

    pytest benchmarks/ --benchmark-only

and compare the ``sim_ms`` extra-info columns with EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def bench_once(benchmark, fn):
    """Run a whole-shape check exactly once under the benchmark fixture, so
    the assertion still executes in ``--benchmark-only`` mode."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)


def record(benchmark, result) -> None:
    """Attach an ExperimentResult's headline numbers to the benchmark."""
    benchmark.extra_info["n"] = result.server_count
    benchmark.extra_info["topology"] = result.topology
    benchmark.extra_info["sim_ms"] = round(result.mean_turnaround_ms, 1)
    benchmark.extra_info["wire_cells"] = result.wire_cells
    benchmark.extra_info["causal_ok"] = result.causal_ok
