#!/usr/bin/env python3
"""The perf-regression gate: compare committed ``BENCH_*.json`` snapshots
against ``tools/bench_baseline.json`` tolerance bands.

The baseline is a schema'd list of checks over dotted paths into the
benchmark JSON documents::

    {
     "format": "repro.bench-gate/v1",
     "targets": [
      {"file": "BENCH_hotpath.json",
       "checks": [
        {"path": "metrics.s16.flat.stamp_bytes_per_msg", "expect": 2048.0},
        {"path": "metrics_overhead.overhead_ratio", "max": 1.10},
        {"path": "speedup.pingpong_matrix_s150", "min": 2.0}
       ]}
     ]
    }

Check kinds (exactly one per check, plus the mandatory ``path``):

- ``expect`` — value must equal the expectation; optional ``rtol`` /
  ``atol`` widen the comparison for numbers (both default to 0, i.e.
  exact: right for simulated-time observables, which are deterministic).
- ``min`` / ``max`` — numeric bound (inclusive). Use for wall-clock
  ratios, which are noisy: bound, don't pin.
- a missing path fails the gate (the schema is part of the contract)
  unless the check carries ``"optional": true``.

Besides snapshot checks, the baseline may carry a ``"runtime"`` list of
wall-clock bands over live commands — used to keep the whole-program
linter inside its cold/warm time budget::

    "runtime": [
     {"name": "analysis-lint-cold",
      "argv": ["{python}", "-m", "repro.analysis", "lint", "src",
               "--cache", "{cache}"],
      "env": {"PYTHONPATH": "src"},
      "max_seconds": 10.0}
    ]

Each entry spawns ``argv`` (placeholders: ``{python}`` → this
interpreter, ``{cache}`` → a fresh per-entry temp file, ``{root}`` →
the snapshot root) with ``env`` merged over the inherited environment,
and fails if the command exits non-zero or the wall clock exceeds
``max_seconds``. ``"warmup": true`` runs the command once untimed first
(so a cache-backed entry measures the warm path); ``"best_of": N``
takes the fastest of N timed runs to damp scheduler noise.

Exit status 0 when every check passes, 1 otherwise — wire it into CI
after the benchmarks export fresh snapshots, or run it bare against the
committed ones:

    python tools/bench_gate.py
    python tools/bench_gate.py --baseline tools/bench_baseline.json --root .
    python tools/bench_gate.py --no-runtime   # snapshot checks only

Stdlib-only on purpose: the gate must run before/without PYTHONPATH.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Tuple

FORMAT = "repro.bench-gate/v1"

_MISSING = object()


def resolve(doc: Any, path: str) -> Any:
    """Walk a dotted path through dicts (and list indices)."""
    node = doc
    for part in path.split("."):
        if isinstance(node, dict):
            if part not in node:
                return _MISSING
            node = node[part]
        elif isinstance(node, list):
            try:
                node = node[int(part)]
            except (ValueError, IndexError):
                return _MISSING
        else:
            return _MISSING
    return node


def check_one(doc: Any, check: dict) -> Tuple[bool, str]:
    """Run one check; returns (ok, human-readable verdict)."""
    path = check["path"]
    value = resolve(doc, path)
    if value is _MISSING:
        if check.get("optional"):
            return True, f"SKIP  {path} (absent, optional)"
        return False, f"FAIL  {path}: missing from snapshot"
    if "expect" in check:
        expect = check["expect"]
        rtol = float(check.get("rtol", 0.0))
        atol = float(check.get("atol", 0.0))
        if isinstance(expect, (int, float)) and not isinstance(expect, bool):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return False, (
                    f"FAIL  {path}: expected number {expect}, got {value!r}"
                )
            band = max(atol, rtol * abs(float(expect)))
            if abs(float(value) - float(expect)) <= band:
                return True, f"ok    {path} = {value} (expect {expect}±{band:g})"
            return False, (
                f"FAIL  {path} = {value}, expected {expect} "
                f"± {band:g} (rtol={rtol}, atol={atol})"
            )
        if isinstance(expect, bool) and not isinstance(value, bool):
            return False, f"FAIL  {path} = {value!r}, expected {expect!r}"
        if value == expect:
            return True, f"ok    {path} = {value!r}"
        return False, f"FAIL  {path} = {value!r}, expected {expect!r}"
    if "min" in check or "max" in check:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False, f"FAIL  {path}: bound check on non-number {value!r}"
        lo = check.get("min")
        hi = check.get("max")
        if lo is not None and float(value) < float(lo):
            return False, f"FAIL  {path} = {value} < min {lo}"
        if hi is not None and float(value) > float(hi):
            return False, f"FAIL  {path} = {value} > max {hi}"
        bounds = []
        if lo is not None:
            bounds.append(f">= {lo}")
        if hi is not None:
            bounds.append(f"<= {hi}")
        return True, f"ok    {path} = {value} ({', '.join(bounds)})"
    return False, f"FAIL  {path}: check has no expect/min/max"


def run_runtime_entry(
    entry: dict, root: str
) -> Tuple[bool, str]:
    """Time one live command against its wall-clock band."""
    name = entry["name"]
    limit = float(entry["max_seconds"])
    rounds = int(entry.get("best_of", 1))
    env = dict(os.environ)
    env.update(entry.get("env", {}))
    with tempfile.TemporaryDirectory(prefix="bench-gate-") as tmp:
        subst: Dict[str, str] = {
            "python": sys.executable,
            "cache": os.path.join(tmp, "cache.json"),
            "root": root,
        }
        argv = [arg.format(**subst) for arg in entry["argv"]]
        runs = rounds + (1 if entry.get("warmup") else 0)
        best = None
        for index in range(runs):
            started = time.perf_counter()
            proc = subprocess.run(
                argv, cwd=root, env=env, capture_output=True, text=True
            )
            elapsed = time.perf_counter() - started
            if proc.returncode != 0:
                tail = (proc.stderr or proc.stdout or "").strip()
                tail = tail.splitlines()[-1] if tail else ""
                return False, (
                    f"FAIL  runtime {name}: exit {proc.returncode} ({tail})"
                )
            if index == 0 and entry.get("warmup"):
                continue
            best = elapsed if best is None else min(best, elapsed)
    assert best is not None
    if best > limit:
        return False, (
            f"FAIL  runtime {name} = {best:.2f}s > max {limit:g}s"
        )
    return True, f"ok    runtime {name} = {best:.2f}s (<= {limit:g}s)"


def _validate_runtime(baseline: dict) -> List[str]:
    errors = []
    runtime = baseline.get("runtime", [])
    if not isinstance(runtime, list):
        return ["'runtime' must be a list"]
    for ri, entry in enumerate(runtime):
        where = f"runtime[{ri}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(entry.get("name"), str):
            errors.append(f"{where}: missing 'name'")
        argv = entry.get("argv")
        if (
            not isinstance(argv, list)
            or not argv
            or not all(isinstance(arg, str) for arg in argv)
        ):
            errors.append(f"{where}: 'argv' must be a non-empty string list")
        limit = entry.get("max_seconds")
        if not isinstance(limit, (int, float)) or isinstance(limit, bool) \
                or limit <= 0:
            errors.append(f"{where}: 'max_seconds' must be a positive number")
        env = entry.get("env", {})
        if not isinstance(env, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in env.items()
        ):
            errors.append(f"{where}: 'env' must map strings to strings")
        best_of = entry.get("best_of", 1)
        if not isinstance(best_of, int) or isinstance(best_of, bool) \
                or best_of < 1:
            errors.append(f"{where}: 'best_of' must be a positive integer")
    return errors


def validate_baseline(baseline: dict) -> List[str]:
    """Schema errors in the baseline itself (a broken gate must not pass)."""
    errors = []
    if baseline.get("format") != FORMAT:
        errors.append(
            f"baseline format {baseline.get('format')!r} != {FORMAT!r}"
        )
    errors.extend(_validate_runtime(baseline))
    targets = baseline.get("targets")
    if not isinstance(targets, list) or not targets:
        errors.append("baseline has no targets")
        return errors
    for ti, target in enumerate(targets):
        if not isinstance(target.get("file"), str):
            errors.append(f"targets[{ti}]: missing 'file'")
        checks = target.get("checks")
        if not isinstance(checks, list) or not checks:
            errors.append(f"targets[{ti}]: missing 'checks'")
            continue
        for ci, check in enumerate(checks):
            where = f"targets[{ti}].checks[{ci}]"
            if not isinstance(check, dict) or "path" not in check:
                errors.append(f"{where}: missing 'path'")
                continue
            kinds = [k for k in ("expect", "min", "max") if k in check]
            if "expect" in kinds and len(kinds) > 1:
                errors.append(f"{where}: 'expect' excludes min/max")
            if not kinds:
                errors.append(f"{where}: needs expect, min or max")
    return errors


def run_gate(
    baseline_path: str,
    root: str,
    verbose: bool = False,
    runtime: bool = True,
) -> int:
    with open(baseline_path) as stream:
        baseline = json.load(stream)
    schema_errors = validate_baseline(baseline)
    if schema_errors:
        for error in schema_errors:
            print(f"FAIL  baseline schema: {error}")
        return 1
    failures = 0
    total = 0
    for target in baseline["targets"]:
        path = os.path.join(root, target["file"])
        if not os.path.exists(path):
            print(f"FAIL  {target['file']}: snapshot not found at {path}")
            failures += 1
            continue
        with open(path) as stream:
            doc = json.load(stream)
        for check in target["checks"]:
            ok, verdict = check_one(doc, check)
            total += 1
            if not ok:
                failures += 1
                print(f"{target['file']}: {verdict}")
            elif verbose:
                print(f"{target['file']}: {verdict}")
    if runtime:
        for entry in baseline.get("runtime", []):
            ok, verdict = run_runtime_entry(entry, root)
            total += 1
            if not ok:
                failures += 1
                print(verdict)
            elif verbose:
                print(verdict)
    if failures:
        print(f"bench gate: {failures}/{total} checks FAILED")
        return 1
    print(f"bench gate: all {total} checks passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare BENCH_*.json against baseline tolerance bands"
    )
    default_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(default_root, "tools", "bench_baseline.json"),
    )
    parser.add_argument(
        "--root",
        default=default_root,
        help="directory containing the BENCH_*.json snapshots",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    parser.add_argument(
        "--no-runtime",
        action="store_true",
        help="skip the live wall-clock runtime bands",
    )
    args = parser.parse_args(argv)
    return run_gate(
        args.baseline,
        args.root,
        verbose=args.verbose,
        runtime=not args.no_runtime,
    )


if __name__ == "__main__":
    sys.exit(main())
