"""Topic/queue destinations on top of the agent API.

The AAA MOM shipped with a JMS binding (the JORAM product line, §1
footnote 2); this package provides the same two destination kinds as plain
agents, so the domain-specific examples can be written against a familiar
messaging surface while everything underneath — routing, matrix clocks,
domains — is the paper's machinery:

- :class:`~repro.pubsub.destinations.TopicAgent` — publish/subscribe
  fan-out. Because the MOM delivers causally, two publications where the
  second causally depends on the first reach every subscriber in that
  order (per-source FIFO plus cross-source causality — the property the
  stock-ticker example demonstrates).
- :class:`~repro.pubsub.destinations.QueueAgent` — point-to-point with
  competing consumers, round-robin dispatch, durable buffering.
"""

from repro.pubsub.destinations import (
    TopicAgent,
    QueueAgent,
    Subscribe,
    Unsubscribe,
    Publish,
    Register,
    Put,
    Delivery,
)

__all__ = [
    "TopicAgent",
    "QueueAgent",
    "Subscribe",
    "Unsubscribe",
    "Publish",
    "Register",
    "Put",
    "Delivery",
]
