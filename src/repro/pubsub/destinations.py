"""Destination agents: topics (pub/sub) and queues (point-to-point).

Control messages are small frozen dataclasses; anything else sent to a
destination is treated as an error (explicit beats implicit). Destination
state — subscriber lists, buffered messages, round-robin position — lives
in plain attributes and is therefore covered by the default agent
snapshotting, i.e. it survives server crashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.errors import AgentError
from repro.mom.agent import Agent, ReactionContext
from repro.mom.identifiers import AgentId


@dataclass(frozen=True)
class Subscribe:
    """Ask a topic to add ``subscriber`` to its fan-out list."""

    subscriber: AgentId


@dataclass(frozen=True)
class Unsubscribe:
    """Ask a topic to remove ``subscriber`` (idempotent)."""

    subscriber: AgentId


@dataclass(frozen=True)
class Publish:
    """Publish ``body`` to every current subscriber of a topic."""

    body: Any


@dataclass(frozen=True)
class Register:
    """Register ``consumer`` with a queue (competing consumers)."""

    consumer: AgentId


@dataclass(frozen=True)
class Put:
    """Enqueue ``body``; the queue dispatches it to one consumer."""

    body: Any


@dataclass(frozen=True)
class Delivery:
    """What subscribers/consumers receive: the body plus provenance."""

    source: AgentId
    body: Any


class TopicAgent(Agent):
    """A publish/subscribe destination.

    Subscriptions and publications are ordinary causal messages, so a
    subscriber that subscribes *after* observing some publication will only
    miss publications that causally precede its subscription — there is no
    window in which fan-out order contradicts causal order.
    """

    def __init__(self) -> None:
        super().__init__()
        self.subscribers: List[AgentId] = []
        self.published = 0

    def react(self, ctx: ReactionContext, sender: AgentId, payload: Any) -> None:
        if isinstance(payload, Subscribe):
            if payload.subscriber not in self.subscribers:
                self.subscribers.append(payload.subscriber)
        elif isinstance(payload, Unsubscribe):
            if payload.subscriber in self.subscribers:
                self.subscribers.remove(payload.subscriber)
        elif isinstance(payload, Publish):
            self.published += 1
            delivery = Delivery(source=sender, body=payload.body)
            for subscriber in self.subscribers:
                ctx.send(subscriber, delivery)
        else:
            raise AgentError(
                f"topic {ctx.my_id!r} got unsupported payload {payload!r}"
            )


class QueueAgent(Agent):
    """A point-to-point destination with competing consumers.

    Messages put while no consumer is registered are buffered durably and
    dispatched round robin as consumers appear.
    """

    def __init__(self) -> None:
        super().__init__()
        self.consumers: List[AgentId] = []
        self.buffered: List[Delivery] = []
        self._round_robin = 0

    def react(self, ctx: ReactionContext, sender: AgentId, payload: Any) -> None:
        if isinstance(payload, Register):
            if payload.consumer not in self.consumers:
                self.consumers.append(payload.consumer)
            self._drain(ctx)
        elif isinstance(payload, Put):
            self.buffered.append(Delivery(source=sender, body=payload.body))
            self._drain(ctx)
        else:
            raise AgentError(
                f"queue {ctx.my_id!r} got unsupported payload {payload!r}"
            )

    def _drain(self, ctx: ReactionContext) -> None:
        if not self.consumers:
            return
        while self.buffered:
            delivery = self.buffered.pop(0)
            consumer = self.consumers[self._round_robin % len(self.consumers)]
            self._round_robin += 1
            ctx.send(consumer, delivery)
