"""The ``CausalCore`` plug-in contract: one causal-delivery protocol, boxed.

The channel (:mod:`repro.mom.channel`) never talks to a clock directly any
more — every protocol decision goes through a *core*:

- **stamping** (:meth:`CausalCore.stamp`) records a send on the domain
  clock and returns the stamp to piggyback;
- **deliverability** (:meth:`CausalCore.deliverable`,
  :meth:`CausalCore.duplicate`) answers the receiver-side questions of
  §5's pseudocode;
- **merge/commit** (:meth:`CausalCore.merge`) folds a delivered stamp into
  the receiver's clock;
- **hold-back indexing** (:meth:`CausalCore.holdback_key`,
  :meth:`CausalCore.next_expected`) tells the channel which hold-back
  bucket a stamp belongs to and which single bucket per sender can
  possibly contain a deliverable message, preserving the O(1) wake-up
  probe;
- **wire codec** (:meth:`CausalCore.encode_stamp`,
  :meth:`CausalCore.decode_stamp`) turns a stamp into a flat, picklable
  tuple and back — the boundary a real (non-simulated) transport would
  serialize at;
- **resize** (:meth:`CausalCore.resize`) is the hook for growing a domain
  without rebooting the bus (matrix clocks support it; cores for which
  growth is meaningless raise).

Why a class and not "just the clock"? The clock interface
(:mod:`repro.clocks.base`) is the per-domain *state*; the core is the
*algorithm family* — a stateless singleton that knows how to create,
interrogate, serialize and migrate that state. Splitting them lets the
static contract verifier (rules R018–R023 in
:mod:`repro.analysis.contract`) and the small-scope model checker
(:mod:`repro.analysis.model`) reason about every pluggable protocol from
its registration site alone, before a single scenario runs.

Cores are registered in :mod:`repro.protocol.registry` and looked up by
:class:`~repro.mom.config.BusConfig` via ``clock_algorithm``.
"""

from __future__ import annotations

import abc
from typing import Tuple, Type

from repro.clocks.base import CausalClock, Stamp
from repro.errors import ProtocolError


class CausalCore(abc.ABC):
    """One causal-delivery protocol: clock factory, delivery tests, codec.

    Concrete cores are stateless singletons; all per-domain state lives in
    the :class:`~repro.clocks.base.CausalClock` instances they create.
    Subclasses must provide the three class attributes and every abstract
    method; the hold-back hooks have defaults that match the seed
    channel's behaviour and only need overriding for protocols with a
    different FIFO-next structure.
    """

    name: str
    """Registry key; also the ``BusConfig.clock_algorithm`` value."""

    clock_cls: Type[CausalClock]
    """The per-domain clock state class this core creates."""

    stamp_cls: Type[Stamp]
    """The stamp class :meth:`stamp` returns. The sharded kernel ships
    stamps across process pipes, so this class must stay picklable —
    rule R021 proves it statically."""

    causal: bool = True
    """``False`` marks a deliberately non-causal baseline (per-pair FIFO).
    The model-checker admission gate rejects non-causal cores by
    construction, so blanket runs skip them; checking one explicitly
    prints its violating interleaving."""

    # ------------------------------------------------------------------
    # Clock lifecycle
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def create_clock(self, size: int, owner: int) -> CausalClock:
        """A fresh domain clock for a domain of ``size`` servers, held by
        domain-local server ``owner``."""

    def resize(self, clock: CausalClock, new_size: int) -> CausalClock:
        """Grow ``clock`` to cover ``new_size`` servers, preserving all
        recorded causal knowledge. Returns the grown clock (a new
        instance; the caller rebinds). Cores without a growth story keep
        this default and raise."""
        raise ProtocolError(
            f"core {self.name!r} does not support domain resize"
        )

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def stamp(self, clock: CausalClock, dest: int) -> Stamp:
        """Record a send towards domain-local ``dest`` on ``clock`` and
        return the stamp to piggyback on the message."""

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def deliverable(self, clock: CausalClock, stamp: Stamp) -> bool:
        """The deliverability test at ``clock.owner`` (RST for the matrix
        family). Must be pure — rule R020 proves the whole call closure
        mutation-free."""

    @abc.abstractmethod
    def duplicate(self, clock: CausalClock, stamp: Stamp) -> bool:
        """Has the stamped message already been delivered at
        ``clock.owner``? The exactly-once filter for retransmissions."""

    @abc.abstractmethod
    def merge(self, clock: CausalClock, stamp: Stamp) -> None:
        """Commit a deliverable stamp into ``clock`` (``M := max(M, W)``
        for the matrix family). Called exactly once per message."""

    # ------------------------------------------------------------------
    # Hold-back indexing (defaults match the seed channel)
    # ------------------------------------------------------------------

    def holdback_key(self, stamp: Stamp) -> Tuple[int, int]:
        """The hold-back bucket for ``stamp``: ``(sender, shipped seq
        towards the destination)``. At most one bucket per sender can
        contain deliverable messages at any instant (module docstring of
        :mod:`repro.mom.channel`)."""
        return stamp.sender, stamp.entry(stamp.sender, stamp.dest)

    def next_expected(self, clock: CausalClock, sender: int) -> int:
        """The one sequence number from ``sender`` that could be
        deliverable at ``clock.owner`` right now — the wake-up probe."""
        return clock.cell(sender, clock.owner) + 1

    # ------------------------------------------------------------------
    # Wire codec
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def encode_stamp(self, stamp: Stamp) -> Tuple:
        """Flatten ``stamp`` to a plain tuple of ints/tuples — the wire
        representation a real transport would serialize."""

    @abc.abstractmethod
    def decode_stamp(self, payload: Tuple) -> Stamp:
        """Rebuild a stamp from :meth:`encode_stamp` output. The decoded
        stamp must make the same protocol decisions as the original
        (delta-merge fast paths may degrade to full merges)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class DelegatingCore(CausalCore):
    """A core whose protocol behaviour is entirely the clock's.

    All four registered cores delegate this way today — the contract
    boundary exists so future cores (hybrid buffering, PC-broadcast)
    *can* put protocol logic core-side. Still abstract: the wire codec is
    per-stamp-format and stays with the concrete core.
    """

    def create_clock(self, size: int, owner: int) -> CausalClock:
        return self.clock_cls(size, owner)

    def stamp(self, clock: CausalClock, dest: int) -> Stamp:
        return clock.prepare_send(dest)

    def deliverable(self, clock: CausalClock, stamp: Stamp) -> bool:
        return clock.can_deliver(stamp)

    def duplicate(self, clock: CausalClock, stamp: Stamp) -> bool:
        return clock.is_duplicate(stamp)

    def merge(self, clock: CausalClock, stamp: Stamp) -> None:
        clock.deliver(stamp)


class AdHocCore(DelegatingCore):
    """Adapter for clock classes plugged in through the legacy
    ``repro.mom.config._CLOCKS`` table without a registered core (the
    extension point a few tests use). Boots and runs; has no wire codec.
    """

    def __init__(self, name: str, clock_cls: Type[CausalClock]) -> None:
        self.name = name
        self.clock_cls = clock_cls

    def encode_stamp(self, stamp: Stamp) -> Tuple:
        raise ProtocolError(
            f"ad-hoc core {self.name!r} has no wire codec; register a "
            "CausalCore to serialize stamps"
        )

    def decode_stamp(self, payload: Tuple) -> Stamp:
        raise ProtocolError(
            f"ad-hoc core {self.name!r} has no wire codec; register a "
            "CausalCore to deserialize stamps"
        )
