"""The built-in causal cores: matrix, updates, histories, fifo.

Each core pairs a clock class from :mod:`repro.clocks` or
:mod:`repro.baselines` with a wire codec for its stamp format. Delivery
behaviour is pure delegation (:class:`~repro.protocol.core.DelegatingCore`),
so factoring the protocol behind the core boundary changes no simulation
result — the differential tests pin bit-identity against the pre-core
implementation.
"""

from __future__ import annotations

from array import array
from typing import Tuple

from repro.baselines.causal_histories import (
    HistoryClock,
    HistoryStamp,
    _MessageRef,
)
from repro.baselines.local_fifo import FifoClock, FifoStamp
from repro.clocks.base import CausalClock, Stamp
from repro.clocks.matrix import MatrixClock, MatrixStamp
from repro.clocks.updates import CellUpdate, UpdatesClock, UpdateStamp
from repro.errors import ProtocolError
from repro.protocol.core import DelegatingCore
from repro.protocol.registry import register_core


def _expect(stamp: Stamp, cls: type) -> None:
    if not isinstance(stamp, cls):
        raise ProtocolError(
            f"expected {cls.__name__}, got {type(stamp).__name__}"
        )


class MatrixCore(DelegatingCore):
    """§3's classic full-matrix algorithm (the paper's baseline stamping).

    The wire format is the whole s×s matrix, row-major. Decoded stamps
    drop the sender's change-log window, so receivers fall back to the
    always-correct full merge — same decisions, same merged cells.
    """

    name = "matrix"
    clock_cls = MatrixClock
    stamp_cls = MatrixStamp

    def encode_stamp(self, stamp: Stamp) -> Tuple:
        _expect(stamp, MatrixStamp)
        return (stamp.sender, stamp.dest, stamp.size, tuple(stamp._buf))

    def decode_stamp(self, payload: Tuple) -> MatrixStamp:
        sender, dest, size, cells = payload
        if len(cells) != size * size:
            raise ProtocolError(
                f"matrix stamp payload carries {len(cells)} cells, "
                f"expected {size * size}"
            )
        return MatrixStamp(sender, dest, size, array("q", cells))

    def resize(self, clock: CausalClock, new_size: int) -> MatrixClock:
        if not isinstance(clock, MatrixClock):
            raise ProtocolError(
                f"expected MatrixClock, got {type(clock).__name__}"
            )
        return clock.grow(new_size)


class UpdatesCore(DelegatingCore):
    """Appendix A's Updates algorithm: delta stamps, identical delivery
    semantics. The wire format is the modified-cell list."""

    name = "updates"
    clock_cls = UpdatesClock
    stamp_cls = UpdateStamp

    def encode_stamp(self, stamp: Stamp) -> Tuple:
        _expect(stamp, UpdateStamp)
        return (
            stamp.sender,
            stamp.dest,
            tuple((u.row, u.col, u.value) for u in stamp.updates),
        )

    def decode_stamp(self, payload: Tuple) -> UpdateStamp:
        sender, dest, cells = payload
        return UpdateStamp(
            sender,
            dest,
            tuple(CellUpdate(row, col, value) for row, col, value in cells),
        )


class HistoryCore(DelegatingCore):
    """Causal histories with pruning (§2's unbounded-history ancestor,
    :mod:`repro.baselines.causal_histories`). Registered so the baseline
    boots on a real bus for head-to-head benches; the wire format ships
    the ref, the pruned dependency set and the ack counter."""

    name = "histories"
    clock_cls = HistoryClock
    stamp_cls = HistoryStamp

    def encode_stamp(self, stamp: Stamp) -> Tuple:
        _expect(stamp, HistoryStamp)
        ref = stamp.ref
        deps = tuple(
            sorted((d.src, d.dst, d.seq) for d in stamp.deps)
        )
        return ((ref.src, ref.dst, ref.seq), deps, stamp.acked)

    def decode_stamp(self, payload: Tuple) -> HistoryStamp:
        (src, dst, seq), deps, acked = payload
        return HistoryStamp(
            _MessageRef(src, dst, seq),
            frozenset(_MessageRef(s, d, q) for s, d, q in deps),
            acked,
        )


class FifoCore(DelegatingCore):
    """Per-pair FIFO only — the deliberately broken §2 baseline
    (:mod:`repro.baselines.local_fifo`). ``causal = False``: the model
    checker's blanket admission run skips it, and checking it explicitly
    prints the triangle-relay interleaving that voids causal delivery."""

    name = "fifo"
    clock_cls = FifoClock
    stamp_cls = FifoStamp
    causal = False

    def encode_stamp(self, stamp: Stamp) -> Tuple:
        _expect(stamp, FifoStamp)
        return (stamp.sender, stamp.dest, stamp.seq)

    def decode_stamp(self, payload: Tuple) -> FifoStamp:
        sender, dest, seq = payload
        return FifoStamp(sender, dest, seq)


register_core(MatrixCore())
register_core(UpdatesCore())
register_core(HistoryCore())
register_core(FifoCore())
