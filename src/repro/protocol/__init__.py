"""Pluggable causal-delivery protocol cores (the ``CausalCore`` boundary).

Importing this package registers the built-in cores (matrix, updates,
histories, fifo); see :mod:`repro.protocol.core` for the contract and
:mod:`repro.analysis.contract` for the rules that statically verify it.
"""

from repro.protocol.core import AdHocCore, CausalCore, DelegatingCore
from repro.protocol.registry import (
    core_names,
    get_core,
    has_core,
    register_core,
    registered_cores,
)
from repro.protocol import cores as _cores  # noqa: F401  (registers built-ins)

__all__ = [
    "AdHocCore",
    "CausalCore",
    "DelegatingCore",
    "core_names",
    "get_core",
    "has_core",
    "register_core",
    "registered_cores",
]
