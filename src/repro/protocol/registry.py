"""The core registry: name → :class:`~repro.protocol.core.CausalCore`.

Registration happens at import time of :mod:`repro.protocol.cores` (which
``repro.protocol``'s ``__init__`` triggers), so the registration sites are
plain module-level ``register_core(SomeCore())`` calls — statically
discoverable, which is what the contract verifier (rule R023 and friends,
:mod:`repro.analysis.contract`) keys on.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ProtocolError
from repro.protocol.core import CausalCore

_REGISTRY: Dict[str, CausalCore] = {}


def register_core(core: CausalCore) -> CausalCore:
    """Register ``core`` under ``core.name``; returns it for chaining.

    Re-registering the same core class under the same name is idempotent
    (module reloads, test re-imports); a *different* class claiming a
    taken name is a configuration bug and raises.
    """
    name = core.name
    existing = _REGISTRY.get(name)
    if existing is not None and type(existing) is not type(core):
        raise ProtocolError(
            f"core name {name!r} already registered by "
            f"{type(existing).__name__}"
        )
    _REGISTRY[name] = core
    return core


def get_core(name: str) -> CausalCore:
    """The registered core called ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ProtocolError(
            f"no causal core registered as {name!r}; "
            f"known cores: {sorted(_REGISTRY)}"
        ) from None


def has_core(name: str) -> bool:
    return name in _REGISTRY


def core_names() -> List[str]:
    """All registered core names, sorted."""
    return sorted(_REGISTRY)


def registered_cores() -> List[CausalCore]:
    """All registered cores, in name order."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
