"""Trace export: JSONL dumps and Chrome ``trace_event`` JSON.

A :class:`TraceDump` is the serializable view of a tracer — metadata,
retained events, CPU slices and histogram snapshots — round-trippable
through JSONL (``write_jsonl`` / ``read_jsonl``), which is also the
flight-recorder artifact format the ``python -m repro.obs`` CLI reads.

:func:`chrome_trace` converts a dump to the Chrome ``trace_event`` JSON
object format, so a traced run opens directly in Perfetto or
``chrome://tracing``: every server is a *process*; thread 0 is the engine
(posts, reactions, crashes), thread 1 the CPU occupancy, and each domain
the server belongs to gets its own track for channel events. Hold-back
dwells and whole-message lifetimes are nestable async spans (``b``/``e``),
because they overlap freely; CPU occupancy uses complete ``X`` slices,
which the single-threaded :class:`~repro.simulation.kernel.Processor`
guarantees never overlap. Timestamps are sim-time milliseconds scaled to
the format's microseconds.
"""

from __future__ import annotations

import json
from typing import IO, TYPE_CHECKING, Any, Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import TraceEvent

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer

#: Thread ids inside each server "process" of a Chrome trace.
TID_ENGINE = 0
TID_CPU = 1
TID_DOMAIN_BASE = 2

#: Event kinds shown on the engine track (the rest go to domain tracks).
_ENGINE_KINDS = frozenset(
    {"post", "enqueue_in", "reaction_start", "reaction_commit",
     "crash", "recover", "ack"}
)


class TraceDump:
    """A tracer's recorded state, detached from the live bus."""

    def __init__(
        self,
        meta: Dict[str, Any],
        events: List[TraceEvent],
        cpu: List[Tuple[int, float, float]],
        histograms: Dict[str, Dict[str, Any]],
    ) -> None:
        self.meta = meta
        self.events = events
        self.cpu = cpu
        self.histograms = histograms

    @classmethod
    def from_tracer(cls, tracer: "Tracer") -> "TraceDump":
        meta: Dict[str, Any] = {
            "now": tracer.bus.sim.now,
            "capacity": tracer.ring.capacity,
            "next_seq": tracer.ring.next_seq,
            "dropped": tracer.ring.dropped,
            "server_ids": list(tracer.server_ids),
            "domains": {d: list(s) for d, s in tracer.domains.items()},
        }
        histograms = {
            name: {
                "snapshot": hist.snapshot(),
                "buckets": [list(b) for b in hist.buckets()],
            }
            for name, hist in sorted(tracer.histograms.items())
        }
        return cls(
            meta, tracer.ring.events(), list(tracer.cpu_slices), histograms
        )

    def events_of(self, nid: int) -> List[TraceEvent]:
        return [e for e in self.events if e.nid == nid]

    def __repr__(self) -> str:
        return (
            f"TraceDump(events={len(self.events)}, "
            f"cpu={len(self.cpu)}, histograms={sorted(self.histograms)})"
        )


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------


def write_jsonl(dump: TraceDump, stream: IO[str]) -> int:
    """Write a dump as JSONL; returns the number of lines written."""
    lines = 1
    stream.write(json.dumps({"record": "meta", **dump.meta}) + "\n")
    for event in dump.events:
        row = {"record": "event", **event._asdict()}
        stream.write(json.dumps(row) + "\n")
        lines += 1
    for server, start, duration in dump.cpu:
        stream.write(
            json.dumps(
                {"record": "cpu", "server": server,
                 "start": start, "duration": duration}
            )
            + "\n"
        )
        lines += 1
    for name, payload in dump.histograms.items():
        stream.write(
            json.dumps({"record": "hist", "name": name, **payload}) + "\n"
        )
        lines += 1
    return lines


def read_jsonl(stream: IO[str]) -> TraceDump:
    """Rebuild a :class:`TraceDump` from its JSONL form."""
    meta: Dict[str, Any] = {}
    events: List[TraceEvent] = []
    cpu: List[Tuple[int, float, float]] = []
    histograms: Dict[str, Dict[str, Any]] = {}
    for line in stream:
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        record = row.pop("record", None)
        if record == "meta":
            meta = row
        elif record == "event":
            events.append(TraceEvent(**row))
        elif record == "cpu":
            cpu.append((row["server"], row["start"], row["duration"]))
        elif record == "hist":
            name = row.pop("name")
            histograms[name] = row
        else:
            raise ConfigurationError(
                f"unknown trace dump record type: {record!r}"
            )
    if not meta:
        raise ConfigurationError("trace dump has no meta record")
    return TraceDump(meta, events, cpu, histograms)


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------


def _tid_of(event: TraceEvent, domain_tids: Dict[str, int]) -> int:
    if event.kind in _ENGINE_KINDS or event.domain is None:
        return TID_ENGINE
    return domain_tids[event.domain]


def chrome_trace(
    dump: TraceDump, critical_path: bool = False
) -> Dict[str, Any]:
    """The dump in Chrome ``trace_event`` JSON object format.

    With ``critical_path=True`` the run's critical path (the chain of
    deliveries that determined the makespan, each exactly attributed to
    {transit, hop_relay, causal_holdback, queue, processing}) is overlaid
    as nestable async spans in the ``critpath`` category — off by default
    because flight-recorder crash dumps rarely contain complete chains
    and must stay cheap to write.
    """
    domains: Dict[str, List[int]] = dump.meta.get("domains", {})
    domain_tids = {
        d: TID_DOMAIN_BASE + i for i, d in enumerate(sorted(domains))
    }
    trace_events: List[Dict[str, Any]] = []

    # -- metadata: name the processes and threads --------------------
    server_ids: List[int] = dump.meta.get("server_ids", [])
    for server in server_ids:
        trace_events.append(
            {"name": "process_name", "ph": "M", "pid": server, "tid": 0,
             "args": {"name": f"server {server}"}}
        )
        named = {TID_ENGINE: "engine", TID_CPU: "cpu"}
        for domain, members in sorted(domains.items()):
            if server in members:
                named[domain_tids[domain]] = f"domain {domain}"
        for tid, name in sorted(named.items()):
            trace_events.append(
                {"name": "thread_name", "ph": "M", "pid": server,
                 "tid": tid, "args": {"name": name}}
            )

    body: List[Dict[str, Any]] = []

    # -- instant events: every retained lifecycle edge ----------------
    for event in dump.events:
        body.append(
            {
                "name": event.kind,
                "ph": "i",
                "s": "t",
                "pid": event.server,
                "tid": _tid_of(event, domain_tids),
                "ts": event.t * 1000.0,
                "args": {
                    "nid": event.nid,
                    "domain": event.domain,
                    "src": event.src,
                    "dst": event.dst,
                    "hop_seq": event.hop_seq,
                    "value": event.value,
                },
            }
        )

    # -- async spans: hold-back dwells (overlap freely => nestable) ---
    held: Dict[Tuple[int, int, int], TraceEvent] = {}
    for event in dump.events:
        key = (event.server, event.src, event.hop_seq)
        if event.kind == "holdback_enter":
            held[key] = event
        elif event.kind == "holdback_release":
            enter = held.pop(key, None)
            if enter is None:
                continue  # the enter edge fell off the ring
            span_id = f"hold-{event.src}-{event.hop_seq}"
            common = {
                "cat": "holdback",
                "name": f"holdback nid={event.nid}",
                "id": span_id,
                "pid": event.server,
                "tid": _tid_of(event, domain_tids),
                "args": {"nid": event.nid, "dwell_ms": event.value},
            }
            body.append({**common, "ph": "b", "ts": enter.t * 1000.0})
            body.append({**common, "ph": "e", "ts": event.t * 1000.0})

    # -- async spans: whole-message lifetime (post -> last commit) ----
    first_post: Dict[int, TraceEvent] = {}
    last_commit: Dict[int, TraceEvent] = {}
    for event in dump.events:
        if event.nid < 0:
            continue
        if event.kind == "post" and event.nid not in first_post:
            first_post[event.nid] = event
        elif event.kind == "reaction_commit":
            last_commit[event.nid] = event
    for nid, post in sorted(first_post.items()):
        commit = last_commit.get(nid)
        if commit is None:
            continue  # still in flight (or the tail was dropped)
        common = {
            "cat": "message",
            "name": f"msg {nid}",
            "id": f"msg-{nid}",
            "pid": post.server,
            "tid": TID_ENGINE,
            "args": {"nid": nid, "e2e_ms": commit.value},
        }
        body.append({**common, "ph": "b", "ts": post.t * 1000.0})
        body.append({**common, "ph": "e", "ts": commit.t * 1000.0})

    # -- CPU occupancy: X slices (serialized by the Processor) --------
    for server, start, duration in dump.cpu:
        body.append(
            {
                "name": "busy",
                "ph": "X",
                "pid": server,
                "tid": TID_CPU,
                "ts": start * 1000.0,
                "dur": duration * 1000.0,
            }
        )

    # -- async spans: the run's critical path, exactly attributed -----
    if critical_path:
        from repro.obs.critpath import critpath_spans

        body.extend(critpath_spans(dump.events))

    body.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))
    trace_events.extend(body)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "sim_now_ms": dump.meta.get("now", 0.0),
            "dropped_events": dump.meta.get("dropped", 0),
        },
    }
