"""The structured event stream: typed lifecycle events in a ring buffer.

Every instrumented edge of the message path emits one :class:`TraceEvent`
into an append-only :class:`EventRing`. Events are recorded in **sim-time**
(``Simulator.now``, milliseconds) and carry the per-message *trace id* —
the bus-wide notification id — which survives router hops, so all the
hops, hold-backs and reactions of one cross-domain message share one id
and reassemble into one causal path.

The ring is bounded: a run longer than the capacity keeps only the most
recent events (``dropped`` counts the overwritten ones), which is exactly
the flight-recorder contract — when something goes wrong, the tail of the
stream is what matters.

Recording is observation-only: no simulated cost, no RNG draw, no metric
counter, so a traced run is bit-identical to a bare one.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

from repro.errors import ConfigurationError

#: Default ring capacity (events retained before wraparound).
DEFAULT_CAPACITY = 65536


class TraceEvent(NamedTuple):
    """One lifecycle edge of one message, at one instant of sim-time.

    Attributes:
        seq: global, monotonically increasing event number (never reused;
            survives ring wraparound, so gaps reveal dropped events).
        t: simulated time of the edge, in milliseconds.
        kind: one of :data:`KINDS`.
        server: the global server id where the edge happened.
        nid: the trace id — the notification's bus-wide id (``-1`` for
            events with no associated message, e.g. boot reactions,
            ``crash``/``recover``).
        domain: the causality domain of a channel edge, else ``None``.
        src: hop source server (channel edges) or ``-1``.
        dst: hop destination server (channel edges) or ``-1``.
        hop_seq: the hop's per-sender channel sequence number, or ``-1``.
        value: kind-specific scalar — transmit/retransmit: attempt number;
            ``holdback_release``: dwell ms; ``ack``: RTT ms; ``commit``:
            merged clock cells; ``reaction_start``: engine-queue wait ms;
            ``reaction_commit``: end-to-end delivery ms (final hop only).
    """

    seq: int
    t: float
    kind: str
    server: int
    nid: int
    domain: Optional[str] = None
    src: int = -1
    dst: int = -1
    hop_seq: int = -1
    value: float = 0.0


#: The event taxonomy (see docs/observability.md for the lifecycle map).
KINDS = frozenset(
    {
        "post",  # bus.dispatch accepted an agent-level send
        "stamp",  # channel stamped + persisted one hop (QueueOUT entry)
        "transmit",  # the hop left for the wire (first attempt)
        "retransmit",  # channel- or transport-level resend
        "ack",  # the hop's transaction ACK came back (QueueOUT removal)
        "arrive",  # envelope reached the receiving channel (pre-holdback)
        "holdback_enter",  # arrived too early; parked in the hold-back store
        "holdback_release",  # the clock caught up; commit scheduled
        "commit",  # receiver transaction: clock merge + persist + ACK
        "route_forward",  # committed hop re-posted towards the next domain
        "enqueue_in",  # notification appended to the engine's QueueIN
        "reaction_start",  # engine dequeued it; agent code about to run
        "reaction_commit",  # atomic reaction commit (delivery complete)
        "crash",  # server fail-stop
        "recover",  # server recovery (reload + retransmit)
    }
)


class EventRing:
    """Append-only bounded event store with O(1) writes.

    The ring keeps the last ``capacity`` events; ``next_seq`` counts every
    event ever recorded and :attr:`dropped` how many fell off the head.
    """

    __slots__ = ("capacity", "_ring", "_next_seq", "_cleared_at")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"event ring capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._ring: List[Optional[TraceEvent]] = [None] * capacity
        self._next_seq = 0
        self._cleared_at = 0

    @property
    def next_seq(self) -> int:
        """The seq the next recorded event will get (= total recorded)."""
        return self._next_seq

    @property
    def dropped(self) -> int:
        """Events overwritten by wraparound."""
        return max(0, self._next_seq - self.capacity)

    def __len__(self) -> int:
        return min(self._next_seq - self._cleared_at, self.capacity)

    def record(
        self,
        t: float,
        kind: str,
        server: int,
        nid: int,
        domain: Optional[str] = None,
        src: int = -1,
        dst: int = -1,
        hop_seq: int = -1,
        value: float = 0.0,
    ) -> TraceEvent:
        """Append one event; returns it (with its assigned ``seq``)."""
        seq = self._next_seq
        self._next_seq = seq + 1
        event = TraceEvent(
            seq, t, kind, server, nid, domain, src, dst, hop_seq, value
        )
        self._ring[seq % self.capacity] = event
        return event

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        n = self._next_seq
        if n <= self.capacity:
            return [e for e in self._ring[:n] if e is not None]
        head = n % self.capacity
        tail = self._ring[head:] + self._ring[:head]
        return [e for e in tail if e is not None]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def clear(self) -> None:
        """Drop retained events (the seq counter keeps counting)."""
        self._ring = [None] * self.capacity
        self._cleared_at = self._next_seq

    def __repr__(self) -> str:
        return (
            f"EventRing(len={len(self)}, capacity={self.capacity}, "
            f"dropped={self.dropped})"
        )
