"""Compatibility shim: :class:`LogHistogram` moved to ``repro.metrics``.

The tracer's histograms and the always-on accounting registry share one
implementation; it now lives at the bottom of the layer stack
(:mod:`repro.metrics.histogram`) so every layer may use it. Importing it
from here keeps existing callers and dumps working unchanged.
"""

from repro.metrics.histogram import LogHistogram

__all__ = ["LogHistogram"]
