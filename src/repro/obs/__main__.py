"""``python -m repro.obs`` — inspect trace dumps from the command line.

Subcommands:

- ``record``   run a small Fig-10-style routed workload with tracing on
  and write a dump directory (the quickest way to get something to look
  at);
- ``summary``  event counts by kind + histogram percentiles of a dump;
- ``trace``    reconstruct and pretty-print the causal path of one
  message (by notification id) across all its router hops;
- ``why``      the causal-wait explainer: for each hop of one message
  that was held back, name the dependency whose commit released it and
  how long the wait cost;
- ``critpath`` the exact five-way latency decomposition of one delivery
  ({transit, hop_relay, causal_holdback, queue, processing} summing
  bit-identically to the end-to-end latency), or — with ``--run`` — the
  chain of deliveries that determined the whole run's makespan;
- ``shards``   render a ``repro.shardmon/v1`` shard-runtime telemetry
  payload (or ``--demo`` to produce one live from a sharded run);
- ``replay``   time-travel debugging: reconstruct every server's protocol
  state (clock matrices, hold-back queues, in-flight sets, delivered
  prefixes) at any sim-time ``--at T``, or run forward to a watchpoint
  (``--watch-holdback SERVER:DEPTH`` / ``--watch-deliverable NID``);
- ``diff``     causal run-diff of two dumps: binary-search the first
  causally-meaningful divergence, classify it (delivery-order flip,
  dwell change, missing message, stamp mismatch, timing shift) and — with
  ``--explain`` — chain into the ``why``/``critpath`` explainers;
- ``slowest``  the k messages with the worst end-to-end delivery time;
- ``export``   convert a dump to Chrome ``trace_event`` JSON for
  Perfetto / ``chrome://tracing`` (with the critical-path span overlay).

Every subcommand that reads a dump accepts either the artifact directory
written by the flight recorder / ``record`` or a bare ``events.jsonl``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.obs import flight_recorder, shardmon
from repro.obs.critpath import CATEGORIES, CriticalPathAnalyzer
from repro.obs.events import TraceEvent
from repro.obs.export import TraceDump, chrome_trace, read_jsonl
from repro.obs.replay import check_dump_complete
from repro.obs.tracer import attach


def _load(dump_path: str) -> TraceDump:
    path = dump_path
    if os.path.isdir(path):
        path = os.path.join(path, "events.jsonl")
    if not os.path.exists(path):
        raise ConfigurationError(f"no trace dump at {dump_path!r}")
    with open(path) as stream:
        return read_jsonl(stream)


def _fmt_event(event: TraceEvent) -> str:
    where = f"S{event.server}"
    hop = (
        f" S{event.src}->S{event.dst}"
        if event.src >= 0 and event.dst >= 0
        else ""
    )
    domain = f" [{event.domain}]" if event.domain else ""
    detail = ""
    if event.kind in {"transmit", "retransmit"}:
        detail = f" attempt={int(event.value)}"
    elif event.kind == "holdback_release":
        detail = f" dwell={event.value:.3f}ms"
    elif event.kind == "ack":
        detail = f" rtt={event.value:.3f}ms"
    elif event.kind == "commit":
        detail = f" merged_cells={int(event.value)}"
    elif event.kind == "reaction_start":
        detail = f" queue_wait={event.value:.3f}ms"
    elif event.kind == "reaction_commit" and event.value > 0:
        detail = f" e2e={event.value:.3f}ms"
    return (
        f"  t={event.t:10.3f}ms  {where:>5}  "
        f"{event.kind:<17}{domain}{hop}{detail}"
    )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def cmd_summary(args: argparse.Namespace) -> int:
    dump = _load(args.dump)
    check_dump_complete(dump)
    meta = dump.meta
    print(f"trace dump: {args.dump}")
    print(
        f"  sim time {meta.get('now', 0.0):.3f}ms, "
        f"{meta.get('next_seq', 0)} events recorded, "
        f"{len(dump.events)} retained, {meta.get('dropped', 0)} dropped"
    )
    print(
        f"  {len(meta.get('server_ids', []))} servers, "
        f"domains: {', '.join(sorted(meta.get('domains', {})))}"
    )
    counts: Dict[str, int] = {}
    for event in dump.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    print("\nevents by kind:")
    for kind in sorted(counts, key=lambda k: (-counts[k], k)):
        print(f"  {kind:<17} {counts[kind]:>8}")
    if dump.histograms:
        print("\nhistograms:")
        header = (
            f"  {'name':<28} {'count':>7} {'mean':>9} "
            f"{'p50':>9} {'p90':>9} {'p95':>9} {'p99':>9}"
        )
        print(header)
        for name in sorted(dump.histograms):
            snap = dump.histograms[name].get("snapshot", {})
            print(
                f"  {name:<28} {int(snap.get('count', 0)):>7} "
                f"{snap.get('mean', 0.0):>9.3f} {snap.get('p50', 0.0):>9.3f} "
                f"{snap.get('p90', 0.0):>9.3f} {snap.get('p95', 0.0):>9.3f} "
                f"{snap.get('p99', 0.0):>9.3f}"
            )
    return 0


def _hop_summary(events: List[TraceEvent]) -> List[str]:
    """One line per hop: endpoints, domain, and where its time went."""
    hops: Dict[Tuple[int, int], Dict[str, float]] = {}
    order: List[Tuple[int, int]] = []
    for event in events:
        if event.src < 0 or event.dst < 0:
            continue
        key = (event.src, event.hop_seq)
        if key not in hops:
            hops[key] = {"dst": float(event.dst)}
            order.append(key)
        bucket = hops[key]
        if event.kind == "stamp":
            bucket["stamped_at"] = event.t
            bucket["domain_known"] = 1.0
            bucket.setdefault("dwell", 0.0)
        elif event.kind == "holdback_release":
            bucket["dwell"] = event.value
        elif event.kind == "commit":
            bucket["committed_at"] = event.t
    lines = []
    for src, hop_seq in order:
        bucket = hops[(src, hop_seq)]
        if "stamped_at" not in bucket or "committed_at" not in bucket:
            continue
        domain = next(
            (
                e.domain
                for e in events
                if e.src == src and e.hop_seq == hop_seq and e.domain
            ),
            "?",
        )
        total = bucket["committed_at"] - bucket["stamped_at"]
        dwell = bucket.get("dwell", 0.0)
        lines.append(
            f"  hop S{src}->S{int(bucket['dst'])} [{domain}]: "
            f"{total:.3f}ms stamp-to-commit"
            + (f", {dwell:.3f}ms held back" if dwell > 0 else "")
        )
    return lines


def cmd_trace(args: argparse.Namespace) -> int:
    dump = _load(args.dump)
    events = dump.events_of(args.nid)
    if not events:
        print(f"no events for message {args.nid} in {args.dump}")
        return 1
    print(f"message {args.nid}: {len(events)} events")
    for line in _hop_summary(events):
        print(line)
    print()
    for event in events:
        print(_fmt_event(event))
    return 0


def cmd_why(args: argparse.Namespace) -> int:
    """Explain a message's causal waits.

    A hold-back ends inside another envelope's commit transaction (the
    release is recorded at the same instant, right after that commit's
    event), so the blocking dependency of each held hop is the latest
    ``commit`` event at the same server and domain with a smaller ``seq``
    than the ``holdback_release``.
    """
    dump = _load(args.dump)
    check_dump_complete(dump)
    events = dump.events_of(args.nid)
    if not events:
        print(f"no events for message {args.nid} in {args.dump}")
        return 1
    waits = CriticalPathAnalyzer(dump.events).waits(args.nid)
    e2e = next(
        (
            e.value
            for e in events
            if e.kind == "reaction_commit" and e.value > 0
        ),
        None,
    )
    header = f"message {args.nid}"
    if e2e is not None:
        header += f": delivered end-to-end in {e2e:.3f}ms"
    print(header)
    if not waits:
        print(
            "  never held back: every hop was deliverable on arrival "
            "(no causal wait)"
        )
        return 0
    total_dwell = 0.0
    for wait in waits:
        where = f"S{wait['server']} [{wait['domain']}]"
        if wait["released_at"] is None:
            print(
                f"  hop S{wait['src']}->S{wait['dst']} at {where}: "
                f"held back at t={wait['entered_at']:.3f}ms and NEVER "
                "released (crash wiped it, or the run stopped early)"
            )
            continue
        dwell = wait["dwell_ms"]
        total_dwell += dwell
        print(
            f"  hop S{wait['src']}->S{wait['dst']} at {where}: held back "
            f"{dwell:.3f}ms (t={wait['entered_at']:.3f} -> "
            f"{wait['released_at']:.3f}ms)"
        )
        if wait["blocker_nid"] is not None:
            print(
                f"    released by the commit of message "
                f"{wait['blocker_nid']} (hop S{wait['blocker_src']}->"
                f"S{wait['blocker_dst']}, merged {wait['blocker_cells']} "
                f"cells) — message {args.nid} causally depended on it"
            )
        else:
            print(
                "    releasing commit not retained in the ring "
                "(wraparound dropped it)"
            )
    if e2e is not None and e2e > 0:
        share = 100.0 * total_dwell / e2e
        print(
            f"  causal wait total: {total_dwell:.3f}ms "
            f"({share:.1f}% of end-to-end latency)"
        )
    else:
        print(f"  causal wait total: {total_dwell:.3f}ms")
    return 0


def _print_breakdown(breakdown, verbose: bool = True) -> None:
    route = " -> ".join(f"S{s}" for s in breakdown.route)
    hops = max(0, len(breakdown.route) - 1)
    print(
        f"message {breakdown.nid}: delivered end-to-end in "
        f"{breakdown.e2e_ms:.3f}ms  ({route}, {hops} hop"
        f"{'s' if hops != 1 else ''})"
    )
    total = breakdown.total
    print(f"  {'category':<17} {'ms':>12} {'share':>8}")
    for name in CATEGORIES:
        value = breakdown.totals[name]
        share = 100.0 * float(value / total) if total else 0.0
        print(f"  {name:<17} {float(value):>12.3f} {share:>7.1f}%")
    exact = "exact" if breakdown.is_exact() else "INEXACT"
    print(
        f"  {'total':<17} {float(total):>12.3f} {100.0:>7.1f}%  "
        f"[{exact}: categories sum to the measured latency]"
    )
    if verbose and breakdown.segments:
        print("  segments:")
        for segment in breakdown.segments:
            print(
                f"    t={segment.t0:10.3f} -> {segment.t1:10.3f}ms  "
                f"{segment.category:<17} at S{segment.server}"
                + (f" (hop {segment.hop})" if segment.hop >= 0 else "")
            )


def cmd_critpath(args: argparse.Namespace) -> int:
    """Exact latency attribution: one delivery, or the run's makespan."""
    dump = _load(args.dump)
    check_dump_complete(dump)
    analyzer = CriticalPathAnalyzer(dump.events)
    if args.run:
        steps = analyzer.run_critical_path()
        if not steps:
            print("no completed deliveries in the dump")
            return 1
        print(
            f"run critical path: {len(steps)} chained deliver"
            f"{'ies' if len(steps) != 1 else 'y'} (root cause first)"
        )
        for index, breakdown in enumerate(steps):
            route = " -> ".join(f"S{s}" for s in breakdown.route)
            held = float(breakdown.totals["causal_holdback"])
            print(
                f"  [{index}] message {breakdown.nid}: "
                f"{breakdown.e2e_ms:.3f}ms  {route}"
                + (f"  (held back {held:.3f}ms)" if held > 0 else "")
            )
        summary = analyzer.category_summary()
        print(
            f"\nrun summary: {summary['deliveries']} deliveries, "
            f"{summary['e2e_ms_total']:.3f}ms total end-to-end"
            + ("" if summary["exact"] else "  [INEXACT]")
        )
        print(f"  {'category':<17} {'ms':>12} {'share':>8}")
        for name in CATEGORIES:
            row = summary["categories"][name]
            print(
                f"  {name:<17} {row['ms']:>12.3f} "
                f"{100.0 * row['share']:>7.1f}%"
            )
        return 0
    if args.nid is None:
        print("error: give a message nid, or --run", file=sys.stderr)
        return 2
    breakdown = analyzer.breakdown(args.nid)
    if breakdown is None:
        print(
            f"message {args.nid} has no complete delivery chain in "
            f"{args.dump} (in flight, local-only, or its head fell off "
            "the ring)"
        )
        return 1
    _print_breakdown(breakdown)
    if float(breakdown.totals["causal_holdback"]) > 0:
        print(
            f"  try: python -m repro.obs why {args.nid} {args.dump}  "
            "(names the blocking dependency)"
        )
    return 0


def cmd_shards(args: argparse.Namespace) -> int:
    """Render shard-runtime telemetry, from a file or a live demo run."""
    if args.demo:
        payload = _demo_shard_payload(args)
        if payload is None:
            return 1
    else:
        if args.telemetry is None:
            print(
                "error: give a telemetry JSON path, or --demo",
                file=sys.stderr,
            )
            return 2
        payload = shardmon.load(args.telemetry)
    print(shardmon.render(payload))
    return 0


def _demo_shard_payload(args: argparse.Namespace):
    # The `record` demo workload, but on the sharded kernel: routed
    # ping-pong across a bus-of-domains, telemetry on.
    from repro.mom.agent import EchoAgent
    from repro.mom.config import BusConfig
    from repro.mom.parallel import ShardedBus, make_bus
    from repro.mom.workloads import PingPongDriver
    from repro.topology import builders

    os.environ["REPRO_PARALLEL"] = str(args.workers)
    os.environ.pop("REPRO_SHARDMON", None)
    topology = builders.bus(args.servers, args.domain_size)
    config = BusConfig(topology=topology, seed=args.seed)
    bus = make_bus(config)
    if not isinstance(bus, ShardedBus):
        print(
            "error: this configuration is not shard-eligible on this "
            "host (fork start method required)",
            file=sys.stderr,
        )
        return None
    echo_id = bus.deploy(EchoAgent(), topology.server_count - 1)
    driver = PingPongDriver(args.rounds)
    driver.bind(echo_id)
    bus.deploy(driver, 0)
    bus.start()
    bus.run_until_idle()
    return bus.shard_telemetry()


def cmd_replay(args: argparse.Namespace) -> int:
    """Time-travel replay: state at ``--at T``, or run to a watchpoint."""
    from repro.obs.replay import (
        Replayer,
        watch_deliverable,
        watch_holdback_exceeds,
    )

    dump = _load(args.dump)
    replay = Replayer(dump)
    watch = None
    if args.watch_holdback is not None:
        try:
            server_text, depth_text = args.watch_holdback.split(":", 1)
            watch = watch_holdback_exceeds(
                int(server_text), int(depth_text)
            )
        except ValueError:
            print(
                "error: --watch-holdback takes SERVER:DEPTH (e.g. 3:5)",
                file=sys.stderr,
            )
            return 2
    if args.watch_deliverable is not None:
        watch = watch_deliverable(args.watch_deliverable)

    if watch is not None:
        hit = replay.run_until(watch, limit=args.at)
        if hit is None:
            bound = (
                f" by t={args.at:.3f}ms" if args.at is not None
                else " before the dump ended"
            )
            print(f"watchpoint never triggered{bound}")
            return 1
        print(f"watchpoint hit at event #{replay.cursor - 1}:")
        print(_fmt_event(hit))
        print()
    elif args.at is not None:
        replay.seek(args.at)
    else:
        replay.seek(float("inf"))

    snapshot = replay.snapshot(include_delivered=not args.no_delivered)
    if args.json:
        print(json.dumps(snapshot, sort_keys=True, indent=2))
        return 0
    print(
        f"replayed {replay.cursor}/{len(replay.events)} events, "
        f"state at t={replay.now:.3f}ms"
    )
    print(
        f"  {'server':<8} {'state':<9} {'epoch':>5} {'hop_seq':>7} "
        f"{'unacked':>7} {'holdback':>8} {'pending':>7} {'queued':>6} "
        f"{'delivered':>9}"
    )
    for server_key in sorted(snapshot["servers"], key=int):
        entry = snapshot["servers"][server_key]
        held = sum(len(v) for v in entry["holdback"].values())
        print(
            f"  S{server_key:<7} "
            f"{'CRASHED' if entry['crashed'] else 'up':<9} "
            f"{entry['epoch']:>5} {entry['hop_seq']:>7} "
            f"{len(entry['unacked']):>7} {held:>8} "
            f"{len(entry['pending']):>7} {len(entry['queued']):>6} "
            f"{len(entry.get('delivered', [])):>9}"
        )
    print("  (use --json for the full state: clocks, mids, prefixes)")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """Causal run-diff: first meaningful divergence of two dumps."""
    from repro.obs.diff import diff_dumps, explain

    dump_a = _load(args.dump_a)
    dump_b = _load(args.dump_b)
    report = diff_dumps(dump_a, dump_b)
    if report is None:
        print(
            f"runs are causally identical "
            f"({len(dump_a.events)} vs {len(dump_b.events)} events, "
            "canonical streams match)"
        )
        return 0
    if args.json:
        print(json.dumps(report.as_dict(), sort_keys=True))
        return 1
    if args.explain:
        print(explain(report, dump_a, dump_b))
        return 1
    print(
        f"first divergence at canonical event {report.index}: "
        f"{report.classification}"
    )
    print(
        f"  nid {report.nid}, t={report.t:.3f}ms, server S{report.server}"
    )
    print(f"  {report.detail}")
    if report.a_event is not None:
        print(f"  run A:{_fmt_event(report.a_event)}")
    if report.b_event is not None:
        print(f"  run B:{_fmt_event(report.b_event)}")
    print(
        "  try: python -m repro.obs diff --explain "
        f"{args.dump_a} {args.dump_b}  (chains into why/critpath)"
    )
    return 1


def cmd_slowest(args: argparse.Namespace) -> int:
    dump = _load(args.dump)
    e2e: Dict[int, float] = {}
    for event in dump.events:
        if event.kind == "reaction_commit" and event.value > 0:
            e2e[event.nid] = max(e2e.get(event.nid, 0.0), event.value)
    if not e2e:
        print("no completed cross-server deliveries in the dump")
        return 1
    ranked = sorted(e2e.items(), key=lambda kv: (-kv[1], kv[0]))
    print(f"{'nid':>8}  {'e2e_ms':>10}  hops  route")
    for nid, latency in ranked[: args.k]:
        hops = [
            e for e in dump.events_of(nid) if e.kind == "stamp"
        ]
        route = " -> ".join(
            [f"S{h.src}" for h in hops] + [f"S{hops[-1].dst}"]
        ) if hops else "(local)"
        print(f"{nid:>8}  {latency:>10.3f}  {len(hops):>4}  {route}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    dump = _load(args.dump)
    trace = chrome_trace(dump, critical_path=not args.no_critpath)
    out = args.output
    if out is None:
        base = args.dump.rstrip("/")
        out = (
            os.path.join(base, "trace.json")
            if os.path.isdir(base)
            else base + ".trace.json"
        )
    with open(out, "w") as stream:
        json.dump(trace, stream)
    print(
        f"wrote {len(trace['traceEvents'])} trace events to {out} "
        "(open in https://ui.perfetto.dev)"
    )
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    # A Fig-10-style routed run: a bus-of-domains topology, the driver on
    # server 0 ping-ponging with an echo agent several domains away, so
    # every message crosses routers (multi-hop traces) and the hold-back
    # machinery actually engages.
    from repro.mom.agent import EchoAgent
    from repro.mom.bus import MessageBus
    from repro.mom.config import BusConfig
    from repro.mom.workloads import PingPongDriver
    from repro.topology import builders

    topology = builders.bus(args.servers, args.domain_size)
    config = BusConfig(
        topology=topology,
        seed=args.seed,
        record_app_trace=True,
    )
    bus = MessageBus(config)
    tracer = attach(bus)
    echo_id = bus.deploy(EchoAgent(), topology.server_count - 1)
    driver = PingPongDriver(args.rounds)
    driver.bind(echo_id)
    bus.deploy(driver, 0)
    bus.start()
    bus.run_until_idle()

    if args.output is not None:
        os.environ["REPRO_OBS_DIR"] = args.output
    path = flight_recorder.dump(tracer, "record")
    routed = sorted(
        {e.nid for e in tracer.ring.events() if e.kind == "route_forward"}
    )
    print(f"traced {args.rounds} ping-pong rounds across {args.servers} "
          f"servers ({len(topology.domains)} domains)")
    print(f"dump: {path}")
    if routed:
        print(
            f"routed messages: {routed[:8]}{' ...' if len(routed) > 8 else ''}"
        )
        print(f"try: python -m repro.obs trace {routed[0]} {path}")
    return 0


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="inspect repro.obs trace dumps",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="event counts + histogram table")
    p.add_argument("dump", help="dump directory or events.jsonl")
    p.set_defaults(fn=cmd_summary)

    p = sub.add_parser("trace", help="causal path of one message")
    p.add_argument("nid", type=int, help="notification id (trace id)")
    p.add_argument("dump", help="dump directory or events.jsonl")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "why", help="which dependency held a message back, and for how long"
    )
    p.add_argument("nid", type=int, help="notification id (trace id)")
    p.add_argument("dump", help="dump directory or events.jsonl")
    p.set_defaults(fn=cmd_why)

    p = sub.add_parser(
        "critpath",
        help="exact latency attribution: {transit, hop_relay, "
        "causal_holdback, queue, processing}",
    )
    p.add_argument(
        "nid", nargs="?", type=int, default=None,
        help="notification id (omit with --run)",
    )
    p.add_argument("dump", help="dump directory or events.jsonl")
    p.add_argument(
        "--run", action="store_true",
        help="the whole run's critical path instead of one delivery",
    )
    p.set_defaults(fn=cmd_critpath)

    p = sub.add_parser(
        "shards", help="shard-runtime telemetry report (repro.shardmon/v1)"
    )
    p.add_argument(
        "telemetry", nargs="?", default=None,
        help="shardmon JSON payload (omit with --demo)",
    )
    p.add_argument(
        "--demo", action="store_true",
        help="run a small sharded workload live and report it",
    )
    p.add_argument("--servers", type=int, default=12)
    p.add_argument("--domain-size", type=int, default=4)
    p.add_argument("--rounds", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=2)
    p.set_defaults(fn=cmd_shards)

    p = sub.add_parser(
        "replay",
        help="time-travel replay: protocol state at sim-time T, "
        "or run to a watchpoint",
    )
    p.add_argument("dump", help="dump directory or events.jsonl")
    p.add_argument(
        "--at", type=float, default=None, metavar="T",
        help="sim-time to reconstruct (default: end of dump); with a "
        "watchpoint, the sim-time search bound",
    )
    p.add_argument(
        "--watch-holdback", default=None, metavar="SERVER:DEPTH",
        help="stop when SERVER's held-back envelope count exceeds DEPTH",
    )
    p.add_argument(
        "--watch-deliverable", type=int, default=None, metavar="NID",
        help="stop when message NID becomes deliverable",
    )
    p.add_argument(
        "--json", action="store_true",
        help="full snapshot as canonical JSON (protocol_snapshot shape)",
    )
    p.add_argument(
        "--no-delivered", action="store_true",
        help="omit delivered prefixes (match a live bus without "
        "record_delivered_log)",
    )
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser(
        "diff",
        help="first causally-meaningful divergence between two dumps",
    )
    p.add_argument("dump_a", help="first dump directory or events.jsonl")
    p.add_argument("dump_b", help="second dump directory or events.jsonl")
    p.add_argument(
        "--explain", "--watch", dest="explain", action="store_true",
        help="chain the divergent nid into the why/critpath explainers "
        "(what --watch mode prints on a failed differential)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable divergence report",
    )
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("slowest", help="worst end-to-end deliveries")
    p.add_argument("dump", help="dump directory or events.jsonl")
    p.add_argument("-k", type=int, default=10, help="how many (default 10)")
    p.set_defaults(fn=cmd_slowest)

    p = sub.add_parser("export", help="convert to Chrome trace_event JSON")
    p.add_argument("dump", help="dump directory or events.jsonl")
    p.add_argument("--chrome", action="store_true",
                   help="Chrome trace_event format (the only format, "
                   "flag kept for clarity)")
    p.add_argument("--no-critpath", action="store_true",
                   help="skip the critical-path async-span overlay")
    p.add_argument("-o", "--output", default=None, help="output path")
    p.set_defaults(fn=cmd_export)

    p = sub.add_parser("record", help="run a traced demo workload")
    p.add_argument("--servers", type=int, default=10)
    p.add_argument("--domain-size", type=int, default=4)
    p.add_argument("--rounds", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", default=None,
                   help="artifact root (default $REPRO_OBS_DIR or tempdir)")
    p.set_defaults(fn=cmd_record)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        result: int = args.fn(args)
        return result
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
