"""The flight recorder: post-mortem dumps of the last N events.

When something goes wrong in a traced run — a sanitizer violation, an
unexpected exception out of ``bus.run*``, a failed quiesce check — the
last thing anyone wants is "the run failed, re-run it with print
statements". Every live :class:`~repro.obs.tracer.Tracer` registers here,
and :func:`dump` writes a self-contained artifact directory:

- ``events.jsonl`` — the tracer's full :class:`~repro.obs.export.TraceDump`
  (meta + retained ring events + CPU slices + histogram snapshots), the
  format the ``python -m repro.obs`` CLI consumes;
- ``trace.json`` — the same dump in Chrome ``trace_event`` form, ready for
  Perfetto;
- ``state.json`` — per-server protocol state at the instant of the dump:
  crash flag, epoch, unacked hop sequence numbers, held-back counts per
  domain, engine queue depth, and each domain clock's matrix (only read
  via the public :meth:`~repro.clocks.base.CausalClock.cell` accessor, so
  dumping never perturbs persistence journals or dirty tracking).

Artifact directories live under ``$REPRO_OBS_DIR`` (default:
``<tempdir>/repro-obs``) and are named by wall-clock timestamp + pid +
an in-process counter — naming is the one place wall time is allowed,
since it never feeds back into the simulation.

:func:`record_violation` is the sanitizer's entry point: it dumps every
registered tracer and returns the artifact path for the exception
message. All failure paths here degrade to "no dump" rather than masking
the original error.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import time
import weakref
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.obs.export import TraceDump, chrome_trace, write_jsonl

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer

#: Autodump at most this many times per tracer (exception storms must not
#: fill the disk with near-identical artifacts).
MAX_AUTODUMPS = 3

#: Matrices larger than this (per side) are summarized, not dumped.
MAX_MATRIX_SIZE = 32

_registered: List["weakref.ref[Tracer]"] = []
# A counter object, not a rebound module int: shard workers dump flight
# records too, and each process advancing its own post-fork copy is fine
# (the pid in the artifact name disambiguates) — but it must not look
# like a fork-boundary lost update to the R013 happens-before model.
_dump_counter = itertools.count(1)
_dumping = False


def register(tracer: "Tracer") -> None:
    """Track a live tracer as a flight-recorder source (weakly)."""
    _registered.append(weakref.ref(tracer))


def _live_tracers() -> List["Tracer"]:
    alive: List["Tracer"] = []
    dead: List["weakref.ref[Tracer]"] = []
    for ref in _registered:
        tracer = ref()
        if tracer is None:
            dead.append(ref)
        else:
            alive.append(tracer)
    for ref in dead:
        _registered.remove(ref)
    return alive


def base_dir() -> str:
    """Artifact root: ``$REPRO_OBS_DIR`` or ``<tempdir>/repro-obs``."""
    configured = os.environ.get("REPRO_OBS_DIR")
    if configured:
        return configured
    return os.path.join(tempfile.gettempdir(), "repro-obs")


def _next_artifact_dir(reason: str) -> str:
    # Wall-clock naming is deliberate and safe: the name never feeds back
    # into the simulation (R002 bans time.time()/datetime.now(), not
    # strftime-based artifact labels).
    stamp = time.strftime("%Y%m%dT%H%M%S")
    slug = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason)
    name = f"{stamp}-pid{os.getpid()}-{next(_dump_counter):03d}-{slug}"
    return os.path.join(base_dir(), name)


# ----------------------------------------------------------------------
# State capture
# ----------------------------------------------------------------------


def _clock_state(item: Any) -> Dict[str, Any]:
    clock = item.clock
    size = clock.size
    state: Dict[str, Any] = {"size": size, "owner": clock.owner}
    if size <= MAX_MATRIX_SIZE:
        state["matrix"] = [
            [clock.cell(row, col) for col in range(size)]
            for row in range(size)
        ]
    else:
        state["matrix"] = f"<{size}x{size} matrix omitted>"
        state["own_row"] = [
            clock.cell(clock.owner, col) for col in range(size)
        ]
    return state


def capture_state(tracer: "Tracer") -> Dict[str, Any]:
    """Per-server protocol state, JSON-ready (read-only observation)."""
    bus = tracer.bus
    servers: Dict[str, Any] = {}
    for server_id in sorted(bus.servers):
        server = bus.servers[server_id]
        channel = server.channel
        servers[str(server_id)] = {
            "crashed": server.is_crashed,
            "epoch": server.epoch,
            "unacked_hop_seqs": sorted(channel._unacked),
            "heldback": {
                domain_id: store.count
                for domain_id, store in sorted(channel._holdback.items())
                if store.count
            },
            "engine_queued": server.engine.queued,
            "processor_busy_ms": server.processor.busy_total,
            "clocks": {
                domain_id: _clock_state(item)
                for domain_id, item in sorted(channel.domain_items.items())
            },
        }
    return {
        "sim_now_ms": bus.sim.now,
        "pending_events": bus.sim.pending,
        "servers": servers,
    }


# ----------------------------------------------------------------------
# Dumping
# ----------------------------------------------------------------------


def dump(tracer: "Tracer", reason: str = "manual") -> str:
    """Write one artifact directory for a tracer; returns its path.

    Raises ``OSError`` if the artifact location is unwritable — callers
    on failure paths should go through :func:`autodump` or
    :func:`record_violation`, which degrade gracefully.
    """
    path = _next_artifact_dir(reason)
    os.makedirs(path, exist_ok=True)
    trace_dump = TraceDump.from_tracer(tracer)
    with open(os.path.join(path, "events.jsonl"), "w") as stream:
        write_jsonl(trace_dump, stream)
    with open(os.path.join(path, "trace.json"), "w") as stream:
        json.dump(chrome_trace(trace_dump), stream)
    with open(os.path.join(path, "state.json"), "w") as stream:
        json.dump(
            {"reason": reason, **capture_state(tracer)}, stream, indent=2
        )
    return path


def autodump(tracer: "Tracer", reason: str) -> Optional[str]:
    """Best-effort dump on a failure path: capped per tracer, disabled by
    ``REPRO_OBS_AUTODUMP=0``, and never raising over the original error."""
    if os.environ.get("REPRO_OBS_AUTODUMP", "1") == "0":
        return None
    if tracer.autodumps >= MAX_AUTODUMPS:
        return None
    tracer.autodumps += 1
    global _dumping
    if _dumping:
        return None  # a dump triggered inside a dump; don't recurse
    _dumping = True
    try:
        return dump(tracer, reason)
    except OSError:
        return None  # an unwritable tempdir must not mask the real error
    finally:
        _dumping = False


def record_violation(kind: str) -> Optional[str]:
    """Dump every registered tracer on a sanitizer violation.

    Called (lazily, via import) from
    :class:`~repro.analysis.sanitizer.SanitizerViolation`; returns the
    last artifact path so the violation message can point at it, or
    ``None`` when tracing is off or dumping failed.
    """
    path: Optional[str] = None
    for tracer in _live_tracers():
        written = autodump(tracer, f"violation-{kind}")
        if written is not None:
            path = written
    return path
