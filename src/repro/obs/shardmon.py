"""Shard-runtime telemetry views (``python -m repro.obs shards``).

The recording side lives in :mod:`repro.simulation.telemetry` (it must —
the sync layer cannot import obs, R006); this module is the read side:

- :func:`merged_trace_dump` rebuilds a single sequential-shaped
  :class:`~repro.obs.export.TraceDump` from a
  :class:`~repro.mom.parallel.ShardedBus`'s merged observability state —
  globally re-sequenced events, shard histograms folded through
  :meth:`~repro.metrics.histogram.LogHistogram.merge_state`, merged CPU
  slices — so every ``python -m repro.obs`` subcommand (``trace``,
  ``why``, ``critpath``, ``export``) works on parallel runs unchanged;
- :func:`render` pretty-prints a ``repro.shardmon/v1`` payload, keeping
  the deterministic ``sim`` section visually separate from the
  non-deterministic ``wallclock`` one;
- :func:`load` reads a payload back from JSON.

The bus argument of :func:`merged_trace_dump` is duck-typed (it only
needs the ``trace_events`` / ``obs_*`` read surface), so this module has
no import-time dependency on the mom layer.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import ConfigurationError
from repro.metrics.histogram import LogHistogram
from repro.obs.export import TraceDump
from repro.simulation.telemetry import FORMAT

__all__ = ["merged_trace_dump", "merge_histogram_states", "render", "load"]


def merge_histogram_states(
    shard_states: List[Dict[str, Dict[str, Any]]],
) -> Dict[str, LogHistogram]:
    """Fold per-shard tracer histogram states into one histogram per name.

    The integer-quanta running sums make the fold associative and
    commutative, so any merge order reproduces the sequential histogram
    bit for bit (docs/parallel.md; pinned by the merge edge-case tests).
    """
    merged: Dict[str, LogHistogram] = {}
    for states in shard_states:
        for name, state in sorted(states.items()):
            hist = merged.get(name)
            if hist is None:
                hist = LogHistogram(
                    name,
                    low=state["low"],
                    high=state["high"],
                    per_decade=state["per_decade"],
                )
                merged[name] = hist
            hist.merge_state(state)
    return merged


def merged_trace_dump(bus: Any) -> TraceDump:
    """A sequential-shaped :class:`TraceDump` from a sharded bus.

    Requires the bus to have run (and synced) with tracers attached in
    its workers — ``REPRO_TRACE=1`` or an installed tracer hook.
    """
    events = bus.trace_events()
    if not events:
        raise ConfigurationError(
            "no merged observability events on this bus (run with "
            "REPRO_TRACE=1 / repro.obs.tracer.install() and sync first)"
        )
    ring = bus.obs_ring_meta() or {}
    topology = bus.config.topology
    meta: Dict[str, Any] = {
        "now": bus.sim.now,
        "capacity": ring.get("capacity", len(events)),
        "next_seq": ring.get("next_seq", len(events)),
        "dropped": ring.get("dropped", 0),
        "server_ids": sorted(topology.servers),
        "domains": {
            d.domain_id: sorted(d.servers) for d in topology.domains
        },
    }
    histograms = {
        name: {
            "snapshot": hist.snapshot(),
            "buckets": [list(b) for b in hist.buckets()],
        }
        for name, hist in sorted(
            merge_histogram_states(bus.obs_histogram_states()).items()
        )
    }
    return TraceDump(meta, events, list(bus.obs_cpu_slices()), histograms)


def load(path: str) -> Dict[str, Any]:
    """Read a ``repro.shardmon/v1`` payload from a JSON file."""
    with open(path) as stream:
        payload = json.load(stream)
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise ConfigurationError(
            f"{path!r} is not a {FORMAT} payload"
        )
    return payload


def _int_row(values: List[int]) -> str:
    return "[" + ", ".join(str(v) for v in values) + "]"


def render(payload: Dict[str, Any]) -> str:
    """A ``repro.shardmon/v1`` payload as a human-readable report."""
    if payload.get("format") != FORMAT:
        raise ConfigurationError(
            f"expected a {FORMAT} payload, got {payload.get('format')!r}"
        )
    sim = payload.get("sim", {})
    wall = payload.get("wallclock", {})
    width = sim.get("window_width_ms", {})
    per_window = sim.get("events_per_window", {})
    cross = sim.get("cross_shard", {})
    rounds = sim.get("grants", 0)
    lines = [
        f"shard runtime ({payload.get('format')}): "
        f"{payload.get('workers', 0)} workers, "
        f"lookahead {payload.get('lookahead_ms', 0.0):.3f}ms",
        "",
        "  sim observables (deterministic, gated):",
        f"    grant rounds       {rounds}",
        (
            f"    window width ms    min {width.get('min', 0.0):.3f}  "
            f"max {width.get('max', 0.0):.3f}  "
            f"mean {(width.get('sum', 0.0) / rounds) if rounds else 0.0:.3f}"
        ),
        (
            f"    events fired       {sim.get('events_total', 0)} "
            f"(per window min {per_window.get('min', 0)} "
            f"max {per_window.get('max', 0)} "
            f"mean {per_window.get('mean', 0.0):.1f})"
        ),
        f"    events per shard   {_int_row(sim.get('events_per_shard', []))}",
        (
            "    arrivals in        "
            f"{_int_row(sim.get('arrivals_per_shard', []))}"
        ),
        (
            "    packets out        "
            f"{_int_row(sim.get('packets_out_per_shard', []))}"
        ),
        (
            f"    cross-shard        {cross.get('messages', 0)} messages, "
            f"{cross.get('bytes', 0)} bytes on the worker pipes"
        ),
    ]
    for pair, stats in sorted(cross.get("pairs", {}).items()):
        lines.append(
            f"      {pair:<8} {stats.get('messages', 0):>6} messages  "
            f"{stats.get('bytes', 0):>10} bytes"
        )
    timeline = sim.get("grant_timeline", [])
    if timeline:
        shown = timeline[:8]
        lines.append(
            f"    grant timeline     {len(timeline)} rounds retained"
            + (" (truncated)" if sim.get("grant_timeline_truncated") else "")
        )
        for lbts, bound, fired in shown:
            lines.append(
                f"      [{lbts:10.3f}, {bound:10.3f})ms  "
                f"{int(fired):>6} events"
            )
        if len(timeline) > len(shown):
            lines.append(f"      ... {len(timeline) - len(shown)} more")
    lines.append("")
    lines.append("  wallclock (non-deterministic, unguarded):")
    for row in wall.get("per_shard", []):
        compute = row.get("compute_s", 0.0)
        blocked = row.get("blocked_on_grant_s", 0.0)
        pipe = row.get("pipe_io_s", 0.0)
        lines.append(
            f"    shard {row.get('shard', '?')}: "
            f"compute {1e3 * compute:9.3f}ms  "
            f"blocked-on-grant {1e3 * blocked:9.3f}ms  "
            f"pipe I/O {1e3 * pipe:9.3f}ms"
        )
    lines.append(
        "    coordinator wait   "
        f"{1e3 * wall.get('coordinator_wait_s', 0.0):.3f}ms"
    )
    lines.append(
        "    sync overhead      "
        f"{100.0 * wall.get('sync_overhead_fraction', 0.0):.1f}% "
        "of worker wall-clock not spent computing"
    )
    return "\n".join(lines)
