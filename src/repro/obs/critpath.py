"""Critical-path extraction and exact latency attribution.

The event ring (:mod:`repro.obs.events`) records every lifecycle edge of
every message; this module reassembles those edges into the dependency
chain of one delivery and partitions its end-to-end sim-time latency
**exactly** into five categories:

- ``transit`` — envelope on the wire (transmit → arrive), including
  retransmission gaps;
- ``hop_relay`` — time spent inside intermediate routers: receive
  processing, re-stamping and send cost of every non-final hop;
- ``causal_holdback`` — parked in a hold-back store waiting for a causal
  predecessor (holdback_enter → holdback_release);
- ``queue`` — in the destination engine's QueueIN behind earlier
  deliveries (enqueue_in → reaction_start);
- ``processing`` — sender-side stamping/send cost, final-hop receive
  cost and the reaction itself.

Attribution is a telescoping sweep over the message's milestone
timeline, with every interval width summed as an exact
:class:`fractions.Fraction` — so the five categories sum to the measured
end-to-end latency *bit-identically*, in sequential and sharded runs
alike (the differential suite pins this).

The run-level critical path (:meth:`CriticalPathAnalyzer.run_critical_path`)
starts from the delivery that completes last and expands its longest
causal hold-back through the releasing commit (the ``why`` machinery):
the chain of messages that actually determined the makespan.
"""

from __future__ import annotations

from fractions import Fraction
from operator import itemgetter
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from repro.obs.events import TraceEvent

# Tuple indices into TraceEvent, used instead of the NamedTuple
# properties in the hot loops below — profiling every delivery of a run
# touches every retained event several times, and C-level tuple indexing
# is what keeps the whole-run sweep inside the <= 1.15x bench gate.
_SEQ, _T, _KIND, _SERVER, _NID = 0, 1, 2, 3, 4
_SRC, _DST, _HOP_SEQ = 6, 7, 8

#: The five latency categories, in display order.
CATEGORIES = (
    "transit",
    "hop_relay",
    "causal_holdback",
    "queue",
    "processing",
)

#: Deterministic within-instant ordering of one hop's lifecycle edges.
_KIND_RANK = {
    "post": 0,
    "stamp": 1,
    "transmit": 2,
    "retransmit": 3,
    "arrive": 4,
    "holdback_enter": 5,
    "holdback_release": 6,
    "commit": 7,
    "route_forward": 8,
    "enqueue_in": 9,
    "reaction_start": 10,
    "reaction_commit": 11,
}

_CHANNEL_KINDS = frozenset(
    {
        "stamp",
        "transmit",
        "retransmit",
        "arrive",
        "holdback_enter",
        "holdback_release",
        "commit",
        "route_forward",
    }
)

#: While an envelope sits in the hold-back store, sender-side
#: retransmissions (and their duplicate arrivals) do not change what the
#: message is waiting on.
_HOLDBACK_INERT = frozenset({"transmit", "retransmit", "arrive"})

#: Category of the interval that *follows* each milestone kind. The
#: three kinds missing here depend on the hop's position on the route:
#: ``stamp`` is sender processing on hop 0 but router relay after,
#: ``arrive`` / ``holdback_release`` are receive processing on the final
#: hop but relay work inside a router.
_STATE_AFTER = {
    "post": "processing",
    "transmit": "transit",
    "retransmit": "transit",
    "holdback_enter": "causal_holdback",
    "commit": "hop_relay",
    "route_forward": "hop_relay",
    "enqueue_in": "queue",
    "reaction_start": "processing",
    "reaction_commit": "processing",
}

_ENGINE_MILESTONES = frozenset(
    {"enqueue_in", "reaction_start", "reaction_commit"}
)


def _sweep_key(e: TraceEvent) -> Tuple[float, int]:
    """Deterministic milestone order: time, then within-instant rank."""
    return (e[_T], _KIND_RANK[e[_KIND]])


def _ensure_sweep_order(evs: List[TraceEvent]) -> List[TraceEvent]:
    """``evs`` in (t, rank) order — returned as-is when already ordered,
    which is the overwhelmingly common case (per-message events are
    recorded in causal order); a sorted copy otherwise."""
    rank = _KIND_RANK
    prev_t = -1.0
    prev_r = -1
    for e in evs:
        t = e[_T]
        r = rank[e[_KIND]]
        if t < prev_t or (t == prev_t and r < prev_r):
            return sorted(evs, key=_sweep_key)
        prev_t = t
        prev_r = r
    return evs


# ----------------------------------------------------------------------
# Exact dyadic arithmetic
# ----------------------------------------------------------------------
# Every sim timestamp is an IEEE double — a dyadic rational n / 2**s —
# so interval widths and their sums stay dyadic. Accumulating them as
# (numerator, shift) integer pairs is exact like Fraction but skips the
# gcd normalization on every operation, which is what makes profiling
# every delivery of a run affordable (the <= 1.15x bench gate).


def _dy_sub(x: float, y: float) -> Tuple[int, int]:
    """``x - y`` exactly, as ``(numerator, shift)`` = n / 2**shift."""
    xn, xd = x.as_integer_ratio()
    yn, yd = y.as_integer_ratio()
    xs = xd.bit_length() - 1
    ys = yd.bit_length() - 1
    if xs < ys:
        return (xn << (ys - xs)) - yn, ys
    if ys < xs:
        return xn - (yn << (xs - ys)), xs
    return xn - yn, xs


def _dy_add(a: Tuple[int, int], b: Tuple[int, int]) -> Tuple[int, int]:
    an, ash = a
    bn, bsh = b
    if ash < bsh:
        return (an << (bsh - ash)) + bn, bsh
    if bsh < ash:
        return an + (bn << (ash - bsh)), ash
    return an + bn, ash


def _dy_acc(
    total: Tuple[int, int], x: float, y: float
) -> Tuple[int, int]:
    """``total + (x - y)`` exactly — the sweep's fused accumulate
    (one call and no intermediate pair per closed segment)."""
    xn, xd = x.as_integer_ratio()
    yn, yd = y.as_integer_ratio()
    xs = xd.bit_length() - 1
    ys = yd.bit_length() - 1
    if xs < ys:
        dn = (xn << (ys - xs)) - yn
        ds = ys
    elif ys < xs:
        dn = xn - (yn << (xs - ys))
        ds = xs
    else:
        dn = xn - yn
        ds = xs
    tn, ts = total
    if ts < ds:
        return (tn << (ds - ts)) + dn, ds
    if ds < ts:
        return tn + (dn << (ts - ds)), ts
    return tn + dn, ts


def _dy_eq(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    an, ash = a
    bn, bsh = b
    if ash < bsh:
        an <<= bsh - ash
    elif bsh < ash:
        bn <<= ash - bsh
    return an == bn


def _dy_float(a: Tuple[int, int]) -> float:
    """Correctly-rounded float value (exact int/int true division)."""
    n, s = a
    return n / (1 << s) if s > 0 else float(n)


def _dy_fraction(a: Tuple[int, int]) -> Fraction:
    n, s = a
    return Fraction(n, 1 << s)


class Segment(NamedTuple):
    """One attributed interval of a delivery's timeline."""

    t0: float
    t1: float
    category: str
    server: int
    hop: int  # hop index, -1 for pre-hop / engine intervals
    opening: TraceEvent
    closing: TraceEvent

    @property
    def ms(self) -> float:
        return self.t1 - self.t0


class Breakdown:
    """The exact five-way latency decomposition of one delivery."""

    __slots__ = (
        "nid",
        "sent_at",
        "delivered_at",
        "route",
        "e2e_value",
        "_dy_totals",
        "_dy_total",
        "_totals",
        "_raw_segments",
        "_segments",
    )

    def __init__(
        self,
        nid: int,
        sent_at: float,
        delivered_at: float,
        dy_totals: Dict[str, Tuple[int, int]],
        raw_segments: List[tuple],
        route: List[int],
        e2e_value: float,
    ) -> None:
        self.nid = nid
        self.sent_at = sent_at
        self.delivered_at = delivered_at
        self.route = route
        self.e2e_value = e2e_value
        self._dy_totals = dy_totals
        total = (0, 0)
        for value in dy_totals.values():
            if value[0]:
                total = _dy_add(total, value)
        self._dy_total = total
        self._totals: Optional[Dict[str, Fraction]] = None
        # the sweep emits plain tuples; Segment objects are materialized
        # on first access (the whole-run summary never touches them)
        self._raw_segments = raw_segments
        self._segments: Optional[List[Segment]] = None

    @property
    def segments(self) -> List[Segment]:
        """The attributed intervals, in timeline order."""
        if self._segments is None:
            self._segments = [Segment._make(r) for r in self._raw_segments]
        return self._segments

    @property
    def totals(self) -> Dict[str, Fraction]:
        """Per-category exact sums (materialized on first access)."""
        if self._totals is None:
            self._totals = {
                name: _dy_fraction(value)
                for name, value in self._dy_totals.items()
            }
        return self._totals

    @property
    def total(self) -> Fraction:
        """Exact sum of the five categories."""
        return _dy_fraction(self._dy_total)

    @property
    def e2e_ms(self) -> float:
        """The decomposition total as a float — equals the recorded
        end-to-end latency bit-for-bit (correctly rounded exact sum)."""
        return _dy_float(self._dy_total)

    def is_exact(self) -> bool:
        """The telescoping identity: categories sum to the measured
        end-to-end sim-time latency, exactly."""
        if not _dy_eq(
            self._dy_total, _dy_sub(self.delivered_at, self.sent_at)
        ):
            return False
        if self.e2e_value > 0 and self.e2e_ms != self.e2e_value:
            return False
        return True

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (floats; the exactness flag covers them)."""
        return {
            "nid": self.nid,
            "sent_at": self.sent_at,
            "delivered_at": self.delivered_at,
            "e2e_ms": self.e2e_ms,
            "route": list(self.route),
            "categories": {
                name: float(self.totals[name]) for name in CATEGORIES
            },
            "exact": self.is_exact(),
        }

    def __repr__(self) -> str:
        return (
            f"Breakdown(nid={self.nid}, e2e={self.e2e_ms:.3f}ms, "
            f"hops={max(0, len(self.route) - 1)})"
        )


class CriticalPathAnalyzer:
    """Reconstructs delivery dependency chains from a list of events.

    Builds its per-nid index once; ``breakdown`` and the run-level walk
    are then linear in the events of the messages they touch.
    """

    def __init__(self, events: List[TraceEvent]) -> None:
        self._events = events
        by_nid: Dict[int, List[TraceEvent]] = {}
        commits: List[TraceEvent] = []
        for e in events:
            nid = e[_NID]
            if nid >= 0:
                group = by_nid.get(nid)
                if group is None:
                    by_nid[nid] = [e]
                else:
                    group.append(e)
            if e[_KIND] == "commit":
                commits.append(e)
        commits.sort(key=itemgetter(_SEQ))
        self._by_nid = by_nid
        self._commits = commits
        self._breakdowns: Dict[int, Optional[Breakdown]] = {}

    def events_of(self, nid: int) -> List[TraceEvent]:
        return list(self._by_nid.get(nid, []))

    # ------------------------------------------------------------------
    # Per-delivery decomposition
    # ------------------------------------------------------------------

    def delivered_nids(self) -> List[int]:
        """Trace ids with a completed cross-agent delivery (post and
        reaction_commit both retained), ascending."""
        out = []
        for nid in sorted(self._by_nid):
            events = self._by_nid[nid]
            post = next((e for e in events if e.kind == "post"), None)
            if post is None:
                continue
            if any(
                e.kind == "reaction_commit" and e.server == post.dst
                for e in events
            ):
                out.append(nid)
        return out

    def breakdown(self, nid: int) -> Optional[Breakdown]:
        """The exact decomposition of one delivery, or ``None`` when the
        chain is incomplete (in flight, never delivered, or its head fell
        off the ring). Memoized per nid."""
        if nid in self._breakdowns:
            return self._breakdowns[nid]
        result = self._breakdown_uncached(nid)
        self._breakdowns[nid] = result
        return result

    def _breakdown_uncached(self, nid: int) -> Optional[Breakdown]:
        events = self._by_nid.get(nid)
        if not events:
            return None
        # one partitioning pass: the post, the per-hop channel groups
        # (keyed by sending server — routes are simple paths), and the
        # engine events (filtered to the destination once it is known)
        post: Optional[TraceEvent] = None
        # channel events grouped by their sending server: a delivery's
        # route is a simple path, so src alone identifies the hop (the
        # hop_seq is channel bookkeeping — a lossy channel's retransmit
        # events can carry a different sequence number than the stamp)
        groups: Dict[int, List[TraceEvent]] = {}
        raw_engine: List[TraceEvent] = []
        channel_kinds = _CHANNEL_KINDS
        for e in events:
            kind = e[_KIND]
            if kind in channel_kinds:
                if e[_HOP_SEQ] >= 0:
                    src = e[_SRC]
                    group = groups.get(src)
                    if group is None:
                        groups[src] = [e]
                    else:
                        group.append(e)
            elif kind == "post":
                if post is None:
                    post = e
            elif kind in _ENGINE_MILESTONES:
                raw_engine.append(e)
        if post is None:
            return None
        dest = post[_DST]
        engine = _ensure_sweep_order(
            [e for e in raw_engine if e[_SERVER] == dest]
        )
        if not engine or engine[-1][_KIND] != "reaction_commit":
            return None
        # src-following walk from sender to destination
        chain: List[List[TraceEvent]] = []
        current = post[_SERVER]
        visited = set()
        while current != dest:
            group = groups.get(current)
            if group is None or current in visited:
                return None  # broken chain (ring wraparound) or a cycle
            visited.add(current)
            chain.append(group)
            current = group[0][_DST]
        # the flattened milestone timeline and a parallel hop-index list
        # (-1 for the post / engine tail) — two flat lists, not a list
        # of pairs: the sweep below runs for every delivery of a run
        timeline: List[TraceEvent] = [post]
        hops: List[int] = [-1]
        for hop_index, group in enumerate(chain):
            hop_events = self._hop_timeline(group)
            if hop_events is None:
                return None
            timeline.extend(hop_events)
            hops.extend([hop_index] * len(hop_events))
        timeline.extend(engine)
        hops.extend([-1] * len(engine))
        n_hops = len(chain)
        totals: Dict[str, Tuple[int, int]] = {
            c: (0, 0) for c in CATEGORIES
        }
        segments: List[tuple] = []
        # the attribution sweep: the interval after each milestone gets
        # the category _STATE_AFTER its kind implies (hop-position
        # dependent for stamp/arrive/release; inert while held back);
        # maximal same-category runs collapse into one segment — the
        # telescoping endpoint difference equals the interior sum exactly
        state = "processing"
        fixed = _STATE_AFTER
        inert = _HOLDBACK_INERT
        dy_acc = _dy_acc
        last_hop = n_hops - 1
        event = run_event = post
        hop_index = run_hop = -1
        run_t = prev_t = post[_T]
        for i in range(1, len(timeline)):
            nxt = timeline[i]
            nxt_t = nxt[_T]
            if nxt_t < prev_t:
                return None  # inconsistent retained window
            prev_t = nxt_t
            kind = event[_KIND]
            if state != "causal_holdback" or kind not in inert:
                next_state = fixed.get(kind)
                if next_state is None:
                    if kind == "stamp":
                        next_state = (
                            "processing" if hop_index == 0 else "hop_relay"
                        )
                    else:  # arrive / holdback_release
                        next_state = (
                            "processing"
                            if hop_index == last_hop
                            else "hop_relay"
                        )
                if next_state != state:
                    event_t = event[_T]
                    if event_t > run_t:
                        totals[state] = dy_acc(
                            totals[state], event_t, run_t
                        )
                        segments.append(
                            (run_t, event_t, state, run_event[_SERVER],
                             run_hop, run_event, event)
                        )
                    state = next_state
                    run_event, run_hop, run_t = event, hop_index, event_t
            event = nxt
            hop_index = hops[i]
        event_t = event[_T]
        if event_t > run_t:
            totals[state] = dy_acc(totals[state], event_t, run_t)
            segments.append(
                (run_t, event_t, state, run_event[_SERVER], run_hop,
                 run_event, event)
            )
        commit = engine[-1]
        route = [post[_SERVER]] + [group[0][_DST] for group in chain]
        return Breakdown(
            nid, post[_T], commit[_T], totals, segments, route,
            commit[9],  # .value
        )

    @staticmethod
    def _hop_timeline(group: List[TraceEvent]) -> Optional[List[TraceEvent]]:
        """One hop's milestone events up to its commit, in sweep order.

        Drops edges recorded after the commit (stale retransmissions,
        in-flight duplicate arrivals) — they are not on the dependency
        path; the route_forward recorded at the commit instant stays."""
        # one fused pass: verify (t, rank) order — per-hop events are
        # recorded in causal order, so this almost always holds — and
        # locate the commit; fall back to a sorted copy on disorder
        rank = _KIND_RANK
        commit_rank = rank["commit"]
        prev_t = -1.0
        prev_r = -1
        commit_index = -1
        ordered = group
        for i, e in enumerate(group):
            t = e[_T]
            r = rank[e[_KIND]]
            if t < prev_t or (t == prev_t and r < prev_r):
                ordered = sorted(group, key=_sweep_key)
                commit_index = -1
                for i, e in enumerate(ordered):
                    if e[_KIND] == "commit":
                        commit_index = i
                        break
                break
            if commit_index < 0 and r == commit_rank:
                commit_index = i
            prev_t = t
            prev_r = r
        if commit_index < 0:
            return None
        kept = ordered[: commit_index + 1]
        commit_t = kept[-1][_T]
        for e in ordered[commit_index + 1:]:
            if e[_KIND] == "route_forward" and e[_T] == commit_t:
                kept.append(e)
        return kept

    # ------------------------------------------------------------------
    # The why machinery: hold-back → releasing commit linkage
    # ------------------------------------------------------------------

    def blocker_of(self, release: TraceEvent) -> Optional[TraceEvent]:
        """The commit whose transaction released this hold-back: the
        latest ``commit`` at the same server and domain with a smaller
        ``seq`` (releases are recorded inside the releasing commit's
        transaction, at the same instant, right after its event)."""
        latest: Optional[TraceEvent] = None
        for commit in self._commits:
            if commit.seq >= release.seq:
                break
            if (
                commit.server == release.server
                and commit.domain == release.domain
                and commit.nid != release.nid
            ):
                latest = commit
        return latest

    def waits(self, nid: int) -> List[Dict[str, Any]]:
        """Structured causal-wait explanation of one message (the data
        behind ``python -m repro.obs why``)."""
        events = self._by_nid.get(nid, [])
        enters = [e for e in events if e.kind == "holdback_enter"]
        releases = {
            (e.server, e.src, e.hop_seq): e
            for e in events
            if e.kind == "holdback_release"
        }
        out: List[Dict[str, Any]] = []
        for enter in enters:
            release = releases.get((enter.server, enter.src, enter.hop_seq))
            blocker = None if release is None else self.blocker_of(release)
            out.append(
                {
                    "server": enter.server,
                    "domain": enter.domain,
                    "src": enter.src,
                    "dst": enter.dst,
                    "hop_seq": enter.hop_seq,
                    "entered_at": enter.t,
                    "released_at": None if release is None else release.t,
                    "dwell_ms": None if release is None else release.value,
                    "blocker_nid": None if blocker is None else blocker.nid,
                    "blocker_src": None if blocker is None else blocker.src,
                    "blocker_dst": None if blocker is None else blocker.dst,
                    "blocker_cells": (
                        None if blocker is None else int(blocker.value)
                    ),
                }
            )
        return out

    # ------------------------------------------------------------------
    # Run-level critical path
    # ------------------------------------------------------------------

    def run_critical_path(self, max_depth: int = 64) -> List[Breakdown]:
        """The chain of deliveries that determined the run's makespan.

        Starts from the last completed delivery, then repeatedly expands
        the longest causal hold-back on the current path into the message
        whose commit released it. Returned root-cause-first."""
        last: Optional[TraceEvent] = None
        for event in self._events:
            if event[_KIND] == "reaction_commit" and event[_NID] >= 0:
                if last is None or (event.t, event.nid) > (last.t, last.nid):
                    last = event
        if last is None:
            return []
        steps: List[Breakdown] = []
        visited = set()
        nid: Optional[int] = last.nid
        while nid is not None and nid not in visited and len(steps) < max_depth:
            visited.add(nid)
            breakdown = self.breakdown(nid)
            if breakdown is None:
                break
            steps.append(breakdown)
            nid = self._longest_blocker(breakdown)
        steps.reverse()
        return steps

    def _longest_blocker(self, breakdown: Breakdown) -> Optional[int]:
        holds = [
            s for s in breakdown.segments if s.category == "causal_holdback"
        ]
        if not holds:
            return None
        longest = max(holds, key=lambda s: (s.ms, -s.t0))
        # the hold-back's release event closes the last holdback segment
        # of that hop; find the release in the closing chain
        release = longest.closing
        if release.kind != "holdback_release":
            # the hold ended at a non-release edge (crash wiped the
            # store); no releasing commit to follow
            return None
        blocker = self.blocker_of(release)
        return None if blocker is None else blocker.nid

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def category_summary(self) -> Dict[str, Any]:
        """Aggregate decomposition over every completed delivery."""
        totals: Dict[str, Tuple[int, int]] = {
            c: (0, 0) for c in CATEGORIES
        }
        deliveries = 0
        exact = True
        for nid in sorted(self._by_nid):
            breakdown = self.breakdown(nid)
            if breakdown is None:
                continue
            deliveries += 1
            exact = exact and breakdown.is_exact()
            for name, value in breakdown._dy_totals.items():
                if value[0]:
                    totals[name] = _dy_add(totals[name], value)
        grand = (0, 0)
        for value in totals.values():
            grand = _dy_add(grand, value)
        grand_fraction = _dy_fraction(grand)
        return {
            "deliveries": deliveries,
            "e2e_ms_total": _dy_float(grand),
            "exact": exact,
            "categories": {
                name: {
                    "ms": _dy_float(totals[name]),
                    "share": (
                        float(_dy_fraction(totals[name]) / grand_fraction)
                        if grand_fraction
                        else 0.0
                    ),
                }
                for name in CATEGORIES
            },
        }


def critpath_spans(events: List[TraceEvent]) -> List[Dict[str, Any]]:
    """Chrome ``trace_event`` async spans for the run's critical path.

    One nestable span per attributed segment, on the server where the
    time was spent — the overlay the Perfetto export adds on top of the
    instant events.
    """
    analyzer = CriticalPathAnalyzer(events)
    spans: List[Dict[str, Any]] = []
    for step_index, breakdown in enumerate(analyzer.run_critical_path()):
        for seg_index, segment in enumerate(breakdown.segments):
            common = {
                "cat": "critpath",
                "name": f"critpath {segment.category}",
                "id": f"crit-{step_index}-{seg_index}",
                "pid": segment.server,
                "tid": 0,
                "args": {
                    "nid": breakdown.nid,
                    "category": segment.category,
                    "ms": segment.ms,
                    "step": step_index,
                },
            }
            spans.append({**common, "ph": "b", "ts": segment.t0 * 1000.0})
            spans.append({**common, "ph": "e", "ts": segment.t1 * 1000.0})
    return spans
