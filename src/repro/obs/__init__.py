"""repro.obs — causal message tracing, latency histograms, flight recorder.

The observability layer of the MOM (see ``docs/observability.md``). A
:class:`Tracer` attached to a :class:`~repro.mom.bus.MessageBus` records
every lifecycle edge of every message — post, stamp, transmit, hold-back,
commit, router forward, reaction — into a bounded ring, keyed by the
notification id (the *trace id*, stable across router hops), and feeds
log-scaled latency histograms. Dumps export as JSONL and Chrome
``trace_event`` JSON; the flight recorder writes them automatically on
sanitizer violations and unexpected exceptions.

Activation: ``REPRO_TRACE=1`` in the environment (the test conftest then
calls :func:`install`, instrumenting every bus built afterwards) or
:func:`attach` on one live bus. With tracing off, the instrumented hot
paths pay a single ``is not None`` attribute check per edge, and a traced
run is bit-identical to an untraced one — tracing never schedules events,
never draws randomness, never touches the metrics registry.
"""

from repro.obs.events import DEFAULT_CAPACITY, KINDS, EventRing, TraceEvent
from repro.obs.histogram import LogHistogram
from repro.obs.export import TraceDump, chrome_trace, read_jsonl, write_jsonl
from repro.obs import flight_recorder
from repro.obs.diff import (
    DiffReport,
    canonical_events,
    diff_dumps,
    explain,
    watch_explain,
)
from repro.obs.replay import (
    Replayer,
    check_dump_complete,
    watch_deliverable,
    watch_holdback_exceeds,
)
from repro.obs.tracer import (
    Tracer,
    attach,
    detach,
    install,
    is_installed,
    uninstall,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "KINDS",
    "EventRing",
    "TraceEvent",
    "LogHistogram",
    "TraceDump",
    "chrome_trace",
    "read_jsonl",
    "write_jsonl",
    "flight_recorder",
    "DiffReport",
    "canonical_events",
    "diff_dumps",
    "explain",
    "watch_explain",
    "Replayer",
    "check_dump_complete",
    "watch_deliverable",
    "watch_holdback_exceeds",
    "Tracer",
    "attach",
    "detach",
    "install",
    "is_installed",
    "uninstall",
]
