"""The tracer: one object recording the whole bus's message lifecycle.

A :class:`Tracer` is attached to a live :class:`~repro.mom.bus.MessageBus`
with :func:`attach` (or globally to every future bus with :func:`install`,
which is what the test suite's conftest does under ``REPRO_TRACE=1``).
Attachment sets the ``_tracer`` hook attribute on the bus, every channel,
engine, server, transport and processor; the instrumented hot paths guard
each hook behind a single ``is not None`` attribute check, so with tracing
off the cost is one pointer compare per edge — the PR-1 hot-path numbers
are untouched (``benchmarks/test_trace_overhead.py`` pins this).

Everything the tracer does is passive: it reads sim-time, appends to its
own ring buffer and its own histograms. It never schedules an event, never
draws from an RNG stream, never touches the bus's
:class:`~repro.simulation.metrics.MetricsRegistry` — a traced run is
bit-identical to an untraced one (pinned by the determinism tests).
"""

from __future__ import annotations

import os
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from repro.obs import flight_recorder
from repro.obs.events import DEFAULT_CAPACITY, EventRing, TraceEvent
from repro.obs.histogram import LogHistogram

if TYPE_CHECKING:
    from repro.mom.bus import MessageBus
    from repro.mom.payloads import Envelope, Notification

#: Histogram names (the protocol's cost decomposition).
HIST_HOLDBACK = "holdback_dwell_ms"  # too-early arrival -> release
HIST_E2E = "e2e_delivery_ms"  # agent send -> reaction commit
HIST_ACK_RTT = "ack_rtt_ms"  # wire transmit -> transaction ACK
HIST_QUEUE_WAIT = "queue_wait_ms"  # QueueIN append -> reaction ran
HIST_MERGE = "clock_merge_cells"  # cells merged per commit (+ .<domain>)

_CORE_HISTOGRAMS = (
    HIST_HOLDBACK,
    HIST_E2E,
    HIST_ACK_RTT,
    HIST_QUEUE_WAIT,
    HIST_MERGE,
)


class Tracer:
    """Records every lifecycle edge of one bus into a bounded ring.

    Construct via :func:`attach`; the constructor only wires state, it does
    not install any hook.
    """

    def __init__(self, bus: "MessageBus", capacity: int = DEFAULT_CAPACITY) -> None:
        self.bus = bus
        self._sim = bus.sim
        self.ring = EventRing(capacity)
        #: CPU occupancy slices ``(server, start_ms, duration_ms)`` — kept
        #: out of the ring so busy servers don't evict protocol events.
        self.cpu_slices: Deque[Tuple[int, float, float]] = deque(
            maxlen=capacity
        )
        self.histograms: Dict[str, LogHistogram] = {}
        self.server_ids: List[int] = sorted(bus.servers)
        self.domains: Dict[str, List[int]] = {
            d.domain_id: list(d.servers) for d in bus.config.topology.domains
        }
        self.autodumps = 0
        # transient per-message bookkeeping (all keys are removed at the
        # closing edge, so memory tracks in-flight work, not run length)
        self._held_since: Dict[tuple, float] = {}
        self._wire_sent_at: Dict[Tuple[int, int], float] = {}
        self._hop_nid: Dict[Tuple[int, int], int] = {}
        self._enqueued_at: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first."""
        return self.ring.events()

    def events_of(self, nid: int) -> List[TraceEvent]:
        """All retained events of one trace id, in recording order."""
        return [e for e in self.ring.events() if e.nid == nid]

    def hist(self, name: str) -> LogHistogram:
        """The named histogram, created on first use."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = LogHistogram(name)
            self.histograms[name] = hist
        return hist

    def histogram_snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{name: {count, mean, min, max, p50, p90, p95, p99}}``."""
        return {
            name: self.histograms[name].snapshot()
            for name in sorted(self.histograms)
        }

    def dump(self, reason: str = "manual") -> str:
        """Write a flight-recorder artifact directory now; returns its path."""
        return flight_recorder.dump(self, reason)

    # ------------------------------------------------------------------
    # Hook methods (called from the instrumented hot paths)
    # ------------------------------------------------------------------

    def bus_post(self, notification: "Notification") -> None:
        self.ring.record(
            self._sim.now,
            "post",
            notification.sender.server,
            notification.nid,
            src=notification.sender.server,
            dst=notification.dest_server,
        )

    def channel_stamp(self, server: int, envelope: "Envelope") -> None:
        self._hop_nid[(server, envelope.hop_seq)] = envelope.notification.nid
        self.ring.record(
            self._sim.now,
            "stamp",
            server,
            envelope.notification.nid,
            domain=envelope.domain_id,
            src=envelope.src_server,
            dst=envelope.dst_server,
            hop_seq=envelope.hop_seq,
            value=float(envelope.stamp.wire_cells),
        )

    def channel_transmit(
        self, server: int, envelope: "Envelope", attempt: int
    ) -> None:
        now = self._sim.now
        self._wire_sent_at[(server, envelope.hop_seq)] = now
        self.ring.record(
            now,
            "transmit" if attempt == 1 else "retransmit",
            server,
            envelope.notification.nid,
            domain=envelope.domain_id,
            src=envelope.src_server,
            dst=envelope.dst_server,
            hop_seq=envelope.hop_seq,
            value=float(attempt),
        )

    def channel_ack(self, server: int, hop_seq: int) -> None:
        now = self._sim.now
        key = (server, hop_seq)
        sent = self._wire_sent_at.pop(key, None)
        nid = self._hop_nid.pop(key, -1)
        rtt = now - sent if sent is not None else 0.0
        if sent is not None:
            self.hist(HIST_ACK_RTT).record(rtt)
        self.ring.record(
            now, "ack", server, nid, hop_seq=hop_seq, value=rtt
        )

    def channel_arrive(self, server: int, envelope: "Envelope") -> None:
        self.ring.record(
            self._sim.now,
            "arrive",
            server,
            envelope.notification.nid,
            domain=envelope.domain_id,
            src=envelope.src_server,
            dst=envelope.dst_server,
            hop_seq=envelope.hop_seq,
        )

    def channel_holdback_enter(
        self, server: int, envelope: "Envelope"
    ) -> None:
        now = self._sim.now
        self._held_since[envelope.hop_mid()] = now
        self.ring.record(
            now,
            "holdback_enter",
            server,
            envelope.notification.nid,
            domain=envelope.domain_id,
            src=envelope.src_server,
            dst=envelope.dst_server,
            hop_seq=envelope.hop_seq,
        )

    def channel_holdback_release(
        self, server: int, envelope: "Envelope"
    ) -> None:
        now = self._sim.now
        since = self._held_since.pop(envelope.hop_mid(), None)
        dwell = now - since if since is not None else 0.0
        if since is not None:
            self.hist(HIST_HOLDBACK).record(dwell)
        self.ring.record(
            now,
            "holdback_release",
            server,
            envelope.notification.nid,
            domain=envelope.domain_id,
            src=envelope.src_server,
            dst=envelope.dst_server,
            hop_seq=envelope.hop_seq,
            value=dwell,
        )

    def channel_commit(
        self, server: int, envelope: "Envelope", merged_cells: int
    ) -> None:
        self.hist(HIST_MERGE).record(float(merged_cells))
        self.hist(f"{HIST_MERGE}.{envelope.domain_id}").record(
            float(merged_cells)
        )
        self.ring.record(
            self._sim.now,
            "commit",
            server,
            envelope.notification.nid,
            domain=envelope.domain_id,
            src=envelope.src_server,
            dst=envelope.dst_server,
            hop_seq=envelope.hop_seq,
            value=float(merged_cells),
        )

    def channel_route_forward(
        self, server: int, envelope: "Envelope"
    ) -> None:
        self.ring.record(
            self._sim.now,
            "route_forward",
            server,
            envelope.notification.nid,
            domain=envelope.domain_id,
            src=envelope.src_server,
            dst=envelope.dst_server,
            hop_seq=envelope.hop_seq,
        )

    def engine_enqueue(self, server: int, notification: "Notification") -> None:
        now = self._sim.now
        self._enqueued_at[(server, notification.nid)] = now
        self.ring.record(
            now,
            "enqueue_in",
            server,
            notification.nid,
            src=notification.sender.server,
            dst=notification.dest_server,
        )

    def engine_reaction_start(
        self, server: int, notification: Optional["Notification"]
    ) -> None:
        now = self._sim.now
        if notification is None:  # boot pseudo-reaction
            self.ring.record(now, "reaction_start", server, -1)
            return
        queued = self._enqueued_at.pop((server, notification.nid), None)
        wait = now - queued if queued is not None else 0.0
        if queued is not None:
            self.hist(HIST_QUEUE_WAIT).record(wait)
        self.ring.record(
            now, "reaction_start", server, notification.nid, value=wait
        )

    def engine_reaction_commit(
        self, server: int, notification: Optional["Notification"]
    ) -> None:
        now = self._sim.now
        if notification is None:
            self.ring.record(now, "reaction_commit", server, -1)
            return
        e2e = 0.0
        if notification.sender != notification.target:
            e2e = now - notification.sent_at
            self.hist(HIST_E2E).record(e2e)
        self.ring.record(
            now, "reaction_commit", server, notification.nid, value=e2e
        )

    def server_crash(self, server: int) -> None:
        self.ring.record(self._sim.now, "crash", server, -1)

    def server_recover(self, server: int) -> None:
        self.ring.record(self._sim.now, "recover", server, -1)

    def transport_retransmit(
        self, endpoint: int, dst: int, seq: int, attempt: int, payload: Any
    ) -> None:
        # the transport is below the mom layer and ships opaque payloads;
        # recover the trace id by duck-typing the channel envelope
        notification = getattr(payload, "notification", None)
        nid = getattr(notification, "nid", -1)
        self.ring.record(
            self._sim.now,
            "retransmit",
            endpoint,
            nid,
            src=endpoint,
            dst=dst,
            hop_seq=seq,
            value=float(attempt),
        )

    def cpu(self, server: int, start: float, duration: float) -> None:
        self.cpu_slices.append((server, start, duration))

    def __repr__(self) -> str:
        return (
            f"Tracer(servers={len(self.server_ids)}, "
            f"events={self.ring.next_seq}, "
            f"histograms={sorted(self.histograms)})"
        )


# ----------------------------------------------------------------------
# Attachment
# ----------------------------------------------------------------------


def attach(bus: "MessageBus", capacity: int = DEFAULT_CAPACITY) -> Tracer:
    """Instrument a live bus in place; idempotent per bus.

    Sets the ``_tracer`` hook attribute everywhere the message path checks
    one, registers the tracer with the flight recorder, and wraps
    ``run``/``run_until_idle`` so an *unexpected* exception (anything
    outside the protocol's :class:`~repro.errors.ReproError` vocabulary)
    leaves a flight-recorder dump before propagating.
    """
    existing = getattr(bus, "_obs_tracer", None)
    if existing is not None:
        return existing
    tracer = Tracer(bus, capacity)
    bus._obs_tracer = tracer  # type: ignore[attr-defined]
    bus._tracer = tracer
    for server in bus.servers.values():
        server._tracer = tracer
        server.channel._tracer = tracer
        server.engine._tracer = tracer
        server.transport._tracer = tracer
        server.processor._tracer = tracer
        server.processor._tracer_owner = server.server_id
    flight_recorder.register(tracer)
    _wrap_run_methods(bus, tracer)
    return tracer


def detach(bus: "MessageBus") -> None:
    """Stop recording on a bus previously passed to :func:`attach`.

    The hook attributes revert to ``None`` (hot paths go back to the
    single attribute check); the tracer object and its recorded events
    stay alive for whoever still holds a reference.
    """
    if getattr(bus, "_obs_tracer", None) is None:
        return
    bus._obs_tracer = None  # type: ignore[attr-defined]
    bus._tracer = None
    for server in bus.servers.values():
        server._tracer = None
        server.channel._tracer = None
        server.engine._tracer = None
        server.transport._tracer = None
        server.processor._tracer = None


def _wrap_run_methods(bus: "MessageBus", tracer: Tracer) -> None:
    from repro.errors import ReproError

    original_run = bus.run
    original_run_until_idle = bus.run_until_idle

    def _autodump() -> None:
        flight_recorder.autodump(tracer, "unhandled-exception")

    def run(until: Optional[float] = None) -> int:
        try:
            return original_run(until=until)
        except ReproError:
            # protocol-vocabulary errors (incl. SanitizerViolation, which
            # records its own flight dump) are expected test outcomes
            raise
        except Exception:
            _autodump()
            raise

    def run_until_idle(max_events: int = 10_000_000) -> int:
        try:
            return original_run_until_idle(max_events=max_events)
        except ReproError:
            raise
        except Exception:
            _autodump()
            raise

    bus.run = run  # type: ignore[method-assign]
    bus.run_until_idle = run_until_idle  # type: ignore[method-assign]


# ----------------------------------------------------------------------
# Global installation (REPRO_TRACE=1)
# ----------------------------------------------------------------------

_original_bus_init: Optional[Any] = None


def is_installed() -> bool:
    return _original_bus_init is not None


def install(capacity: Optional[int] = None) -> None:
    """Attach a tracer to every :class:`MessageBus` constructed from now on.

    Idempotent. The tests' conftest calls this when ``REPRO_TRACE=1``;
    ``REPRO_TRACE_CAPACITY`` overrides the ring capacity.
    """
    global _original_bus_init
    if _original_bus_init is not None:
        return
    from repro.mom.bus import MessageBus

    if capacity is None:
        capacity = int(
            os.environ.get("REPRO_TRACE_CAPACITY", str(DEFAULT_CAPACITY))
        )
    original = MessageBus.__init__
    cap = capacity

    def traced_init(self: Any, *args: Any, **kwargs: Any) -> None:
        original(self, *args, **kwargs)
        attach(self, capacity=cap)

    MessageBus.__init__ = traced_init  # type: ignore[method-assign]
    _original_bus_init = original


def uninstall() -> None:
    """Undo :func:`install` (buses already built stay instrumented)."""
    global _original_bus_init
    if _original_bus_init is None:
        return
    from repro.mom.bus import MessageBus

    MessageBus.__init__ = _original_bus_init  # type: ignore[method-assign]
    _original_bus_init = None
