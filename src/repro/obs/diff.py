"""Causal run-diff: the first *meaningful* divergence between two dumps.

The repo's correctness story rests on byte-equality differentials
(sequential vs. sharded, bare vs. sanitized, protocol vs. protocol). When
one fails, "bytes differ" is the least useful possible message — the
event rings on both sides recorded everything needed to say *which*
message, at *which* sim-time, on *which* server first went a different
way. This module says it.

Alignment. Event ``seq`` numbers are partition-dependent (a merged
parallel dump re-sequences by ``(t, shard, seq)``, a sequential dump by
global recording order), so raw streams from *equivalent* runs can
interleave same-instant events of different servers differently. What is
partition-independent is each server's own event order — a server lives
on exactly one shard. :func:`canonical_events` therefore stable-sorts by
``(t, server)``: per-server order is preserved, cross-server ties break
by server id, and two equivalent runs canonicalize to the identical
stream. Comparison then ignores ``seq``.

Search. Per-event digests are folded into a rolling prefix-hash array per
run, and the first divergent index is found by *binary search* over
"prefixes equal?" — O(log n) probes, each O(1) — rather than a byte scan,
so the first divergence is located by causal position even in
multi-million-event dumps.

Classification at the divergent index:

- ``delivery-order-flip`` — both runs contain the two colliding delivery
  edges, in opposite order at the same server;
- ``event-order-flip``    — same, for non-delivery lifecycle edges;
- ``missing-message``     — the edge exists in only one run;
- ``dwell-change``        — same hold-back, different dwell;
- ``stamp-mismatch``      — same edge, different clock payload
  (stamp/commit cell counts);
- ``timing-shift``        — same edge, different sim-time.

The report then chains into the existing explainers: the ``why`` causal
waits and the ``critpath`` five-way latency decomposition of the
divergent nid, on both runs — which is what ``--watch`` mode prints so a
failed differential test explains itself.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.critpath import CATEGORIES, CriticalPathAnalyzer
from repro.obs.events import TraceEvent
from repro.obs.export import TraceDump

#: Delivery edges: opposite relative order of two of these at one server
#: is a causal-delivery-order difference, the protocol's headline invariant.
_DELIVERY_KINDS = frozenset({"commit", "enqueue_in", "reaction_commit"})


def event_signature(event: TraceEvent) -> Tuple:
    """The partition-independent content of one event (drops ``seq``)."""
    return (
        event.t, event.kind, event.server, event.nid, event.domain,
        event.src, event.dst, event.hop_seq, event.value,
    )


def _identity(event: TraceEvent) -> Tuple:
    """What the event *is*, minus when and with what payload — the key
    used to tell reordering and payload changes from missing events."""
    return (
        event.kind, event.server, event.nid, event.domain,
        event.src, event.dst, event.hop_seq,
    )


def canonical_events(dump: TraceDump) -> List[TraceEvent]:
    """The dump's events in partition-independent canonical order: a
    stable sort by ``(t, server)``. Per-server order (which both kernels
    preserve) survives; cross-server same-instant ties become
    deterministic."""
    return sorted(dump.events, key=lambda e: (e.t, e.server))


def _prefix_hashes(events: List[TraceEvent]) -> List[bytes]:
    """``hashes[i]`` = digest of the first ``i`` event signatures."""
    out: List[bytes] = [b""]
    rolling = hashlib.blake2b(digest_size=16)
    for event in events:
        rolling.update(repr(event_signature(event)).encode())
        out.append(rolling.digest())
    return out


def _first_divergence(a: List[TraceEvent], b: List[TraceEvent]) -> int:
    """Smallest index where the canonical streams differ (``len`` of the
    common prefix). Binary search over prefix digests: equal-prefix is
    monotone in the index, so bisection applies."""
    ha = _prefix_hashes(a)
    hb = _prefix_hashes(b)
    lo, hi = 0, min(len(a), len(b))
    # invariant: prefixes of length lo match; prefixes of length hi+1
    # (or the length bound) do not need to
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if ha[mid] == hb[mid]:
            lo = mid
        else:
            hi = mid - 1
    return lo


@dataclass
class DiffReport:
    """The first causally-meaningful divergence between two runs."""

    index: int
    """Canonical-stream index of the divergence."""

    classification: str
    """One of the module-docstring classes."""

    nid: int
    """The divergent message's trace id (``-1`` if neither side has one)."""

    t: float
    """Sim-time of the divergence (the earlier side's)."""

    server: int
    """Server where the divergent edge happened."""

    a_event: Optional[TraceEvent]
    """The first run's event at the divergence (``None`` if exhausted)."""

    b_event: Optional[TraceEvent]
    """The second run's event at the divergence (``None`` if exhausted)."""

    detail: str = ""
    """One-line human description of what differs."""

    extras: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "classification": self.classification,
            "nid": self.nid,
            "t": self.t,
            "server": self.server,
            "detail": self.detail,
            "a_event": None if self.a_event is None
            else self.a_event._asdict(),
            "b_event": None if self.b_event is None
            else self.b_event._asdict(),
            **self.extras,
        }


def _classify(
    index: int,
    a: List[TraceEvent],
    b: List[TraceEvent],
) -> DiffReport:
    ea = a[index] if index < len(a) else None
    eb = b[index] if index < len(b) else None
    if ea is None or eb is None:
        present = ea if ea is not None else eb
        assert present is not None
        run = "first" if ea is not None else "second"
        other = "second" if ea is not None else "first"
        return DiffReport(
            index=index,
            classification="missing-message",
            nid=present.nid,
            t=present.t,
            server=present.server,
            a_event=ea,
            b_event=eb,
            detail=(
                f"the {other} run ends {index} events in; the {run} run "
                f"continues with {present.kind} of nid {present.nid}"
            ),
        )
    nid = ea.nid if ea.nid >= 0 else eb.nid
    t = min(ea.t, eb.t)
    if _identity(ea) == _identity(eb):
        if ea.value != eb.value:
            if ea.kind == "holdback_release":
                kind = "dwell-change"
                detail = (
                    f"hold-back of nid {ea.nid} at S{ea.server} dwelt "
                    f"{ea.value:.3f}ms vs {eb.value:.3f}ms"
                )
            elif ea.kind in ("stamp", "commit"):
                kind = "stamp-mismatch"
                detail = (
                    f"{ea.kind} of nid {ea.nid} at S{ea.server} carries "
                    f"{ea.value:g} cells vs {eb.value:g}"
                )
            else:
                kind = "stamp-mismatch" if ea.t == eb.t else "timing-shift"
                detail = (
                    f"{ea.kind} of nid {ea.nid} at S{ea.server}: value "
                    f"{ea.value:g} vs {eb.value:g}"
                )
        else:
            kind = "timing-shift"
            detail = (
                f"{ea.kind} of nid {ea.nid} at S{ea.server} happened at "
                f"t={ea.t:.3f}ms vs t={eb.t:.3f}ms"
            )
        return DiffReport(
            index=index, classification=kind, nid=nid, t=t,
            server=ea.server, a_event=ea, b_event=eb, detail=detail,
        )
    # different edges at the divergence: reordering vs. disappearance,
    # decided by whether each side's edge still occurs later in the other
    remainder_a = {_identity(e) for e in a[index:]}
    remainder_b = {_identity(e) for e in b[index:]}
    a_in_b = _identity(ea) in remainder_b
    b_in_a = _identity(eb) in remainder_a
    if a_in_b and b_in_a:
        flip = (
            ea.kind in _DELIVERY_KINDS
            and eb.kind in _DELIVERY_KINDS
            and ea.server == eb.server
        )
        kind = "delivery-order-flip" if flip else "event-order-flip"
        return DiffReport(
            index=index, classification=kind, nid=nid, t=t,
            server=ea.server, a_event=ea, b_event=eb,
            detail=(
                f"at S{ea.server} the first run {ea.kind}s nid {ea.nid} "
                f"before the second run's {eb.kind} of nid {eb.nid} "
                "(opposite order on the other side)"
            ),
            extras={"other_nid": eb.nid},
        )
    missing = ea if not a_in_b else eb
    where = "second" if not a_in_b else "first"
    return DiffReport(
        index=index, classification="missing-message", nid=missing.nid,
        t=missing.t, server=missing.server, a_event=ea, b_event=eb,
        detail=(
            f"{missing.kind} of nid {missing.nid} at S{missing.server} "
            f"(t={missing.t:.3f}ms) never happens in the {where} run"
        ),
    )


def diff_dumps(a: TraceDump, b: TraceDump) -> Optional[DiffReport]:
    """The first causally-meaningful divergence, or ``None`` when the
    canonical event streams are identical."""
    ca = canonical_events(a)
    cb = canonical_events(b)
    index = _first_divergence(ca, cb)
    if index >= len(ca) and index >= len(cb):
        return None
    return _classify(index, ca, cb)


# ----------------------------------------------------------------------
# Explanation: chain into why + critpath
# ----------------------------------------------------------------------


def _explain_side(
    label: str, dump: TraceDump, nid: int, lines: List[str]
) -> None:
    analyzer = CriticalPathAnalyzer(dump.events)
    waits = analyzer.waits(nid) if nid >= 0 else []
    if waits:
        lines.append(f"  [{label}] causal waits of nid {nid} (why):")
        for wait in waits:
            released = wait["released_at"]
            if released is None:
                lines.append(
                    f"    S{wait['src']}->S{wait['dst']} at "
                    f"S{wait['server']}: held at "
                    f"t={wait['entered_at']:.3f}ms, never released"
                )
            else:
                blocker = wait["blocker_nid"]
                lines.append(
                    f"    S{wait['src']}->S{wait['dst']} at "
                    f"S{wait['server']}: held {wait['dwell_ms']:.3f}ms"
                    + (
                        f", released by commit of nid {blocker}"
                        if blocker is not None
                        else ""
                    )
                )
    else:
        lines.append(
            f"  [{label}] nid {nid} was never held back in this run"
        )
    breakdown = analyzer.breakdown(nid) if nid >= 0 else None
    if breakdown is not None:
        parts = ", ".join(
            f"{name}={float(breakdown.totals[name]):.3f}ms"
            for name in CATEGORIES
            if breakdown.totals[name]
        )
        lines.append(
            f"  [{label}] critpath of nid {nid}: "
            f"e2e={breakdown.e2e_ms:.3f}ms ({parts})"
        )


def explain(
    report: DiffReport, a: TraceDump, b: TraceDump
) -> str:
    """A multi-line report: the divergence, then the ``why``/``critpath``
    view of the divergent nid on both runs."""
    lines = [
        f"first divergence at canonical event {report.index}: "
        f"{report.classification}",
        f"  nid {report.nid}, t={report.t:.3f}ms, server S{report.server}",
        f"  {report.detail}",
    ]
    if report.a_event is not None:
        lines.append(f"  run A: {_fmt(report.a_event)}")
    if report.b_event is not None:
        lines.append(f"  run B: {_fmt(report.b_event)}")
    if report.nid >= 0:
        _explain_side("A", a, report.nid, lines)
        _explain_side("B", b, report.nid, lines)
        lines.append(
            f"  dig deeper: python -m repro.obs why {report.nid} <dump>  |  "
            f"python -m repro.obs critpath {report.nid} <dump>"
        )
    return "\n".join(lines)


def watch_explain(a: TraceDump, b: TraceDump) -> Optional[str]:
    """The differential test zoo's entry point: ``None`` when the runs
    match, else the full self-explaining divergence report."""
    report = diff_dumps(a, b)
    if report is None:
        return None
    return explain(report, a, b)


def _fmt(event: TraceEvent) -> str:
    return (
        f"t={event.t:.3f}ms {event.kind} S{event.server} nid={event.nid}"
        + (f" [{event.domain}]" if event.domain else "")
        + (
            f" S{event.src}->S{event.dst}#{event.hop_seq}"
            if event.src >= 0
            else ""
        )
        + (f" value={event.value:g}" if event.value else "")
    )
