"""Time-travel replay: reconstruct protocol state at any sim-time ``T``.

A trace dump (:class:`~repro.obs.export.TraceDump`) records every
lifecycle edge of every message. Because the channel emits an event at
every state transition — stamp, arrival, hold-back enter/release, commit,
ACK, crash, recover — the dump is a complete transaction log of the
protocol's observable state, and this module replays it: per-server clock
matrices, hold-back queues, channel in-flight sets (unacked QueueOUT
entries and pending commits) and delivered prefixes, at any instant ``T``.

The reconstruction is exact, not approximate. A :class:`Replayer` keeps a
plain integer matrix per ``(server, domain)`` and re-executes the
matrix-clock protocol itself:

- a ``stamp`` event increments ``M[local(src)][local(dst)]`` at the
  sender and snapshots the sender's matrix as the hop's full-matrix
  stamp, keyed by ``(src, hop_seq)`` — hop sequence numbers are persisted
  and never reused, and retransmissions carry the *original* stamp, so
  the key is stable across the hop's whole lifetime;
- a ``commit`` event merges that stored stamp into the receiver's matrix
  cellwise (``M := max(M, W)``), exactly the clock's ``deliver``;
- an ``arrive`` event runs the Raynal–Schiper–Toueg deliverability test
  over the replayed matrices to decide whether the live channel started a
  commit (pending set) or parked the envelope (the subsequent
  ``holdback_enter`` event does the insert).

This integer-matrix model is sound for *both* stamp algorithms: the
full-matrix clock stamps ``W = M`` after the send increment, and the
Appendix-A Updates clock's delta stamps omit only cells the receiver
already dominates (:mod:`repro.clocks.updates`), so the merged values —
and hence every ``can_deliver`` verdict — are identical.

Crash/recovery replay relies on the channel's own persistence invariants:
clocks and the unacked table are persisted at every mutation and no ACK
can arrive while a server is down (the transport is stopped), so the
persisted unacked set always equals the last pre-crash volatile one;
hold-back stores and pending commits are volatile and are *not* restored.
The replayed snapshot therefore shows, per server: empty in-flight sets
while crashed, the persisted ones after recovery, and hold-back state
wiped by the crash — byte-identical to
:meth:`repro.mom.bus.MessageBus.protocol_snapshot` on the live bus.

On top of the state machine sit a cursor (``step_forward`` /
``step_back``, backed by periodic checkpoints) and watchpoints —
predicates evaluated after every applied event (``run_until``), with
:func:`watch_holdback_exceeds` and :func:`watch_deliverable` as the
ready-made ones.

Replay refuses dumps with ring wraparound (``meta.dropped > 0``): a
transaction log with a missing prefix cannot be replayed exactly.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import KINDS, TraceEvent
from repro.obs.export import TraceDump

#: Step-back granularity: a deep state checkpoint every this many applied
#: events bounds a backward step to one restore + at most this many
#: re-applied events.
CHECKPOINT_EVERY = 512

#: Presence of a downstream kind implies its upstream kinds were hooked.
#: Used by :func:`check_dump_complete` (and the CLI) to reject dumps
#: recorded with partial hooks; evaluated over ``nid >= 0`` events only,
#: so boot-only and local-only dumps raise nothing.
KIND_DEPENDENCIES: Dict[str, Tuple[str, ...]] = {
    "stamp": ("post",),
    "arrive": ("stamp", "transmit"),
    "holdback_enter": ("arrive",),
    "holdback_release": ("holdback_enter",),
    "commit": ("arrive", "stamp"),
    "reaction_start": ("enqueue_in",),
    "reaction_commit": ("reaction_start",),
}

Watchpoint = Callable[["Replayer", TraceEvent], bool]


def check_dump_complete(dump: TraceDump) -> None:
    """Raise ``ConfigurationError`` when the dump misses an event kind its
    retained events imply should exist (a partial-hook recording).

    Skipped on wrapped rings (``dropped > 0``): there the missing prefix
    is expected, and the per-command degradations handle it.
    """
    if dump.meta.get("dropped", 0) > 0:
        return
    present: Set[str] = set()
    message_present: Set[str] = set()
    for event in dump.events:
        if event.kind not in KINDS:
            raise ConfigurationError(
                f"dump contains unknown event kind {event.kind!r}"
            )
        present.add(event.kind)
        if event.nid >= 0:
            message_present.add(event.kind)
    for kind, needed in KIND_DEPENDENCIES.items():
        if kind not in message_present:
            continue
        for upstream in needed:
            if upstream not in present:
                raise ConfigurationError(
                    f"dump is missing event kind {upstream!r} — re-record "
                    "with REPRO_TRACE=1 full hooks"
                )


class _ServerState:
    """Replayed protocol state of one server."""

    __slots__ = (
        "crashed",
        "epoch",
        "hop_seq",
        "unacked",
        "holdback",
        "pending",
        "queue",
        "delivered",
        "clocks",
    )

    def __init__(self, domains: List[str]) -> None:
        self.crashed = False
        self.epoch = 0
        self.hop_seq = 0
        #: persisted QueueOUT hop_seqs (add on stamp, remove on ack); the
        #: live volatile set equals this whenever the server is up
        self.unacked: Set[int] = set()
        #: per-domain held-back hop mids, as (src, hop_seq)
        self.holdback: Dict[str, Set[Tuple[int, int]]] = {
            d: set() for d in domains
        }
        #: hop mids with a receive commit charged but not yet fired
        self.pending: Set[Tuple[int, int]] = set()
        #: persisted QueueIN notification ids, FIFO (boot markers carry no
        #: trace events and are excluded on both sides)
        self.queue: List[int] = []
        #: committed deliveries, in commit order
        self.delivered: List[int] = []
        #: flat s*s integer matrix per domain
        self.clocks: Dict[str, List[int]] = {}

    def copy(self) -> "_ServerState":
        dup = _ServerState([])
        dup.crashed = self.crashed
        dup.epoch = self.epoch
        dup.hop_seq = self.hop_seq
        dup.unacked = set(self.unacked)
        dup.holdback = {d: set(s) for d, s in self.holdback.items()}
        dup.pending = set(self.pending)
        dup.queue = list(self.queue)
        dup.delivered = list(self.delivered)
        dup.clocks = {d: list(m) for d, m in self.clocks.items()}
        return dup


class Replayer:
    """Deterministic state reconstruction over one trace dump.

    The cursor starts at 0 (no events applied). ``seek(T)`` positions it
    after the last event with ``t <= T`` — the same state a live bus shows
    after ``run(until=T)``, since the inclusive run loop drains every
    event scheduled at ``T`` before returning.
    """

    def __init__(self, dump: TraceDump) -> None:
        dropped = dump.meta.get("dropped", 0)
        if dropped > 0:
            raise ConfigurationError(
                f"cannot replay a wrapped ring: {dropped} events were "
                "dropped — re-record with a larger REPRO_TRACE_CAPACITY"
            )
        check_dump_complete(dump)
        self._dump = dump
        self._events: List[TraceEvent] = list(dump.events)
        domains: Dict[str, List[int]] = dump.meta.get("domains", {})
        server_ids: List[int] = dump.meta.get("server_ids", [])
        if not server_ids:
            raise ConfigurationError(
                "dump meta names no servers; cannot reconstruct state"
            )
        #: domain -> {global server id: domain-local id}; the member list
        #: order in the meta *is* the domain's local-id order (the tracer
        #: records Domain.servers verbatim, and the builders emit members
        #: ascending, which is also what the merged-parallel meta uses)
        self._locals: Dict[str, Dict[int, int]] = {
            d: {s: i for i, s in enumerate(members)}
            for d, members in domains.items()
        }
        self._sizes: Dict[str, int] = {
            d: len(members) for d, members in domains.items()
        }
        self._domains_of: Dict[int, List[str]] = {s: [] for s in server_ids}
        for d, members in domains.items():
            for s in members:
                if s in self._domains_of:
                    self._domains_of[s].append(d)
        #: (src, hop_seq) -> (domain, nid, stamp matrix after the send
        #: increment) — immutable once written, like the envelope's stamp
        self._stamps: Dict[Tuple[int, int], Tuple[str, int, List[int]]] = {}
        self._states: Dict[int, _ServerState] = {}
        self._cursor = 0
        self._checkpoints: Dict[int, Dict[int, _ServerState]] = {}
        self._reset()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def cursor(self) -> int:
        """Number of events applied so far."""
        return self._cursor

    @property
    def events(self) -> List[TraceEvent]:
        return self._events

    @property
    def now(self) -> float:
        """Sim-time of the last applied event (0.0 at the start)."""
        if self._cursor == 0:
            return 0.0
        return self._events[self._cursor - 1].t

    def state_of(self, server: int) -> _ServerState:
        try:
            return self._states[server]
        except KeyError:
            raise ConfigurationError(
                f"server {server} is not in the dump"
            ) from None

    def holdback_depth(self, server: int) -> int:
        state = self.state_of(server)
        return sum(len(held) for held in state.holdback.values())

    def is_deliverable(self, nid: int) -> bool:
        """Is any hop of ``nid`` currently past (or passing) the RST test?

        True when a hop of the message has a commit charged (pending) or
        sits in a hold-back store whose replayed ``can_deliver`` now
        admits it.
        """
        for server, state in self._states.items():
            for mid in state.pending:
                stamp = self._stamps.get(mid)
                if stamp is not None and stamp[1] == nid:
                    return True
            for held in state.holdback.values():
                for mid in held:
                    stamp = self._stamps.get(mid)
                    if stamp is None or stamp[1] != nid:
                        continue
                    if self._can_deliver(server, mid):
                        return True
        return False

    # ------------------------------------------------------------------
    # The state machine
    # ------------------------------------------------------------------

    def _reset(self) -> None:
        self._states = {}
        for server in self._domains_of:
            state = _ServerState(self._domains_of[server])
            for d in self._domains_of[server]:
                size = self._sizes[d]
                state.clocks[d] = [0] * (size * size)
            self._states[server] = state
        self._stamps = {}
        self._cursor = 0
        self._checkpoints = {0: {}}

    def _local(self, domain: str, server: int) -> int:
        try:
            return self._locals[domain][server]
        except KeyError:
            raise ConfigurationError(
                f"server {server} is not a member of domain {domain!r} "
                "(dump meta and events disagree)"
            ) from None

    def _stamp_of(self, mid: Tuple[int, int]) -> Tuple[str, int, List[int]]:
        stamp = self._stamps.get(mid)
        if stamp is None:
            raise ConfigurationError(
                f"no stamp event replayed for hop {mid}; the dump's event "
                "order is inconsistent (or the stamp hook was off)"
            )
        return stamp

    def _can_deliver(self, server: int, mid: Tuple[int, int]) -> bool:
        """The RST test at ``server`` for the stamp of hop ``mid``, over
        the replayed matrices (see :meth:`CausalClock.can_deliver`)."""
        domain, _nid, wire = self._stamp_of(mid)
        size = self._sizes[domain]
        matrix = self._states[server].clocks[domain]
        sender = self._local(domain, mid[0])
        me = self._local(domain, server)
        if wire[sender * size + me] != matrix[sender * size + me] + 1:
            return False
        for k in range(size):
            if k != sender and wire[k * size + me] > matrix[k * size + me]:
                return False
        return True

    def _apply(self, event: TraceEvent) -> None:
        kind = event.kind
        state = self._states.get(event.server)
        if state is None:
            raise ConfigurationError(
                f"event at unknown server {event.server}: {event}"
            )
        if kind == "stamp":
            domain = event.domain
            assert domain is not None, event
            matrix = state.clocks[domain]
            size = self._sizes[domain]
            row = self._local(domain, event.src)
            col = self._local(domain, event.dst)
            matrix[row * size + col] += 1
            self._stamps[(event.src, event.hop_seq)] = (
                domain, event.nid, list(matrix),
            )
            if event.hop_seq > state.hop_seq:
                state.hop_seq = event.hop_seq
            state.unacked.add(event.hop_seq)
        elif kind == "ack":
            state.unacked.discard(event.hop_seq)
        elif kind == "arrive":
            mid = (event.src, event.hop_seq)
            if self._can_deliver(event.server, mid):
                state.pending.add(mid)
        elif kind == "holdback_enter":
            assert event.domain is not None, event
            state.holdback[event.domain].add((event.src, event.hop_seq))
        elif kind == "holdback_release":
            assert event.domain is not None, event
            mid = (event.src, event.hop_seq)
            state.holdback[event.domain].discard(mid)
            state.pending.add(mid)
        elif kind == "commit":
            mid = (event.src, event.hop_seq)
            state.pending.discard(mid)
            domain, _nid, wire = self._stamp_of(mid)
            matrix = state.clocks[domain]
            for i, value in enumerate(wire):
                if value > matrix[i]:
                    matrix[i] = value
        elif kind == "enqueue_in":
            state.queue.append(event.nid)
        elif kind == "reaction_commit":
            if event.nid >= 0:
                if not state.queue or state.queue[0] != event.nid:
                    raise ConfigurationError(
                        f"reaction_commit of nid {event.nid} at server "
                        f"{event.server} does not match the replayed "
                        f"QueueIN head "
                        f"{state.queue[0] if state.queue else None}"
                    )
                state.queue.pop(0)
                state.delivered.append(event.nid)
        elif kind == "crash":
            state.crashed = True
            state.epoch += 1
            for held in state.holdback.values():
                held.clear()
            state.pending.clear()
        elif kind == "recover":
            state.crashed = False
        # post / transmit / retransmit / route_forward / reaction_start
        # move no replayed state

    # ------------------------------------------------------------------
    # Cursor movement
    # ------------------------------------------------------------------

    def step_forward(self) -> Optional[TraceEvent]:
        """Apply the next event; returns it, or ``None`` at the end."""
        if self._cursor >= len(self._events):
            return None
        event = self._events[self._cursor]
        self._apply(event)
        self._cursor += 1
        if self._cursor % CHECKPOINT_EVERY == 0:
            self._checkpoints[self._cursor] = {
                s: st.copy() for s, st in self._states.items()
            }
        return event

    def step_back(self) -> Optional[TraceEvent]:
        """Un-apply the last event; returns it, or ``None`` at the start.

        Implemented as restore-nearest-checkpoint + re-apply, so a step
        back costs at most :data:`CHECKPOINT_EVERY` forward applications.
        """
        if self._cursor == 0:
            return None
        target = self._cursor - 1
        undone = self._events[target]
        base = (target // CHECKPOINT_EVERY) * CHECKPOINT_EVERY
        checkpoint = self._checkpoints.get(base)
        if checkpoint is None or base == 0:
            self._reset()
            base = 0
        else:
            self._states = {s: st.copy() for s, st in checkpoint.items()}
            self._cursor = base
        while self._cursor < target:
            self.step_forward()
        return undone

    def seek(self, t: float) -> int:
        """Position the cursor after the last event with ``t <= T``;
        returns the number of events applied (forward or re-applied)."""
        # backward seeks restart from the best checkpoint at or before
        # the first event past T
        if self._cursor > 0 and self._events[self._cursor - 1].t > t:
            target = 0
            while (
                target < len(self._events) and self._events[target].t <= t
            ):
                target += 1
            base = (target // CHECKPOINT_EVERY) * CHECKPOINT_EVERY
            checkpoint = self._checkpoints.get(base)
            if checkpoint is not None and base > 0 and base <= self._cursor:
                self._states = {s: st.copy() for s, st in checkpoint.items()}
                self._cursor = base
            else:
                self._reset()
        applied = 0
        while (
            self._cursor < len(self._events)
            and self._events[self._cursor].t <= t
        ):
            self.step_forward()
            applied += 1
        return applied

    def run_until(
        self, watch: Watchpoint, limit: Optional[float] = None
    ) -> Optional[TraceEvent]:
        """Step forward until ``watch(self, event)`` is true; returns the
        triggering event, or ``None`` if the stream (or ``limit`` in
        sim-time) is exhausted first."""
        while self._cursor < len(self._events):
            if limit is not None and self._events[self._cursor].t > limit:
                return None
            event = self.step_forward()
            assert event is not None
            if watch(self, event):
                return event
        return None

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self, include_delivered: bool = True) -> Dict[str, Any]:
        """The replayed protocol state, in the exact shape (and therefore
        the exact ``json.dumps(..., sort_keys=True)`` bytes) of
        :meth:`repro.mom.bus.MessageBus.protocol_snapshot`.

        ``include_delivered=False`` matches a live bus running without
        ``record_delivered_log``.
        """
        servers: Dict[str, Any] = {}
        for server in sorted(self._states):
            state = self._states[server]
            crashed = state.crashed
            entry: Dict[str, Any] = {
                "crashed": crashed,
                "epoch": state.epoch,
                "hop_seq": state.hop_seq,
                # volatile sets read empty while the server is down; the
                # persisted ones come back verbatim on recovery
                "unacked": [] if crashed else sorted(state.unacked),
                "holdback": {
                    d: sorted([src, seq] for src, seq in held)
                    for d, held in sorted(state.holdback.items())
                },
                "pending": sorted(
                    [src, seq] for src, seq in state.pending
                ),
                "queued": [] if crashed else list(state.queue),
                "clocks": {
                    d: self._matrix_rows(d, state.clocks[d])
                    for d in sorted(state.clocks)
                },
            }
            if include_delivered:
                entry["delivered"] = list(state.delivered)
            servers[str(server)] = entry
        return {"servers": servers}

    def state_at(
        self, t: float, include_delivered: bool = True
    ) -> Dict[str, Any]:
        """``seek(t)`` + :meth:`snapshot` in one call."""
        self.seek(t)
        return self.snapshot(include_delivered=include_delivered)

    def snapshot_json(self, include_delivered: bool = True) -> str:
        """Canonical JSON bytes of :meth:`snapshot` (the identity-oracle
        comparison form)."""
        return json.dumps(
            self.snapshot(include_delivered=include_delivered),
            sort_keys=True,
        )

    def _matrix_rows(self, domain: str, flat: List[int]) -> List[List[int]]:
        size = self._sizes[domain]
        return [flat[row * size:(row + 1) * size] for row in range(size)]

    def __repr__(self) -> str:
        return (
            f"Replayer(events={len(self._events)}, cursor={self._cursor}, "
            f"t={self.now:.3f}ms)"
        )


# ----------------------------------------------------------------------
# Ready-made watchpoints
# ----------------------------------------------------------------------


def watch_holdback_exceeds(server: int, depth: int) -> Watchpoint:
    """Trigger when ``server``'s total held-back envelope count exceeds
    ``depth`` (e.g. "stop when server 3's holdback exceeds 5")."""

    def predicate(replay: "Replayer", event: TraceEvent) -> bool:
        if event.server != server or event.kind != "holdback_enter":
            return False
        return replay.holdback_depth(server) > depth

    return predicate


def watch_deliverable(nid: int) -> Watchpoint:
    """Trigger when any hop of message ``nid`` becomes deliverable: a
    commit is charged for it, or a held-back copy now passes the replayed
    RST test."""

    def predicate(replay: "Replayer", event: TraceEvent) -> bool:
        if event.kind not in (
            "arrive", "commit", "holdback_enter", "holdback_release",
        ):
            return False
        return replay.is_deliverable(nid)

    return predicate
