"""The benchmark harness: regenerate every figure of §6.

- :mod:`repro.mom.workloads` (re-exported here) — the §6.1 measurement
  protocol as agents: a ping-pong driver and a broadcast driver, both
  driven from a main agent on server 0;
- :mod:`repro.bench.harness` — one-call experiment runners returning
  structured results (simulated turn-around times, wire cells, clock
  state, disk traffic);
- :mod:`repro.bench.fits` — the least-squares fits the paper overlays
  (quadratic for Figures 7/8, linear for Figure 10);
- :mod:`repro.bench.figures` — per-figure sweeps with the paper's series
  embedded for side-by-side comparison;
- ``python -m repro.bench <figure>`` — prints any figure's table.
"""

from repro.mom.workloads import (
    PingPongDriver,
    BroadcastDriver,
    OpenLoopDriver,
    SinkAgent,
)
from repro.bench.harness import (
    ExperimentResult,
    run_remote_unicast,
    run_local_unicast,
    run_broadcast,
    run_baseline_unicast,
    farthest_plain_server,
)
from repro.bench.fits import linear_fit, quadratic_fit, FitResult
from repro.bench.figures import (
    FigureResult,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    updates_ablation,
    local_unicast_table,
    state_size_table,
    PAPER_FIG7,
    PAPER_FIG8,
    PAPER_FIG10,
)

__all__ = [
    "PingPongDriver",
    "BroadcastDriver",
    "OpenLoopDriver",
    "SinkAgent",
    "ExperimentResult",
    "run_remote_unicast",
    "run_local_unicast",
    "run_broadcast",
    "run_baseline_unicast",
    "farthest_plain_server",
    "linear_fit",
    "quadratic_fit",
    "FitResult",
    "FigureResult",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "updates_ablation",
    "local_unicast_table",
    "state_size_table",
    "PAPER_FIG7",
    "PAPER_FIG8",
    "PAPER_FIG10",
]
