"""CLI: regenerate any figure of the paper's evaluation.

Usage::

    python -m repro.bench fig7
    python -m repro.bench fig8 --rounds 3
    python -m repro.bench fig10 fig11
    python -m repro.bench all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.bench import figures

_FIGURES: Dict[str, Callable[..., "figures.FigureResult"]] = {
    "fig7": figures.figure7,
    "fig8": figures.figure8,
    "fig9": figures.figure9,
    "fig10": figures.figure10,
    "fig11": figures.figure11,
    "updates": figures.updates_ablation,
    "local": figures.local_unicast_table,
    "state": figures.state_size_table,
    "tracehist": figures.trace_table,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the evaluation figures of Laumay et al. 2001",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        choices=sorted(_FIGURES) + ["all", "report"],
        help="which figure(s) to regenerate; 'report' emits full markdown",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=0,
        help="override the per-point round count (0 = per-figure default)",
    )
    args = parser.parse_args(argv)

    if "report" in args.figures:
        from repro.bench.report import generate_report

        print(generate_report())
        return 0

    names = sorted(_FIGURES) if "all" in args.figures else args.figures
    for name in names:
        fn = _FIGURES[name]
        started = time.perf_counter()
        if args.rounds and name != "state":
            result = fn(rounds=args.rounds)
        else:
            result = fn()
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{name} regenerated in {elapsed:.1f}s wall time]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
