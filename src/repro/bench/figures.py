"""Per-figure sweeps, with the paper's measured series embedded.

Each ``figureN`` function reruns the §6 experiment behind that figure on
the simulated MOM and returns a :class:`FigureResult` holding our series,
the paper's series, and the same fit the paper overlays. ``render()``
produces the side-by-side table that EXPERIMENTS.md embeds and
``python -m repro.bench`` prints.

Paper series (read off the data tables printed under Figures 7, 8 and 10):

- Figure 7 — remote unicast, no domains (ms): 10→61, 20→69, 30→88,
  40→136, 50→201; quadratic fit.
- Figure 8 — broadcast, no domains (ms): 10→636, 20→1382, 30→2771,
  40→4187, 50→6613, 60→8933, 90→25323; quadratic fit.
- Figure 10 — remote unicast, bus of domains (ms): 10→159, 20→175,
  30→185, 40→192, 50→189, 60→205, 90→212, 120→217, 150→218; linear fit.
- Figure 11 — the two unicast curves overlaid; domains win past the
  crossover in the tens of servers.
- Figure 9 shows the three organizations (bus / daisy / tree); we measure
  all three at fixed n as the organization ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.fits import FitResult, linear_fit, quadratic_fit
from repro.bench.harness import (
    ExperimentResult,
    run_broadcast,
    run_local_unicast,
    run_remote_unicast,
)
from repro.topology import builders
from repro.topology.cost import (
    bus_unicast_cost,
    flat_unicast_cost,
    tree_unicast_cost,
)

PAPER_FIG7: Dict[int, float] = {10: 61, 20: 69, 30: 88, 40: 136, 50: 201}
PAPER_FIG8: Dict[int, float] = {
    10: 636, 20: 1382, 30: 2771, 40: 4187, 50: 6613, 60: 8933, 90: 25323,
}
PAPER_FIG10: Dict[int, float] = {
    10: 159, 20: 175, 30: 185, 40: 192, 50: 189,
    60: 205, 90: 212, 120: 217, 150: 218,
}


@dataclass
class FigureResult:
    """One regenerated figure: rows, fits, and a rendering."""

    figure: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]]
    fits: Dict[str, FitResult] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        widths = {
            col: max(len(col), *(len(str(r.get(col, ""))) for r in self.rows))
            for col in self.columns
        }
        header = "  ".join(col.rjust(widths[col]) for col in self.columns)
        rule = "-" * len(header)
        lines = [f"{self.figure}: {self.title}", rule, header, rule]
        for row in self.rows:
            lines.append(
                "  ".join(
                    str(row.get(col, "")).rjust(widths[col])
                    for col in self.columns
                )
            )
        lines.append(rule)
        for name, fit in self.fits.items():
            lines.append(f"fit[{name}]: {fit.describe()}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def series(self, column: str) -> List[float]:
        return [float(row[column]) for row in self.rows if row.get(column) not in (None, "")]


def _fmt(value: float) -> float:
    return round(value, 1)


def figure7(
    ns: Optional[Sequence[int]] = None, rounds: int = 20, clock: str = "matrix"
) -> FigureResult:
    """Figure 7: remote unicast without domains — quadratic in n."""
    ns = list(ns or PAPER_FIG7)
    rows = []
    for n in ns:
        result = run_remote_unicast(n, topology="flat", rounds=rounds, clock=clock)
        rows.append(
            {
                "n": n,
                "ours_ms": _fmt(result.mean_turnaround_ms),
                "paper_ms": PAPER_FIG7.get(n, ""),
                "wire_cells/hop": result.wire_cells // max(1, result.hops),
                "causal_ok": result.causal_ok,
            }
        )
    fits = {"ours (quadratic)": quadratic_fit(ns, [r["ours_ms"] for r in rows])}
    paper_ns = [n for n in ns if n in PAPER_FIG7]
    if len(paper_ns) >= 3:
        fits["paper (quadratic)"] = quadratic_fit(
            paper_ns, [PAPER_FIG7[n] for n in paper_ns]
        )
    return FigureResult(
        figure="Figure 7",
        title="DISTRIBUTED TEST — remote unicast WITHOUT domains of causality",
        columns=["n", "ours_ms", "paper_ms", "wire_cells/hop", "causal_ok"],
        rows=rows,
        fits=fits,
    )


def figure8(
    ns: Optional[Sequence[int]] = None, rounds: int = 5, clock: str = "matrix"
) -> FigureResult:
    """Figure 8: broadcast without domains — superlinear (quadratic fit)."""
    ns = list(ns or PAPER_FIG8)
    rows = []
    for n in ns:
        result = run_broadcast(n, topology="flat", rounds=rounds, clock=clock)
        rows.append(
            {
                "n": n,
                "ours_ms": _fmt(result.mean_turnaround_ms),
                "paper_ms": PAPER_FIG8.get(n, ""),
                "causal_ok": result.causal_ok,
            }
        )
    fits = {"ours (quadratic)": quadratic_fit(ns, [r["ours_ms"] for r in rows])}
    paper_ns = [n for n in ns if n in PAPER_FIG8]
    if len(paper_ns) >= 3:
        fits["paper (quadratic)"] = quadratic_fit(
            paper_ns, [PAPER_FIG8[n] for n in paper_ns]
        )
    return FigureResult(
        figure="Figure 8",
        title="DISTRIBUTED TEST — broadcast WITHOUT domains of causality",
        columns=["n", "ours_ms", "paper_ms", "causal_ok"],
        rows=rows,
        fits=fits,
    )


def figure10(
    ns: Optional[Sequence[int]] = None, rounds: int = 20, clock: str = "matrix"
) -> FigureResult:
    """Figure 10: remote unicast over a bus of ~√n domains — linear in n."""
    ns = list(ns or PAPER_FIG10)
    rows = []
    for n in ns:
        result = run_remote_unicast(n, topology="bus", rounds=rounds, clock=clock)
        rows.append(
            {
                "n": n,
                "ours_ms": _fmt(result.mean_turnaround_ms),
                "paper_ms": PAPER_FIG10.get(n, ""),
                "hops": result.hops,
                "causal_ok": result.causal_ok,
            }
        )
    fits = {"ours (linear)": linear_fit(ns, [r["ours_ms"] for r in rows])}
    paper_ns = [n for n in ns if n in PAPER_FIG10]
    if len(paper_ns) >= 2:
        fits["paper (linear)"] = linear_fit(
            paper_ns, [PAPER_FIG10[n] for n in paper_ns]
        )
    return FigureResult(
        figure="Figure 10",
        title="DISTRIBUTED TEST — remote unicast WITH domains of causality (bus)",
        columns=["n", "ours_ms", "paper_ms", "hops", "causal_ok"],
        rows=rows,
        fits=fits,
    )


def figure11(
    ns: Optional[Sequence[int]] = None, rounds: int = 20, clock: str = "matrix"
) -> FigureResult:
    """Figure 11: the with/without-domains comparison and its crossover."""
    ns = list(ns or sorted(PAPER_FIG10))
    rows = []
    crossover: Optional[int] = None
    for n in ns:
        flat = run_remote_unicast(n, topology="flat", rounds=rounds, clock=clock)
        domained = run_remote_unicast(n, topology="bus", rounds=rounds, clock=clock)
        if crossover is None and domained.mean_turnaround_ms < flat.mean_turnaround_ms:
            crossover = n
        rows.append(
            {
                "n": n,
                "without_ms": _fmt(flat.mean_turnaround_ms),
                "with_ms": _fmt(domained.mean_turnaround_ms),
                "paper_without": PAPER_FIG7.get(n, ""),
                "paper_with": PAPER_FIG10.get(n, ""),
                "winner": "domains"
                if domained.mean_turnaround_ms < flat.mean_turnaround_ms
                else "flat",
            }
        )
    notes = []
    if crossover is not None:
        notes.append(
            f"domains first win at n={crossover} "
            "(paper: between 40 and 50 servers)"
        )
    return FigureResult(
        figure="Figure 11",
        title="Cost comparison WITH vs WITHOUT domains (remote unicast)",
        columns=[
            "n", "without_ms", "with_ms", "paper_without", "paper_with", "winner",
        ],
        rows=rows,
        notes=notes,
    )


def figure9(
    n: int = 60, rounds: int = 20, clock: str = "matrix"
) -> FigureResult:
    """Figure 9 ablation: bus vs daisy vs tree organizations at fixed n,
    measured turn-around against the §6.2 analytic prediction."""
    size = builders.default_domain_size(n)
    rows = []
    for kind in ("flat", "bus", "daisy", "tree"):
        result = run_remote_unicast(n, topology=kind, rounds=rounds, clock=clock)
        if kind == "flat":
            analytic = flat_unicast_cost(n)
        elif kind == "bus":
            analytic = bus_unicast_cost(n, size)
        elif kind == "tree":
            analytic = tree_unicast_cost(n, size, 2)
        else:
            analytic = float("nan")
        rows.append(
            {
                "organization": kind,
                "ours_ms": _fmt(result.mean_turnaround_ms),
                "hops": result.hops,
                "state_cells": result.clock_state_cells,
                "analytic_s2_units": round(analytic, 1),
                "causal_ok": result.causal_ok,
            }
        )
    return FigureResult(
        figure="Figure 9",
        title=f"Organization ablation at n={n} (bus / daisy / tree, §6.2)",
        columns=[
            "organization", "ours_ms", "hops", "state_cells",
            "analytic_s2_units", "causal_ok",
        ],
        rows=rows,
        notes=[
            "daisy worst-case crosses every domain: linear in the number "
            "of domains, the shape §6.2 predicts",
        ],
    )


def updates_ablation(
    ns: Optional[Sequence[int]] = None, rounds: int = 20
) -> FigureResult:
    """Appendix-A ablation: full-matrix stamps vs Updates deltas.

    The Updates algorithm shrinks the wire footprint dramatically in
    steady state but leaves the resident/persistent O(s²) state untouched —
    the reason §4 needs domains *on top of* the optimization.
    """
    ns = list(ns or (10, 20, 30, 40, 50))
    rows = []
    for n in ns:
        full = run_remote_unicast(n, topology="flat", rounds=rounds, clock="matrix")
        delta = run_remote_unicast(n, topology="flat", rounds=rounds, clock="updates")
        rows.append(
            {
                "n": n,
                "full_ms": _fmt(full.mean_turnaround_ms),
                "updates_ms": _fmt(delta.mean_turnaround_ms),
                "full_cells/hop": full.wire_cells // max(1, full.hops),
                "updates_cells/hop": delta.wire_cells // max(1, delta.hops),
                "state_cells": full.clock_state_cells,
            }
        )
    return FigureResult(
        figure="Appendix A",
        title="Updates algorithm ablation (flat MOM, remote unicast)",
        columns=[
            "n", "full_ms", "updates_ms",
            "full_cells/hop", "updates_cells/hop", "state_cells",
        ],
        rows=rows,
        notes=[
            "persistent matrix image still costs O(n²) per message in both "
            "modes (persist_dirty_only=False), matching §3's disk-I/O "
            "bottleneck; the stamp-size win is the wire_cells column",
        ],
    )


def local_unicast_table(
    ns: Optional[Sequence[int]] = None, rounds: int = 20
) -> FigureResult:
    """§6.1's local-unicast series: same-server ping-pong is independent of
    n — the Local Bus bypasses the channel entirely."""
    ns = list(ns or (10, 20, 30, 40, 50))
    rows = []
    for n in ns:
        result = run_local_unicast(n, topology="flat", rounds=rounds)
        rows.append(
            {
                "n": n,
                "ours_ms": _fmt(result.mean_turnaround_ms),
                "wire_cells": result.wire_cells,
            }
        )
    return FigureResult(
        figure="§6.1 local",
        title="Unicast on the local server (flat MOM)",
        columns=["n", "ours_ms", "wire_cells"],
        rows=rows,
        notes=["constant in n: no stamps, no network — Figure 1's Local Bus"],
    )


def state_size_table(ns: Optional[Sequence[int]] = None) -> FigureResult:
    """The §1 state argument: resident matrix cells, flat vs bus.

    Flat: n servers × n² cells = n³ total. Bus of √n-domains: ≈ 2n·√n...
    concretely Σ over (server, domain) memberships of s_d² — measured here
    straight off booted buses.
    """
    ns = list(ns or (10, 20, 50, 100, 150))
    rows = []
    for n in ns:
        flat = run_local_unicast(n, topology="flat", rounds=1)
        domained = run_local_unicast(n, topology="bus", rounds=1)
        rows.append(
            {
                "n": n,
                "flat_state_cells": flat.clock_state_cells,
                "bus_state_cells": domained.clock_state_cells,
                "ratio": round(
                    flat.clock_state_cells / max(1, domained.clock_state_cells), 1
                ),
            }
        )
    return FigureResult(
        figure="§1 state",
        title="Resident matrix-clock state: flat (O(n³)) vs bus of domains",
        columns=["n", "flat_state_cells", "bus_state_cells", "ratio"],
        rows=rows,
    )


def trace_table(n: int = 50, rounds: int = 20) -> FigureResult:
    """Latency decomposition of traced runs, for the bench report.

    Two scenarios with the :mod:`repro.obs` tracer attached:

    - ``fig10``: the n-server bus-of-domains remote unicast of Figure 10
      (multi-hop routing, ordered network — hold-back rarely engages);
    - ``jittery``: a 12-server single domain under 0.1–20 ms uniform
      latency with four concurrent senders, the adversarial arrival order
      that drives messages through the hold-back queue.

    Tracing is observation-only, so the fig10 turn-around matches the
    untraced Figure 10 point bit-for-bit.
    """
    rows: List[Dict[str, object]] = []
    hist_names = (
        "holdback_dwell_ms",
        "e2e_delivery_ms",
        "ack_rtt_ms",
        "queue_wait_ms",
        "clock_merge_cells",
    )

    def add_rows(scenario: str, extras: Dict[str, float]) -> None:
        for name in hist_names:
            if f"{name}.count" not in extras:
                continue
            rows.append(
                {
                    "scenario": scenario,
                    "histogram": name,
                    "count": int(extras[f"{name}.count"]),
                    "p50": extras[f"{name}.p50"],
                    "p95": extras[f"{name}.p95"],
                    "p99": extras[f"{name}.p99"],
                }
            )

    result = run_remote_unicast(n, topology="bus", rounds=rounds, trace=True)
    add_rows("fig10", result.extras)
    add_rows("jittery", _jittery_trace_extras())
    return FigureResult(
        figure="Trace",
        title=f"Latency decomposition of traced runs (fig10 n={n})",
        columns=["scenario", "histogram", "count", "p50", "p95", "p99"],
        rows=rows,
        notes=[
            f"fig10 turnaround {round(result.mean_turnaround_ms, 1)}ms — "
            "identical to the untraced Figure 10 point (tracing is "
            "observation-only)",
        ],
    )


def _jittery_trace_extras() -> Dict[str, float]:
    """A traced hold-back churn run (the export_bench scenario): 4 senders
    flood one echo across a jittery single domain, so arrivals are
    out of order and the hold-back dwell histogram fills up."""
    from repro.mom import BusConfig, EchoAgent, FunctionAgent, MessageBus
    from repro.mom.workloads import PingPongDriver  # noqa: F401  (re-export)
    from repro.obs.tracer import attach as _attach
    from repro.simulation.network import UniformLatency
    from repro.topology import single_domain

    mom = MessageBus(
        BusConfig(
            topology=single_domain(12),
            seed=11,
            latency=UniformLatency(0.1, 20.0),
        )
    )
    tracer = _attach(mom)
    echo_id = mom.deploy(EchoAgent(), 11)
    for src in range(4):
        sender = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx, echo_id=echo_id):
            for i in range(25):
                ctx.send(echo_id, i)

        sender.on_boot = boot
        mom.deploy(sender, src)
    mom.start()
    mom.run_until_idle()
    extras: Dict[str, float] = {}
    for name in sorted(tracer.histograms):
        if "." in name:
            continue
        hist = tracer.histograms[name]
        extras[f"{name}.count"] = float(hist.count)
        for q in (50, 95, 99):
            extras[f"{name}.p{q}"] = round(hist.percentile(q), 3)
    return extras
