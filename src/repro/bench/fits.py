"""Least-squares fits: the curves the paper overlays on its figures.

Figures 7 and 8 are annotated with a "quadratic fit", Figure 10 with a
"linear fit"; we compute the same fits (plus R²) for both the paper's
series and ours, so EXPERIMENTS.md can report shape agreement rather than
eyeballed similarity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FitResult:
    """A polynomial fit ``y ≈ Σ coeffs[i] · x^(deg-i)`` with its R²."""

    degree: int
    coeffs: Tuple[float, ...]
    r_squared: float

    def predict(self, x: float) -> float:
        return float(np.polyval(self.coeffs, x))

    @property
    def leading(self) -> float:
        """The highest-order coefficient (the growth rate that matters)."""
        return self.coeffs[0]

    def describe(self) -> str:
        terms = []
        degree = self.degree
        for i, c in enumerate(self.coeffs):
            power = degree - i
            if power == 0:
                terms.append(f"{c:.3g}")
            elif power == 1:
                terms.append(f"{c:.3g}·n")
            else:
                terms.append(f"{c:.3g}·n^{power}")
        return " + ".join(terms) + f"   (R²={self.r_squared:.4f})"


def _fit(xs: Sequence[float], ys: Sequence[float], degree: int) -> FitResult:
    if len(xs) != len(ys):
        raise ConfigurationError(
            f"xs and ys must have equal length ({len(xs)} vs {len(ys)})"
        )
    if len(xs) < degree + 1:
        raise ConfigurationError(
            f"need at least {degree + 1} points for a degree-{degree} fit, "
            f"got {len(xs)}"
        )
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    coeffs = np.polyfit(x, y, degree)
    predicted = np.polyval(coeffs, x)
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - np.mean(y)) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return FitResult(degree=degree, coeffs=tuple(float(c) for c in coeffs),
                     r_squared=r_squared)


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y ≈ a·n + b`` (Figure 10's overlay)."""
    return _fit(xs, ys, 1)


def quadratic_fit(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y ≈ a·n² + b·n + c`` (Figures 7 and 8's overlay)."""
    return _fit(xs, ys, 2)
