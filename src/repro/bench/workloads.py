"""Compatibility shim — the workload agents live in :mod:`repro.mom.workloads`.

The drivers were historically defined here, but they are plain agents with
no dependency on the bench harness, and the scenario runner
(:mod:`repro.mom.scenario`) needs them too. Keeping them in ``bench`` made
``mom`` import ``bench`` while ``bench`` imports ``mom`` — exactly the
cross-layer cycle lint rule R006 forbids. The public names are re-exported
here so existing imports keep working.
"""

from __future__ import annotations

from repro.mom.workloads import (
    BroadcastDriver,
    OpenLoopDriver,
    PingPongDriver,
    SinkAgent,
)

__all__ = [
    "BroadcastDriver",
    "OpenLoopDriver",
    "PingPongDriver",
    "SinkAgent",
]
