"""One-shot reproduction report: every figure, rendered to markdown.

``python -m repro.bench report`` regenerates all evaluation tables and
emits a self-contained markdown document — the mechanical core of
EXPERIMENTS.md, suitable for CI artifacts or for diffing against a
previous run (the simulation is deterministic, so any diff is a real
behaviour change).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Sequence, Tuple

from repro.bench import figures
from repro.bench.figures import FigureResult

_SECTIONS: Tuple[Tuple[str, Callable[[], FigureResult]], ...] = (
    ("Figure 7 — remote unicast, no domains", figures.figure7),
    ("Figure 8 — broadcast, no domains", figures.figure8),
    ("Figure 10 — remote unicast, bus of domains", figures.figure10),
    ("Figure 11 — with vs without domains", figures.figure11),
    ("Figure 9 — organization ablation", figures.figure9),
    ("Appendix A — Updates algorithm ablation", figures.updates_ablation),
    ("§6.1 — local unicast", figures.local_unicast_table),
    ("§1 — resident clock state", figures.state_size_table),
    (
        "Observability — latency decomposition (traced runs)",
        figures.trace_table,
    ),
)


def _markdown_table(result: FigureResult) -> str:
    header = "| " + " | ".join(result.columns) + " |"
    rule = "|" + "|".join("---" for _ in result.columns) + "|"
    rows = [
        "| " + " | ".join(str(row.get(col, "")) for col in result.columns) + " |"
        for row in result.rows
    ]
    lines = [header, rule] + rows
    for name, fit in result.fits.items():
        lines.append("")
        lines.append(f"*fit {name}*: `{fit.describe()}`")
    for note in result.notes:
        lines.append("")
        lines.append(f"> {note}")
    return "\n".join(lines)


def generate_report(
    sections: Sequence[Tuple[str, Callable[[], FigureResult]]] = _SECTIONS,
) -> str:
    """Run every figure and return the full markdown report."""
    parts: List[str] = [
        "# Reproduction report",
        "",
        "Laumay et al., *Preserving Causality in a Scalable "
        "Message-Oriented Middleware* (Middleware 2001).",
        "All numbers regenerated deterministically by `repro.bench`; "
        "`paper_*` columns quote the paper's own series.",
        "",
    ]
    wall_started = time.perf_counter()
    for title, figure_fn in sections:
        result = figure_fn()
        parts.append(f"## {title}")
        parts.append("")
        parts.append(_markdown_table(result))
        parts.append("")
    elapsed = time.perf_counter() - wall_started
    parts.append(f"---\n*report regenerated in {elapsed:.1f}s wall time*")
    return "\n".join(parts)
