"""One-call experiment runners.

Each runner builds a fresh bus from a topology recipe, deploys the §6.1
agents, runs to quiescence and returns an :class:`ExperimentResult` with
the simulated turn-around time plus the cost-side aggregates the paper's
argument is really about: cells on the wire, cells written to disk,
resident clock state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.baselines.causal_broadcast import BroadcastGroup
from repro.mom.workloads import BroadcastDriver, PingPongDriver
from repro.errors import ConfigurationError
from repro.mom.agent import EchoAgent
from repro.mom.bus import MessageBus
from repro.mom.config import BusConfig
from repro.mom.parallel import AnyBus, make_bus
from repro.obs.tracer import Tracer
from repro.obs.tracer import attach as attach_tracer
from repro.simulation.costs import CostModel
from repro.topology import builders
from repro.topology.domains import Topology
from repro.topology.routing import hop_distances

_TOPOLOGIES: Dict[str, Callable[[int, int], Topology]] = {
    "flat": lambda n, size: builders.single_domain(n),
    "bus": lambda n, size: builders.bus(n, size),
    "daisy": lambda n, size: builders.daisy(n, size),
    "tree": lambda n, size: builders.tree(n, domain_size=size)
    if size
    else builders.tree(n),
}


@dataclass
class ExperimentResult:
    """Outcome of one experiment point (one n, one organization)."""

    name: str
    server_count: int
    topology: str
    clock_algorithm: str
    rounds: int
    mean_turnaround_ms: float
    """The paper's measured quantity: mean message turn-around (§6.1)."""

    wire_cells: int
    """Total matrix cells serialized on the network over the run."""

    persisted_cells: int
    """Total matrix cells written to the simulated disks."""

    clock_state_cells: int
    """Resident matrix state summed over servers (the O(n³) vs O(n·s²)
    global-state argument of §1)."""

    messages: int
    """Application notifications sent."""

    hops: int
    """Intra-domain hop messages sent (≥ messages on domained buses)."""

    causal_ok: bool
    """Did the recorded app trace respect causality? (always checked)"""

    extras: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Flatten for table rendering."""
        return {
            "n": self.server_count,
            "topology": self.topology,
            "clock": self.clock_algorithm,
            "turnaround_ms": round(self.mean_turnaround_ms, 1),
            "wire_cells": self.wire_cells,
            "persist_cells": self.persisted_cells,
            "state_cells": self.clock_state_cells,
            "hops": self.hops,
            "causal_ok": self.causal_ok,
        }


def make_topology(kind: str, server_count: int, domain_size: int = 0) -> Topology:
    """Build one of the named organizations (flat/bus/daisy/tree)."""
    try:
        factory = _TOPOLOGIES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology kind {kind!r}; choose from {sorted(_TOPOLOGIES)}"
        ) from None
    return factory(server_count, domain_size)


def farthest_plain_server(topology: Topology, source: int = 0) -> int:
    """The non-router server with the longest route from ``source`` — the
    paper's "remote server", maximizing the number of domain crossings.

    Falls back to the farthest server of any kind when every candidate is
    a router (tiny topologies). Ties break towards the highest id.
    """
    candidates = [server for server in topology.servers if server != source]
    if not candidates:
        raise ConfigurationError("topology has a single server")
    distances = hop_distances(topology, source)

    def preference(server: int) -> tuple:
        plain = 0 if topology.is_router(server) else 1
        return (plain, distances[server], server)

    return max(candidates, key=preference)


def _build_bus(
    kind: str,
    server_count: int,
    domain_size: int,
    clock: str,
    cost_model: Optional[CostModel],
    seed: int,
    record_hop_trace: bool,
    sequential_only: bool = False,
) -> AnyBus:
    topology = make_topology(kind, server_count, domain_size)
    config = BusConfig(
        topology=topology,
        clock_algorithm=clock,
        cost_model=cost_model or CostModel(),
        seed=seed,
        record_app_trace=True,
        record_hop_trace=record_hop_trace,
    )
    if sequential_only:
        # the obs tracer instruments a concrete MessageBus (its servers,
        # channels, transports); traced runs therefore stay sequential
        return MessageBus(config)
    return make_bus(config)


def _trace_extras(tracer: Tracer) -> Dict[str, float]:
    """Histogram percentiles of a traced run, flattened for ``extras``.

    Per-domain breakdowns (``clock_merge_cells.D3``) are left out — at
    bench scale they would swamp the result row; dump the tracer for the
    full picture.
    """
    extras: Dict[str, float] = {}
    for name in sorted(tracer.histograms):
        if "." in name:
            continue
        hist = tracer.histograms[name]
        extras[f"{name}.count"] = float(hist.count)
        for q in (50, 95, 99):
            extras[f"{name}.p{q}"] = round(hist.percentile(q), 3)
    return extras


def _finish(
    name: str,
    bus: AnyBus,
    kind: str,
    clock: str,
    rounds: int,
    mean_ms: float,
    tracer: Optional[Tracer] = None,
) -> ExperimentResult:
    report = bus.check_app_causality()
    snapshot = bus.metrics.snapshot()
    extras = _trace_extras(tracer) if tracer is not None else {}
    return ExperimentResult(
        name=name,
        server_count=bus.config.topology.server_count,
        topology=kind,
        clock_algorithm=clock,
        rounds=rounds,
        mean_turnaround_ms=mean_ms,
        wire_cells=bus.network.cells_transmitted,
        persisted_cells=bus.total_persisted_cells(),
        clock_state_cells=bus.total_clock_state_cells(),
        messages=int(snapshot.get("bus.notifications", 0)),
        hops=int(snapshot.get("channel.hops_sent", 0)),
        causal_ok=report.respects_causality,
        extras=extras,
    )


def run_remote_unicast(
    server_count: int,
    topology: str = "flat",
    rounds: int = 20,
    clock: str = "matrix",
    domain_size: int = 0,
    cost_model: Optional[CostModel] = None,
    seed: int = 0,
    trace: bool = False,
) -> ExperimentResult:
    """§6.1 "unicast on a remote server": main agent on server 0
    ping-pongs with the echo agent on the farthest plain server.

    With ``trace=True`` a :class:`~repro.obs.tracer.Tracer` rides along
    and the result's ``extras`` carry p50/p95/p99 of the latency
    histograms (holdback dwell, e2e delivery, ACK RTT, queue wait)."""
    bus = _build_bus(
        topology, server_count, domain_size, clock, cost_model, seed, False,
        sequential_only=trace,
    )
    tracer = attach_tracer(bus) if trace else None
    target_server = farthest_plain_server(bus.config.topology, source=0)
    echo_id = bus.deploy(EchoAgent(), target_server)
    driver = PingPongDriver(rounds)
    driver.bind(echo_id)
    bus.deploy(driver, 0)
    bus.start()
    bus.run_until_idle()
    return _finish(
        "remote_unicast", bus, topology, clock, rounds, driver.mean_rtt,
        tracer,
    )


def run_local_unicast(
    server_count: int,
    topology: str = "flat",
    rounds: int = 20,
    clock: str = "matrix",
    domain_size: int = 0,
    cost_model: Optional[CostModel] = None,
    seed: int = 0,
    trace: bool = False,
) -> ExperimentResult:
    """§6.1 "unicast on the local server": driver and echo share server 0
    (Figure 1's Local Bus — no channel, no stamps, constant cost)."""
    bus = _build_bus(
        topology, server_count, domain_size, clock, cost_model, seed, False,
        sequential_only=trace,
    )
    tracer = attach_tracer(bus) if trace else None
    echo_id = bus.deploy(EchoAgent(), 0)
    driver = PingPongDriver(rounds)
    driver.bind(echo_id)
    bus.deploy(driver, 0)
    bus.start()
    bus.run_until_idle()
    return _finish(
        "local_unicast", bus, topology, clock, rounds, driver.mean_rtt,
        tracer,
    )


def run_baseline_unicast(
    server_count: int,
    rounds: int = 20,
    cost_model: Optional[CostModel] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Remote unicast over the §2 vector-clock causal-broadcast baseline.

    Node 0 ping-pongs with node n-1, but every ping and every pong floods
    the whole group (n-1 packets each) because that is how broadcast-based
    causal order works. Directly comparable with
    :func:`run_remote_unicast` on the matrix-clock MOM.
    """
    group = BroadcastGroup(server_count, cost_model=cost_model, seed=seed)
    target = server_count - 1
    rtts: List[float] = []
    state = {"sent_at": 0.0, "completed": 0}

    def on_driver(sender: int, payload: Any) -> None:
        rtts.append(group.sim.now - state["sent_at"])
        state["completed"] += 1
        if state["completed"] < rounds:
            state["sent_at"] = group.sim.now
            driver.broadcast(state["completed"], dest=target)

    def on_echo(sender: int, payload: Any) -> None:
        echo.broadcast(payload, dest=0)

    driver = group.add_node(on_driver)
    for node_id in range(1, server_count - 1):
        group.add_node(lambda sender, payload: None)
    echo = group.add_node(on_echo)

    group.sim.schedule(0.0, lambda: driver.broadcast(0, dest=target))
    group.run_until_idle()

    mean_rtt = sum(rtts) / len(rtts)
    return ExperimentResult(
        name="baseline_broadcast_unicast",
        server_count=server_count,
        topology="bss-broadcast",
        clock_algorithm="vector",
        rounds=rounds,
        mean_turnaround_ms=mean_rtt,
        wire_cells=group.wire_cells,
        persisted_cells=group.persisted_cells,
        clock_state_cells=server_count * server_count,  # n vectors of n
        messages=2 * rounds,
        hops=group.packets_sent,
        causal_ok=True,  # BSS is causal by construction; asserted in tests
    )


def run_broadcast(
    server_count: int,
    topology: str = "flat",
    rounds: int = 5,
    clock: str = "matrix",
    domain_size: int = 0,
    cost_model: Optional[CostModel] = None,
    seed: int = 0,
    trace: bool = False,
) -> ExperimentResult:
    """§6.1 "broadcast on all servers": one echo agent per server; the main
    agent sends to all of them and waits for every echo per round."""
    bus = _build_bus(
        topology, server_count, domain_size, clock, cost_model, seed, False,
        sequential_only=trace,
    )
    tracer = attach_tracer(bus) if trace else None
    echo_ids = [
        bus.deploy(EchoAgent(), server) for server in bus.config.topology.servers
    ]
    driver = BroadcastDriver(rounds)
    driver.bind(echo_ids)
    bus.deploy(driver, 0)
    bus.start()
    bus.run_until_idle()
    return _finish(
        "broadcast", bus, topology, clock, rounds, driver.mean_round_time,
        tracer,
    )
