"""Repairing invalid domain decompositions.

The boot-time validator (:func:`repro.topology.graph.validate_topology`)
*rejects* cyclic domain graphs; this module goes one step further and
proposes the fix: remove as few domain memberships as possible so that

- the domain graph becomes a tree over the same domains (acyclic and
  connected),
- every adjacent domain pair shares exactly one router,
- every server keeps at least one domain, and no domain is emptied.

The approach: keep a maximum spanning tree of the domain graph weighted by
how many servers each adjacency shares (so well-established adjacencies
survive), then cut every shared membership that realizes a non-tree edge,
and thin multi-shared tree edges down to one router. Each cut prefers to
shrink the *larger* domain — smaller domains mean smaller matrix clocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.errors import TopologyError
from repro.topology.domains import Domain, Topology
from repro.topology.graph import domain_graph, validate_topology


@dataclass(frozen=True)
class RepairAction:
    """One membership removal: ``server`` leaves ``domain_id``."""

    server: int
    domain_id: str
    reason: str

    def describe(self) -> str:
        return f"remove S{self.server} from {self.domain_id!r} ({self.reason})"


@dataclass(frozen=True)
class DomainAbsorption:
    """A domain that shrank into a subset of another is dropped entirely.

    Safe by construction: every adjacency the inner domain provided runs
    through servers the outer domain also contains, so connectivity and
    routing are preserved (with strictly smaller clocks).
    """

    domain_id: str
    absorbed_into: str

    def describe(self) -> str:
        return f"drop {self.domain_id!r} (subset of {self.absorbed_into!r})"


def absorb_nested_domains(
    members: Dict[str, List[int]],
) -> List[Tuple[str, str, List[int]]]:
    """Repeatedly drop domains whose member set is a subset of another's.

    Mutates ``members`` in place; returns ``(inner, outer, inner_members)``
    per absorption. Always safe: every adjacency the inner domain provided
    runs through servers the outer domain also contains. Used by both the
    repairer and the §7 partitioner (router promotion into a singleton
    community nests it by construction).
    """
    absorbed: List[Tuple[str, str, List[int]]] = []
    changed = True
    while changed:
        changed = False
        ids = sorted(members)
        for inner in ids:
            if len(members) == 1:
                break
            inner_set = set(members[inner])
            outer = next(
                (
                    candidate
                    for candidate in ids
                    if candidate != inner
                    and candidate in members
                    and inner_set <= set(members[candidate])
                ),
                None,
            )
            if outer is not None:
                snapshot = list(members[inner])
                del members[inner]
                absorbed.append((inner, outer, snapshot))
                changed = True
                break
    return absorbed


def repair_topology(topology: Topology) -> Tuple[Topology, List[RepairAction]]:
    """Return an acyclic, single-router-per-pair version of ``topology``
    plus the list of membership removals that produced it.

    Already-valid topologies come back unchanged with an empty action
    list. Raises :class:`TopologyError` when no repair exists under the
    constraints (e.g. cutting would orphan a server or empty a domain —
    in practice only for degenerate inputs).
    """
    graph = domain_graph(topology)
    if len(topology.domain_ids) > 1 and not nx.is_connected(graph):
        raise TopologyError(
            "cannot repair a disconnected domain graph: servers in "
            "different components can never communicate; merge or bridge "
            "the components first"
        )

    weighted = nx.Graph()
    weighted.add_nodes_from(graph.nodes)
    for first, second, data in graph.edges(data=True):
        weighted.add_edge(first, second, weight=len(data["shared"]))
    tree_edges: Set[frozenset] = {
        frozenset(edge)
        for edge in nx.maximum_spanning_edges(weighted, data=False)
    }

    members: Dict[str, List[int]] = {
        d.domain_id: list(d.servers) for d in topology.domains
    }
    domains_of: Dict[int, Set[str]] = {
        server: {d.domain_id for d in topology.domains_of(server)}
        for server in topology.servers
    }
    actions: List[RepairAction] = []

    def still_shared(server: int, pair: Tuple[str, str]) -> bool:
        return all(domain_id in domains_of[server] for domain_id in pair)

    def cut(server: int, pair: Tuple[str, str], reason: str) -> None:
        """Remove `server` from one side of the pair, preferring the larger
        domain, subject to not orphaning the server or emptying a domain."""
        if len(domains_of[server]) <= 1:
            raise TopologyError(
                f"cannot break the {pair[0]!r}-{pair[1]!r} adjacency: "
                f"S{server} has no other domain to live in"
            )
        candidates = [
            domain_id
            for domain_id in sorted(pair, key=lambda d: (-len(members[d]), d))
            if domain_id in domains_of[server] and len(members[domain_id]) > 1
        ]
        if not candidates:
            raise TopologyError(
                f"cannot break the {pair[0]!r}-{pair[1]!r} adjacency: "
                f"removing S{server} from either side would empty a domain"
            )
        domain_id = candidates[0]
        members[domain_id].remove(server)
        domains_of[server].discard(domain_id)
        actions.append(RepairAction(server, domain_id, reason))

    edges = sorted(graph.edges(data=True))
    # pass 1: break every adjacency that closes a cycle
    for first, second, data in edges:
        pair = (first, second)
        if frozenset(pair) in tree_edges:
            continue
        for server in sorted(data["shared"]):
            if still_shared(server, pair):
                cut(server, pair, "adjacency closes a domain-graph cycle")
    # pass 2: thin kept adjacencies down to a single router, evaluated
    # against the *post-cut* membership state
    for first, second, data in edges:
        pair = (first, second)
        if frozenset(pair) not in tree_edges:
            continue
        sharers = [s for s in sorted(data["shared"]) if still_shared(s, pair)]
        if not sharers:
            raise TopologyError(
                f"repair destroyed the kept adjacency {first!r}-{second!r}; "
                "the topology is too entangled for membership-only repair"
            )
        for extra in sharers[1:]:
            cut(extra, pair, "second shared server on a kept adjacency")

    # pass 3: absorb domains that shrank into subsets of another domain
    # (nesting is both formally excluded by §4.2 and pointless: the outer
    # domain already orders every message the inner one could carry).
    for inner, outer, inner_members in absorb_nested_domains(members):
        for server in inner_members:
            domains_of[server].discard(inner)
        actions.append(DomainAbsorption(inner, outer))

    repaired = Topology(
        [
            Domain(domain_id, tuple(servers))
            for domain_id, servers in members.items()
        ]
    )
    validate_topology(repaired)
    return repaired, actions
