"""Domains of causality: topology definition, validation, routing, builders.

The paper replaces the single-bus MOM by a "virtual multi-bus (or Snow
Flake) architecture" (§4): servers are grouped into *domains of causality*,
adjacent domains share exactly one *causal router-server*, and the domain
interconnection graph must be acyclic for the per-domain protocol to be
globally correct (§4.3).

- :mod:`repro.topology.domains` — :class:`Domain` and :class:`Topology`,
  the static description a :class:`~repro.mom.bus.MessageBus` boots from;
- :mod:`repro.topology.graph` — the domain interconnection graph and the
  structural validation (acyclicity, single shared router per domain pair,
  no nested domains, connectivity);
- :mod:`repro.topology.routing` — static shortest-path routing tables,
  built at boot exactly as §5 describes;
- :mod:`repro.topology.builders` — the organizations of Figure 9 (bus,
  daisy, tree) plus the flat single-domain baseline;
- :mod:`repro.topology.cost` — the analytic cost model of §6.2
  (C ≈ (2d+1)s², n ≈ s·k^d, bus-vs-tree comparison);
- :mod:`repro.topology.partition` — the §7 "optimal splitting" future work:
  heuristics that derive a domain decomposition from a weighted application
  communication graph.
"""

from repro.topology.domains import Domain, Topology
from repro.topology.graph import (
    domain_graph,
    find_domain_cycle,
    validate_topology,
)
from repro.topology.routing import RoutingTable, build_routing_tables, route
from repro.topology.builders import (
    single_domain,
    bus,
    daisy,
    tree,
    ring,
    from_domain_map,
    default_domain_size,
)
from repro.topology.cost import (
    domain_message_cost,
    tree_server_count,
    bus_unicast_cost,
    flat_unicast_cost,
    tree_unicast_cost,
    crossover_point,
    topology_unicast_cost,
)
from repro.topology.partition import (
    CommunicationGraph,
    estimate_traffic_cost,
    partition_communication_graph,
)
from repro.topology.repair import (
    RepairAction,
    DomainAbsorption,
    repair_topology,
)
from repro.topology.dot import topology_to_dot

__all__ = [
    "Domain",
    "Topology",
    "domain_graph",
    "find_domain_cycle",
    "validate_topology",
    "RoutingTable",
    "build_routing_tables",
    "route",
    "single_domain",
    "bus",
    "daisy",
    "tree",
    "ring",
    "from_domain_map",
    "default_domain_size",
    "domain_message_cost",
    "tree_server_count",
    "bus_unicast_cost",
    "flat_unicast_cost",
    "tree_unicast_cost",
    "crossover_point",
    "topology_unicast_cost",
    "CommunicationGraph",
    "estimate_traffic_cost",
    "partition_communication_graph",
    "RepairAction",
    "DomainAbsorption",
    "repair_topology",
    "topology_to_dot",
]
