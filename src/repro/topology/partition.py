"""Optimal splitting of a MOM into domains — the §7 future work.

"The division of the MOM in domains needs to be done carefully and the new
problem is to find an optimal splitting. [...] it can be made according to
the application's topology."

Given a weighted *communication graph* (how much each pair of servers
talks — e.g. derived from an ADL description of the application, as §7
suggests), the partitioner:

1. groups heavily-communicating servers into candidate domains (greedy
   modularity communities, capped at a maximum domain size);
2. connects the candidate domains with a *maximum* spanning tree of the
   inter-domain traffic — a tree, so the resulting domain graph is acyclic
   by construction, satisfying the theorem's precondition;
3. realizes each tree edge by promoting the server with the most
   cross-domain traffic into a causal router-server (adding it to the
   neighbouring domain), never reusing a router so that no two domains
   share two servers and no accidental domain-graph triangle appears.

The result always passes :func:`repro.topology.graph.validate_topology`,
and :func:`estimate_traffic_cost` scores any decomposition under the §6.2
cost model so heuristics can be compared (see
``benchmarks/test_partition_ablation.py``).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.errors import ConfigurationError, TopologyError
from repro.topology.cost import domain_message_cost
from repro.topology.domains import Domain, Topology
from repro.topology.routing import build_routing_tables, route


class CommunicationGraph:
    """Application-level traffic between servers: node = server, edge
    weight = messages per unit time (symmetric)."""

    def __init__(self, server_count: int):
        if server_count < 1:
            raise ConfigurationError(
                f"need at least 1 server, got {server_count}"
            )
        self._graph = nx.Graph()
        self._graph.add_nodes_from(range(server_count))

    @property
    def server_count(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (read it, don't mutate it)."""
        return self._graph

    def add_traffic(self, first: int, second: int, weight: float = 1.0) -> None:
        """Accumulate ``weight`` units of traffic between two servers."""
        if first == second:
            raise ConfigurationError("traffic endpoints must differ")
        for server in (first, second):
            if server not in self._graph:
                raise ConfigurationError(f"unknown server {server}")
        if weight <= 0:
            raise ConfigurationError(f"traffic weight must be > 0, got {weight}")
        current = self._graph.get_edge_data(first, second, {"weight": 0.0})
        self._graph.add_edge(first, second, weight=current["weight"] + weight)

    def weight(self, first: int, second: int) -> float:
        data = self._graph.get_edge_data(first, second)
        return data["weight"] if data else 0.0

    def pairs(self) -> List[Tuple[int, int, float]]:
        """All traffic-carrying pairs as ``(server, server, weight)``."""
        return [(u, v, d["weight"]) for u, v, d in self._graph.edges(data=True)]

    def __repr__(self) -> str:
        return (
            f"CommunicationGraph(servers={self.server_count}, "
            f"pairs={self._graph.number_of_edges()})"
        )


def estimate_traffic_cost(
    topology: Topology, comm: CommunicationGraph, unit: float = 1.0
) -> float:
    """Expected causality cost per unit time of a decomposition:
    ``Σ weight(u,v) × Σ_{domains on route(u,v)} s_d²`` (§6.2's per-domain
    cost, weighted by the application's actual traffic)."""
    tables = build_routing_tables(topology)
    total = 0.0
    for source, dest, weight in comm.pairs():
        path = route(tables, source, dest)
        for here, there in zip(path, path[1:]):
            domain = topology.shared_domain(here, there)
            total += weight * domain_message_cost(domain.size, unit)
    return total


def _communities(
    comm: CommunicationGraph, max_domain_size: int
) -> List[List[int]]:
    """Candidate domains: modularity communities, split to the size cap."""
    graph = comm.graph
    if graph.number_of_edges() == 0:
        members = sorted(graph.nodes)
        return [
            members[i : i + max_domain_size]
            for i in range(0, len(members), max_domain_size)
        ]
    raw = nx.algorithms.community.greedy_modularity_communities(
        graph, weight="weight"
    )
    communities: List[List[int]] = []
    for group in raw:
        members = sorted(group)
        for i in range(0, len(members), max_domain_size):
            communities.append(members[i : i + max_domain_size])
    return communities


def _cross_weight(
    comm: CommunicationGraph, first: Sequence[int], second: Sequence[int]
) -> float:
    return sum(
        comm.weight(u, v) for u in first for v in second
    )


def partition_communication_graph(
    comm: CommunicationGraph,
    max_domain_size: int = 0,
    unit: float = 1.0,
) -> Topology:
    """Derive an acyclic domain decomposition from application traffic.

    Args:
        comm: the weighted communication graph.
        max_domain_size: cap on servers per domain *before* routers are
            added; 0 picks ~√n, matching the bus analysis.
        unit: cost unit forwarded to tie-breaking (reserved; the current
            heuristic is cost-unit independent).

    Returns:
        A validated-ready topology: acyclic domain graph, one shared router
        per adjacent pair, fully connected.

    Raises:
        ConfigurationError: on degenerate inputs (fewer than 2 servers per
            requested domain, impossible router assignment).
    """
    n = comm.server_count
    cap = max_domain_size or max(2, round(math.sqrt(n)))
    if cap < 1:
        raise ConfigurationError(f"max_domain_size must be >= 1, got {cap}")
    communities = _communities(comm, cap)
    if len(communities) == 1:
        return Topology([Domain("D0", tuple(communities[0]))])

    # Maximum spanning tree over candidate domains, weighted by the traffic
    # each inter-domain adjacency would localize. Zero-traffic pairs get an
    # epsilon edge so the tree always spans (connectivity requirement).
    quotient = nx.Graph()
    quotient.add_nodes_from(range(len(communities)))
    for i, j in itertools.combinations(range(len(communities)), 2):
        weight = _cross_weight(comm, communities[i], communities[j])
        quotient.add_edge(i, j, weight=weight)
    tree_edges = nx.maximum_spanning_edges(quotient, data=False)

    members: List[List[int]] = [list(c) for c in communities]
    used_routers: Set[int] = set()
    # Union-find over communities: adjacencies that cannot be realized by
    # promoting a fresh router (tiny communities run out of candidates)
    # are realized by *merging* the two communities instead — a slightly
    # larger domain beats an invalid or disconnected topology.
    parent = list(range(len(members)))

    def find(index: int) -> int:
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    for i, j in tree_edges:
        ri, rj = find(i), find(j)
        if ri == rj:
            continue
        try:
            router = _pick_router(comm, members[ri], members[rj], used_routers)
        except ConfigurationError:
            keep, gone = sorted((ri, rj))
            merged = members[keep] + [
                s for s in members[gone] if s not in members[keep]
            ]
            members[keep] = merged
            members[gone] = []
            parent[gone] = keep
            continue
        used_routers.add(router)
        if router in members[ri]:
            members[rj].append(router)
        else:
            members[ri].append(router)

    # Router promotion into a tiny community can nest it inside its
    # neighbour (e.g. a singleton community whose only member became the
    # router); absorb such domains rather than emit an invalid topology.
    from repro.topology.repair import absorb_nested_domains

    named: Dict[str, List[int]] = {
        f"D{index}": group
        for index, group in enumerate(members)
        if group
    }
    absorb_nested_domains(named)

    return Topology(
        [Domain(domain_id, tuple(group)) for domain_id, group in named.items()]
    )


def _pick_router(
    comm: CommunicationGraph,
    first: Sequence[int],
    second: Sequence[int],
    used: Set[int],
) -> int:
    """The server with the most traffic across the (first, second) cut,
    among servers not already promoted for another adjacency."""
    best: Optional[int] = None
    best_weight = -1.0
    for candidate in itertools.chain(first, second):
        if candidate in used:
            continue
        other = second if candidate in first else first
        weight = sum(comm.weight(candidate, peer) for peer in other)
        if weight > best_weight or (
            weight == best_weight and (best is None or candidate < best)
        ):
            best = candidate
            best_weight = weight
    if best is None:
        raise ConfigurationError(
            "no router candidate left for a domain adjacency; domains are "
            "too small for the requested structure"
        )
    return best
