"""Topology ops CLI: inspect, validate, repair and cost domain maps.

A domain map is a JSON object ``{"domain-id": [server, ...], ...}`` —
the same shape :func:`repro.topology.builders.from_domain_map` takes.

Usage::

    python -m repro.topology describe  map.json
    python -m repro.topology validate  map.json
    python -m repro.topology repair    map.json [--write fixed.json]
    python -m repro.topology cost      map.json --src 0 --dst 7
    python -m repro.topology generate  bus --servers 50 [--domain-size 7]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

from repro.errors import ReproError
from repro.topology import builders
from repro.topology.builders import from_domain_map
from repro.topology.cost import topology_unicast_cost
from repro.topology.domains import Topology
from repro.topology.graph import find_domain_cycle, validate_topology
from repro.topology.repair import repair_topology
from repro.topology.routing import build_routing_tables, route


def _load(path: str) -> Topology:
    with open(path) as handle:
        mapping = json.load(handle)
    return from_domain_map(mapping)


def _to_mapping(topology: Topology) -> Dict[str, List[int]]:
    return {d.domain_id: list(d.servers) for d in topology.domains}


def cmd_describe(args) -> int:
    topology = _load(args.path)
    print(topology.describe())
    cycle = find_domain_cycle(topology)
    if cycle:
        print(f"WARNING: domain graph has a cycle: {' -> '.join(cycle)}")
    return 0


def cmd_validate(args) -> int:
    topology = _load(args.path)
    try:
        validate_topology(topology)
    except ReproError as error:
        print(f"INVALID: {error}")
        return 1
    print(
        f"OK: {topology.server_count} servers, "
        f"{len(topology.domains)} domains, "
        f"{len(topology.routers)} causal router-servers, "
        "domain graph acyclic"
    )
    return 0


def cmd_repair(args) -> int:
    topology = _load(args.path)
    repaired, actions = repair_topology(topology)
    if not actions:
        print("already valid; nothing to do")
    for action in actions:
        print(f"  {action.describe()}")
    print()
    print(repaired.describe())
    if args.write:
        with open(args.write, "w") as handle:
            json.dump(_to_mapping(repaired), handle, indent=2)
        print(f"written to {args.write}")
    return 0


def cmd_cost(args) -> int:
    topology = _load(args.path)
    validate_topology(topology)
    tables = build_routing_tables(topology)
    path = route(tables, args.src, args.dst)
    cost = topology_unicast_cost(topology, args.src, args.dst)
    pretty = " -> ".join(f"S{server}" for server in path)
    print(f"route : {pretty}  ({len(path) - 1} hop(s))")
    print(f"cost  : {cost:.0f} s²-units (§6.2 model)")
    return 0


def cmd_generate(args) -> int:
    if args.kind == "flat":
        topology = builders.single_domain(args.servers)
    elif args.kind == "bus":
        topology = builders.bus(args.servers, args.domain_size)
    elif args.kind == "daisy":
        topology = builders.daisy(args.servers, args.domain_size)
    else:
        topology = builders.tree(
            args.servers, fanout=args.fanout, domain_size=args.domain_size
        )
    print(json.dumps(_to_mapping(topology), indent=2))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.topology",
        description="inspect / validate / repair domain-of-causality maps",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn in (
        ("describe", cmd_describe),
        ("validate", cmd_validate),
        ("repair", cmd_repair),
        ("cost", cmd_cost),
    ):
        cmd = sub.add_parser(name)
        cmd.add_argument("path", help="JSON domain map")
        cmd.set_defaults(fn=fn)
        if name == "repair":
            cmd.add_argument("--write", help="write the repaired map here")
        if name == "cost":
            cmd.add_argument("--src", type=int, required=True)
            cmd.add_argument("--dst", type=int, required=True)

    gen = sub.add_parser("generate")
    gen.add_argument("kind", choices=["flat", "bus", "daisy", "tree"])
    gen.add_argument("--servers", type=int, required=True)
    gen.add_argument("--domain-size", type=int, default=0)
    gen.add_argument("--fanout", type=int, default=2)
    gen.set_defaults(fn=cmd_generate)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
