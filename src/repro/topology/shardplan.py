"""Domain partition → shard map for the parallel kernel (docs/parallel.md).

The paper's own decomposition is reused to decompose the *simulator*:
domains are the natural unit of locality (most traffic is intra-domain),
so whole domains are assigned to workers and every server is homed to the
worker owning its first domain. The assignment is a pure function of
``(topology, workers)``, so every process — parent and all workers —
computes the identical plan without communicating.

Note that correctness never depends on the plan: the network layer is the
only cross-server medium, so *any* server partition yields bit-identical
results (see ``repro.simulation.kernel``). The plan only shapes load
balance and cross-shard traffic volume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.errors import TopologyError
from repro.topology.domains import Topology


@dataclass(frozen=True)
class ShardPlan:
    """A complete server → shard assignment.

    Attributes:
        shards: per shard, the frozen set of servers it homes; the sets
            partition ``0..n-1`` and are all non-empty.
        domain_shards: domain id → shard index of the shard the domain's
            homed servers went to (router-servers of the domain may still
            be homed elsewhere).
    """

    shards: Tuple[FrozenSet[int], ...]
    domain_shards: Dict[str, int]

    @property
    def worker_count(self) -> int:
        return len(self.shards)

    def shard_of(self, server: int) -> int:
        for index, members in enumerate(self.shards):
            if server in members:
                return index
        raise TopologyError(f"server {server} is in no shard")

    def describe(self) -> str:
        lines = [f"ShardPlan: {self.worker_count} worker(s)"]
        for index, members in enumerate(self.shards):
            lines.append(f"  shard {index}: servers {sorted(members)}")
        return "\n".join(lines)


def home_domain(topology: Topology, server: int) -> str:
    """The domain a server is *homed* to: first by domain id among its
    memberships — router-servers belong to several domains but live on
    exactly one shard."""
    return min(d.domain_id for d in topology.domains_of(server))


def build_shard_plan(topology: Topology, workers: int) -> ShardPlan:
    """Assign whole domains to ``workers`` shards, contiguously in domain
    id order, balancing homed-server counts.

    Contiguity keeps domains that share routers (adjacent ids in the
    standard builders) on the same worker where possible, reducing
    cross-shard packets. Workers beyond the domain count are dropped; a
    single-domain topology always yields a one-shard plan.
    """
    if workers < 1:
        raise TopologyError(f"need at least 1 worker, got {workers}")
    domain_ids = sorted(topology.domain_ids)
    homes: Dict[str, List[int]] = {d: [] for d in domain_ids}
    for server in topology.servers:
        homes[home_domain(topology, server)].append(server)
    workers = min(workers, len(domain_ids))
    groups: List[List[int]] = [[] for _ in range(workers)]
    domain_shards: Dict[str, int] = {}
    remaining_servers = topology.server_count
    cursor = 0
    for index in range(workers):
        remaining_groups = workers - index
        target = math.ceil(remaining_servers / remaining_groups)
        is_last = index == workers - 1
        while cursor < len(domain_ids):
            # leave at least one domain for each later group
            if not is_last and (
                len(domain_ids) - cursor <= remaining_groups - 1
            ):
                break
            homed = homes[domain_ids[cursor]]
            if groups[index] and len(groups[index]) + len(homed) > target:
                break
            groups[index].extend(homed)
            domain_shards[domain_ids[cursor]] = index
            remaining_servers -= len(homed)
            cursor += 1
    # Domains whose members are all homed elsewhere can leave a group with
    # zero servers; such groups cannot host a worker — drop and remap.
    remap: Dict[int, int] = {}
    shards: List[FrozenSet[int]] = []
    for index, members in enumerate(groups):
        if members:
            remap[index] = len(shards)
            shards.append(frozenset(members))
    if not shards:
        raise TopologyError("shard plan produced no non-empty shard")
    last = len(shards) - 1
    domain_shards = {
        d: remap.get(i, last) for d, i in domain_shards.items()
    }
    return ShardPlan(shards=tuple(shards), domain_shards=domain_shards)


def lookahead_ms(min_latency_ms: float) -> float:
    """The conservative-sync window width: the minimum inter-server hop
    latency. Exposed as a function so the eligibility gate and the docs
    agree on the single source of truth."""
    return min_latency_ms
