"""Standard domain organizations (Figure 9) plus test topologies.

The three organizations the paper evaluates or discusses:

- **single domain** — the classical flat MOM, the "without domains of
  causality" baseline of Figures 7 and 8;
- **bus** (the paper's "Snow Flake") — one backbone domain interconnecting
  k leaf domains through their routers; with leaves of ~√n servers this is
  the organization behind Figure 10's linear curve;
- **daisy** — a chain of domains, each sharing one router with the next;
- **tree** — a hierarchy of domains with fixed fan-out, the organization
  §6.2 analyses as potentially logarithmic (at a higher constant).

``ring`` builds a *deliberately cyclic* decomposition — it fails
validation, which is the point: the theorem tests boot it with validation
disabled and demonstrate the causality break.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.errors import TopologyError
from repro.topology.domains import Domain, Topology


def single_domain(server_count: int) -> Topology:
    """The flat baseline: all servers in one domain, one n×n matrix clock."""
    if server_count < 1:
        raise TopologyError(f"need at least 1 server, got {server_count}")
    return Topology([Domain("D0", tuple(range(server_count)))])


def _leaf_sizes(server_count: int, leaf_size: int) -> List[int]:
    """Split ``server_count`` servers into leaves of ~``leaf_size``, as
    evenly as possible, every leaf having at least 2 servers."""
    if leaf_size < 2:
        raise TopologyError(f"domain size must be >= 2, got {leaf_size}")
    leaf_count = max(1, round(server_count / leaf_size))
    if server_count / leaf_count < 2:
        leaf_count = server_count // 2
    base = server_count // leaf_count
    extra = server_count % leaf_count
    return [base + (1 if i < extra else 0) for i in range(leaf_count)]


def default_domain_size(server_count: int) -> int:
    """The paper's choice for the bus organization: domains of ~√n servers
    ("our splitting in √n domains of √n servers", §6.2)."""
    return max(2, round(math.sqrt(server_count)))


def bus(server_count: int, domain_size: int = 0) -> Topology:
    """The bus (Snow Flake) organization of Figures 9 and 10.

    Leaf domains ``D1..Dk`` partition the servers; the *last* server of
    each leaf doubles as its causal router-server and the backbone domain
    ``D0`` consists of exactly those k routers. The domain graph is a star
    centred on ``D0`` — trivially acyclic.

    Args:
        server_count: total number of servers (ids ``0..n-1``).
        domain_size: target leaf size; 0 (default) picks ~√n, the paper's
            linear-cost configuration.

    The last server of each leaf (rather than the first) is the router so
    that server 0 — where the benchmarks place their main agent, following
    §6.1 — is an ordinary leaf member and a remote unicast crosses the full
    three-domain route (leaf → backbone → leaf).
    """
    if server_count < 1:
        raise TopologyError(f"need at least 1 server, got {server_count}")
    size = domain_size or default_domain_size(server_count)
    sizes = _leaf_sizes(server_count, size)
    if len(sizes) == 1:
        return single_domain(server_count)
    domains: List[Domain] = []
    routers: List[int] = []
    start = 0
    for index, leaf in enumerate(sizes):
        members = tuple(range(start, start + leaf))
        domains.append(Domain(f"D{index + 1}", members))
        routers.append(members[-1])
        start += leaf
    domains.insert(0, Domain("D0", tuple(routers)))
    return Topology(domains)


def daisy(server_count: int, domain_size: int = 0) -> Topology:
    """The daisy organization of Figure 9: a chain of domains, consecutive
    domains sharing exactly one router-server.

    With domains of s servers, consecutive overlaps of one server give
    ``n = k(s-1) + 1`` total servers; the last domain absorbs the
    remainder.
    """
    if server_count < 1:
        raise TopologyError(f"need at least 1 server, got {server_count}")
    size = domain_size or default_domain_size(server_count)
    if size < 2:
        raise TopologyError(f"domain size must be >= 2, got {size}")
    if server_count <= size:
        return single_domain(server_count)
    domains: List[Domain] = []
    start = 0
    index = 0
    while start < server_count - 1:
        end = min(start + size - 1, server_count - 1)
        domains.append(Domain(f"D{index}", tuple(range(start, end + 1))))
        start = end
        index += 1
    return Topology(domains)


def tree(server_count: int, fanout: int = 2, domain_size: int = 0) -> Topology:
    """The hierarchical organization of Figure 9: a tree of domains.

    The root domain has ``domain_size`` servers; each domain spawns up to
    ``fanout`` child domains, a child sharing one member of its parent (its
    uplink router) and adding ``domain_size - 1`` fresh servers, breadth
    first, until the server budget is consumed. §6.2's analysis:
    ``n ≈ s·k^d`` and per-message cost ``≈ 2d·s²``, i.e. logarithmic in n —
    at a larger constant than the bus, so a tree can lose to a bus at
    moderate n.
    """
    if server_count < 1:
        raise TopologyError(f"need at least 1 server, got {server_count}")
    if fanout < 1:
        raise TopologyError(f"fanout must be >= 1, got {fanout}")
    size = domain_size or default_domain_size(server_count)
    if size < 2:
        raise TopologyError(f"domain size must be >= 2, got {size}")
    if server_count <= size:
        return single_domain(server_count)

    domains: List[Domain] = []
    root_members = tuple(range(min(size, server_count)))
    domains.append(Domain("D0", root_members))
    next_server = len(root_members)
    # Each entry is a server that can serve as the uplink router of one
    # future child domain; parents expose each member `fanout` times... no:
    # each *domain* spawns up to `fanout` children, attached to distinct
    # members where possible (spreading the router load).
    expandable: List[tuple] = [("D0", root_members)]
    index = 1
    while next_server < server_count and expandable:
        parent_id, parent_members = expandable.pop(0)
        children = 0
        for uplink in parent_members:
            if children >= fanout or next_server >= server_count:
                break
            fresh = min(size - 1, server_count - next_server)
            members = (uplink,) + tuple(range(next_server, next_server + fresh))
            next_server += fresh
            child_id = f"D{index}"
            domains.append(Domain(child_id, members))
            expandable.append((child_id, members[1:]))
            index += 1
            children += 1
    if next_server < server_count:
        raise TopologyError(
            f"could not place all servers: fanout {fanout} and domain size "
            f"{size} exhaust expansion at {next_server} of {server_count}"
        )
    return Topology(domains)


def ring(domain_count: int, domain_size: int) -> Topology:
    """A deliberately *cyclic* decomposition: a daisy chain closed into a
    loop (the last domain shares a router with the first).

    This violates the theorem's precondition and fails
    :func:`~repro.topology.graph.validate_topology`; the theorem tests use
    it to reproduce the Figure-4 causality break end to end.
    """
    if domain_count < 3:
        raise TopologyError(
            f"a ring needs at least 3 domains, got {domain_count}"
        )
    if domain_size < 2:
        raise TopologyError(f"domain size must be >= 2, got {domain_size}")
    stride = domain_size - 1
    total = domain_count * stride
    domains = []
    for index in range(domain_count):
        start = index * stride
        members = [start + offset for offset in range(domain_size)]
        members = [m % total for m in members]
        domains.append(Domain(f"D{index}", tuple(members)))
    return Topology(domains)


def from_domain_map(mapping: Mapping[str, Sequence[int]]) -> Topology:
    """Build a topology from an explicit ``{domain_id: [server, ...]}`` map,
    e.g. the Figure-2 example:

    >>> figure2 = from_domain_map({
    ...     "A": [0, 1, 2],          # S1, S2, S3
    ...     "B": [3, 4],             # S4, S5
    ...     "C": [6, 7],             # S7, S8
    ...     "D": [2, 4, 5, 6],       # S3, S5, S6, S7
    ... })
    """
    return Topology(
        [Domain(domain_id, tuple(servers)) for domain_id, servers in mapping.items()]
    )
