"""Graphviz (DOT) export of the domain interconnection graph.

``dot -Tsvg`` (or ``neato``) renders the §4.2 picture: domains as nodes,
shared causal router-servers annotated on the edges. The causal message
graph of a *trace* is exported by :func:`repro.causality.dot.trace_to_dot`
— it lives there because traces are a causality-layer concept, while this
module only needs the static topology.
"""

from __future__ import annotations

from typing import Hashable, List

from repro.topology.domains import Topology
from repro.topology.graph import domain_graph


def _quote(value: Hashable) -> str:
    text = str(value)
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def topology_to_dot(topology: Topology) -> str:
    """The §4.2 domain interconnection graph, with shared routers on the
    edges and member lists in the nodes."""
    graph = domain_graph(topology)
    lines: List[str] = [
        "graph domains {",
        "  layout=neato;",
        '  node [shape=ellipse, fontsize=11, fontname="sans-serif"];',
    ]
    for domain in topology.domains:
        members = ", ".join(
            f"S{s}{'*' if topology.is_router(s) else ''}"
            for s in domain.servers
        )
        label = f"{domain.domain_id}\\n{members}"
        lines.append(
            f"  {_quote(domain.domain_id)} [label={_quote(label)}];"
        )
    for first, second, data in sorted(graph.edges(data=True)):
        shared = ", ".join(f"S{s}" for s in data["shared"])
        lines.append(
            f"  {_quote(first)} -- {_quote(second)} "
            f"[label={_quote(shared)}, fontsize=9];"
        )
    lines.append("}")
    return "\n".join(lines)
