"""Domains and topologies — the static structure a MessageBus boots from.

A :class:`Domain` is an *ordered* group of servers: the position of a server
in the member tuple is its ``domainServerId`` (§5), the index used by that
domain's matrix clock. A :class:`Topology` is a set of domains over global
server identifiers ``0..n-1``; servers in two or more domains are the causal
router-servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.causality.chains import Membership
from repro.errors import TopologyError


@dataclass(frozen=True)
class Domain:
    """One domain of causality (§4.1).

    Attributes:
        domain_id: the domain's name, unique within a topology.
        servers: member servers by global identifier; the tuple order
            defines each member's domain-local identifier
            (``domainServerId``), hence the matrix-clock indexing.
    """

    domain_id: str
    servers: Tuple[int, ...]

    def __post_init__(self):
        if not self.servers:
            raise TopologyError(f"domain {self.domain_id!r} has no servers")
        if len(set(self.servers)) != len(self.servers):
            raise TopologyError(
                f"domain {self.domain_id!r} lists a server twice: {self.servers}"
            )
        if any(server < 0 for server in self.servers):
            raise TopologyError(
                f"domain {self.domain_id!r} has a negative server id"
            )

    @property
    def size(self) -> int:
        return len(self.servers)

    def local_id(self, server: int) -> int:
        """The ``domainServerId`` of a member (§5's idTable, inverted)."""
        try:
            return self.servers.index(server)
        except ValueError:
            raise TopologyError(
                f"server {server} is not in domain {self.domain_id!r}"
            ) from None

    def global_id(self, local: int) -> int:
        """Global ``ServerId`` of the member with domain-local id ``local``."""
        if not 0 <= local < len(self.servers):
            raise TopologyError(
                f"domain-local id {local} out of range in {self.domain_id!r}"
            )
        return self.servers[local]

    def __contains__(self, server: int) -> bool:
        return server in self.servers

    def __repr__(self) -> str:
        return f"Domain({self.domain_id!r}, servers={self.servers})"


class Topology:
    """A complete domain decomposition of an n-server MOM.

    The constructor performs only cheap structural checks; the full §4
    validity conditions (acyclic domain graph, one router per domain pair,
    no nesting, connectivity) live in
    :func:`repro.topology.graph.validate_topology`, which the MessageBus
    calls at boot — and which the theorem tests deliberately skip.
    """

    def __init__(self, domains: Sequence[Domain]):
        if not domains:
            raise TopologyError("a topology needs at least one domain")
        self._domains: Dict[str, Domain] = {}
        for domain in domains:
            if domain.domain_id in self._domains:
                raise TopologyError(f"duplicate domain id {domain.domain_id!r}")
            self._domains[domain.domain_id] = domain
        servers: set = set()
        for domain in domains:
            servers.update(domain.servers)
        expected = set(range(len(servers)))
        if servers != expected:
            raise TopologyError(
                "server ids must be exactly 0..n-1; "
                f"got {sorted(servers)}"
            )
        self._servers: Tuple[int, ...] = tuple(sorted(servers))
        self._domains_of: Dict[int, List[str]] = {s: [] for s in self._servers}
        for domain in domains:
            for server in domain.servers:
                self._domains_of[server].append(domain.domain_id)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def server_count(self) -> int:
        return len(self._servers)

    @property
    def servers(self) -> Tuple[int, ...]:
        return self._servers

    @property
    def domains(self) -> List[Domain]:
        return list(self._domains.values())

    @property
    def domain_ids(self) -> List[str]:
        return list(self._domains)

    def domain(self, domain_id: str) -> Domain:
        try:
            return self._domains[domain_id]
        except KeyError:
            raise TopologyError(f"unknown domain {domain_id!r}") from None

    def domains_of(self, server: int) -> List[Domain]:
        """All domains a server belongs to (≥2 for router-servers)."""
        try:
            ids = self._domains_of[server]
        except KeyError:
            raise TopologyError(f"unknown server {server}") from None
        return [self._domains[d] for d in ids]

    def is_router(self, server: int) -> bool:
        """§4.1: a causal router-server belongs to at least two domains."""
        return len(self.domains_of(server)) >= 2

    @property
    def routers(self) -> List[int]:
        return [s for s in self._servers if self.is_router(s)]

    def common_domains(self, first: int, second: int) -> List[Domain]:
        """Domains containing both servers; nonempty iff they are adjacent
        (can exchange a message directly)."""
        here = set(self._domains_of.get(first, ()))
        there = set(self._domains_of.get(second, ()))
        return [self._domains[d] for d in here & there]

    def shared_domain(self, first: int, second: int) -> Domain:
        """The unique domain shared by two adjacent servers.

        Validated topologies guarantee uniqueness (two domains never share
        two servers); when several exist anyway, the first by domain id is
        returned deterministically.
        """
        common = self.common_domains(first, second)
        if not common:
            raise TopologyError(
                f"servers {first} and {second} share no domain"
            )
        return min(common, key=lambda d: d.domain_id)

    def membership(self) -> Membership:
        """The formal §4.2 membership structure over this topology."""
        return Membership(
            {d.domain_id: set(d.servers) for d in self._domains.values()}
        )

    def describe(self) -> str:
        """A short human-readable summary (used by examples and logs)."""
        lines = [f"Topology: {self.server_count} servers, "
                 f"{len(self._domains)} domain(s), "
                 f"{len(self.routers)} router(s)"]
        for domain in self._domains.values():
            members = ", ".join(
                f"S{server}{'*' if self.is_router(server) else ''}"
                for server in domain.servers
            )
            lines.append(f"  {domain.domain_id}: {members}")
        lines.append("  (* = causal router-server)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Topology(servers={self.server_count}, "
            f"domains={list(self._domains)})"
        )
