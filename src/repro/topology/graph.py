"""The domain interconnection graph and the §4 validity conditions.

Two domains are adjacent iff a server belongs to both (§4.2). The theorem
requires this graph to be acyclic; the implementation additionally requires

- **single shared router per domain pair** — if two domains shared two
  servers, the formal restriction of a trace to either domain would contain
  messages the *other* domain's protocol ordered, silently voiding the
  per-domain guarantee (the trap is a multigraph cycle the simple graph
  cannot see);
- **no nested domains** — §4.2 notes domain inclusion "does not occur in
  practice" and the path/cycle definitions assume it away;
- **connectivity** — otherwise some server pairs simply cannot communicate
  and the routing tables of §5 cannot be built.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.errors import CyclicDomainGraphError, TopologyError
from repro.topology.domains import Topology


def domain_graph(topology: Topology) -> nx.Graph:
    """Build the §4.2 domain interconnection graph.

    Vertices are domain ids; an edge carries the list of shared servers
    under the ``"shared"`` attribute.
    """
    graph = nx.Graph()
    graph.add_nodes_from(topology.domain_ids)
    domains = topology.domains
    for i, first in enumerate(domains):
        first_members = set(first.servers)
        for second in domains[i + 1 :]:
            shared = sorted(first_members & set(second.servers))
            if shared:
                graph.add_edge(first.domain_id, second.domain_id, shared=shared)
    return graph


def find_domain_cycle(topology: Topology) -> Optional[List[str]]:
    """Return one cycle of the domain graph (as a domain-id list), or
    ``None`` when the graph is acyclic.

    A pair of domains sharing two or more servers counts as a (length-2,
    multigraph) cycle, for the reason given in the module docstring.
    """
    graph = domain_graph(topology)
    for first, second, data in graph.edges(data=True):
        if len(data["shared"]) > 1:
            return [first, second]
    try:
        cycle_edges = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in cycle_edges]


def _find_nested_domains(topology: Topology) -> Optional[Tuple[str, str]]:
    """Return a (inner, outer) pair of nested domains, or ``None``."""
    domains = topology.domains
    for inner in domains:
        inner_members = set(inner.servers)
        for outer in domains:
            if inner.domain_id == outer.domain_id:
                continue
            if inner_members <= set(outer.servers):
                return inner.domain_id, outer.domain_id
    return None


def validate_topology(topology: Topology) -> None:
    """Enforce every §4 validity condition; raise on the first failure.

    Raises:
        CyclicDomainGraphError: the domain graph has a cycle (including the
            two-routers-between-one-pair multigraph case).
        TopologyError: nested domains, or a disconnected domain graph.
    """
    nested = _find_nested_domains(topology)
    if nested:
        inner, outer = nested
        raise TopologyError(
            f"domain {inner!r} is nested inside {outer!r}; "
            "§4.2 assumes no domain is included in another"
        )
    cycle = find_domain_cycle(topology)
    if cycle is not None:
        raise CyclicDomainGraphError(cycle)
    graph = domain_graph(topology)
    if len(topology.domain_ids) > 1 and not nx.is_connected(graph):
        components = [sorted(c) for c in nx.connected_components(graph)]
        raise TopologyError(
            f"domain graph is disconnected: components {components}; "
            "servers in different components cannot communicate"
        )
