"""Static routing tables, built at boot (§5).

"The routing table gives, for each destination server, the identifier of
the server to which the message should be sent: the destination server,
within a domain, and a router server otherwise. The routing table is built
statically at boot time [...] based on a shortest path algorithm."

The server adjacency graph connects two servers iff they share a domain
(messages are intra-domain). A breadth-first search per *destination*
yields the next hop from every source; on validated (tree-like) topologies
the route at domain granularity is unique, and ties inside a domain are
broken deterministically by preferring the lowest next-hop identifier so
that every boot produces identical tables.

Implementation note — the hot-path rewrite. The original implementation
materialized all n BFS trees eagerly over a networkx graph, which is the
single most expensive operation at n=1000 (two orders of magnitude more
work than the simulation itself for a short experiment). This version
exploits two structural facts without changing a single produced route:

- the server graph is a *union of cliques* (one clique per domain), so the
  first time a BFS wave touches any member of a domain it absorbs the whole
  domain; scanning a fully-absorbed domain again can never discover a new
  node.  Each per-destination BFS therefore costs O(Σ|domain|) instead of
  O(Σ|domain|²).
- most callers query a handful of destinations (the MOM consults routes
  only for servers that actually exchange messages), so BFS trees are
  built lazily per destination and memoized.  Connectivity is still
  verified eagerly at build time, with the same error as before.

Determinism is preserved exactly: the BFS discovery order — pop order,
then neighbours in ascending server id — is identical to iterating
``sorted(graph.neighbors(current))`` on the old explicit graph, because
every still-undiscovered neighbour of a popped node lies in one of its
not-yet-absorbed domains, and those are scanned in merged sorted order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RoutingError, TopologyError
from repro.metrics.instruments import Counter
from repro.metrics.registry import Registry
from repro.topology.domains import Topology


class _RoutingIndex:
    """Shared, lazily materialized all-destination BFS parent trees.

    One index is shared by every :class:`RoutingTable` of one
    :func:`build_routing_tables` call.  ``parents_towards(dest)[s]`` is the
    next hop from ``s`` towards ``dest`` (BFS parent in the tree rooted at
    ``dest``), computed on first use and cached.
    """

    __slots__ = (
        "_n", "_members", "_domains_of", "_parents", "_trees", "_scans",
        "scan_counts",
    )

    def __init__(
        self, topology: Topology, registry: Optional[Registry] = None
    ):
        # cost accounting (repro.metrics): how much BFS work routing does
        self._trees: Optional[Counter] = None
        self._scans: Optional[Counter] = None
        if registry is not None:
            self._trees = registry.counter(
                "routing_bfs_trees_total",
                help="per-destination BFS trees materialized lazily",
            )
            self._scans = registry.counter(
                "routing_bfs_scans_total",
                help="BFS neighbour-candidate scans while building trees",
            )
        servers = topology.servers
        # Topology guarantees ids are exactly 0..n-1, so server ids double
        # as dense array indices.
        self._n = len(servers)
        domains = topology.domains
        self._members: List[Tuple[int, ...]] = [
            tuple(sorted(d.servers)) for d in domains
        ]
        self._domains_of: List[List[int]] = [[] for _ in range(self._n)]
        for di, members in enumerate(self._members):
            for server in members:
                self._domains_of[server].append(di)
        self._parents: Dict[int, List[int]] = {}
        #: per-destination scan counts of materialized trees. The scans of
        #: one tree are a pure function of (topology, dest), so shard
        #: workers that materialize overlapping destination sets can merge
        #: their BFS cost accounting by dict union (repro.mom.parallel).
        self.scan_counts: Dict[int, int] = {}
        # Eager connectivity check (the old builder raised while building
        # the first BFS tree; keep the same failure mode and message).
        first = servers[0]
        reached = self.parents_towards(first)
        missing = [s for s in servers if s != first and reached[s] < 0]
        if missing:
            raise RoutingError(
                f"servers {sorted(missing)} cannot reach server {first}; "
                "topology is disconnected"
            )

    @property
    def size(self) -> int:
        return self._n

    def parents_towards(self, dest: int) -> List[int]:
        """BFS parent array rooted at ``dest`` (-1 = unreached / root)."""
        cached = self._parents.get(dest)
        if cached is not None:
            return cached
        n = self._n
        visited = bytearray(n)
        absorbed = bytearray(len(self._members))
        parents = [-1] * n
        visited[dest] = 1
        order = [dest]
        pop = 0
        scans = 0
        domains_of = self._domains_of
        members = self._members
        while pop < len(order):
            current = order[pop]
            pop += 1
            active = [d for d in domains_of[current] if not absorbed[d]]
            if not active:
                continue
            if len(active) == 1:
                d = active[0]
                absorbed[d] = 1
                candidates: Sequence[int] = members[d]
            else:
                merged: List[int] = []
                for d in active:
                    absorbed[d] = 1
                    merged.extend(members[d])
                merged.sort()
                candidates = merged
            scans += len(candidates)
            for neighbor in candidates:
                if not visited[neighbor]:
                    visited[neighbor] = 1
                    parents[neighbor] = current
                    order.append(neighbor)
        self._parents[dest] = parents
        self.scan_counts[dest] = scans
        if self._trees is not None:
            self._trees.inc()
            assert self._scans is not None
            self._scans.inc(scans)
        return parents

    def distances_from(self, source: int) -> List[int]:
        """BFS hop distance from ``source`` to every server (-1 if
        unreachable).  Cheaper than materializing routes when only path
        lengths are needed (e.g. picking the farthest benchmark target)."""
        parents = self.parents_towards(source)
        dist = [-1] * self._n
        dist[source] = 0
        # parents_towards(source) discovers nodes in BFS order, so a single
        # pass following parent pointers of already-resolved nodes works.
        for server in range(self._n):
            if server == source or parents[server] < 0:
                continue
            hops = 0
            current = server
            while current != source:
                known = dist[current]
                if known >= 0:
                    hops += known
                    break
                current = parents[current]
                hops += 1
            dist[server] = hops
        return dist


class RoutingTable:
    """One server's routing table: destination server -> next-hop server."""

    __slots__ = ("_owner", "_next_hop", "_index")

    def __init__(
        self,
        owner: int,
        next_hop: Optional[Dict[int, int]] = None,
        index: Optional[_RoutingIndex] = None,
    ):
        self._owner = owner
        self._next_hop: Optional[Dict[int, int]] = (
            dict(next_hop) if next_hop is not None else None
        )
        self._index = index

    @property
    def owner(self) -> int:
        return self._owner

    @property
    def index(self) -> Optional[_RoutingIndex]:
        """The shared lazy BFS index (None for explicit-dict tables)."""
        return self._index

    def next_hop(self, dest: int) -> int:
        """The server to forward to on the way to ``dest``.

        Equals ``dest`` itself when it is directly reachable (shares a
        domain with the owner); §5 calls the indirection "completely
        invisible to the clients".
        """
        if dest == self._owner:
            raise RoutingError(f"server {self._owner} routing to itself")
        if self._next_hop is not None:
            try:
                return self._next_hop[dest]
            except KeyError:
                raise RoutingError(
                    f"server {self._owner} has no route to server {dest}"
                ) from None
        index = self._index
        if index is None or not 0 <= dest < index.size:
            raise RoutingError(
                f"server {self._owner} has no route to server {dest}"
            )
        hop = index.parents_towards(dest)[self._owner]
        if hop < 0:
            raise RoutingError(
                f"server {self._owner} has no route to server {dest}"
            )
        return hop

    def destinations(self) -> List[int]:
        if self._next_hop is not None:
            return sorted(self._next_hop)
        assert self._index is not None
        return [s for s in range(self._index.size) if s != self._owner]

    def __repr__(self) -> str:
        routes = (
            len(self._next_hop)
            if self._next_hop is not None
            else self._index.size - 1 if self._index is not None else 0
        )
        return f"RoutingTable(owner={self._owner}, routes={routes})"


def _server_graph(topology: Topology):
    """Adjacency between servers that share at least one domain.

    Retained for diagnostics and tests; the routing builder itself no
    longer materializes the quadratic clique edges.
    """
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(topology.servers)
    for domain in topology.domains:
        members = domain.servers
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                graph.add_edge(first, second)
    return graph


def build_routing_tables(
    topology: Topology, registry: Optional[Registry] = None
) -> Dict[int, RoutingTable]:
    """Build every server's routing table with per-destination BFS trees.

    A BFS is rooted at each *destination*; following BFS parents from any
    source yields the first hop of a shortest path. Ties prefer the lowest
    parent id, making tables deterministic. Trees are materialized lazily,
    one per destination actually routed to, and shared by all tables.

    Raises:
        RoutingError: if some pair of servers is unreachable (the bus
            validation also catches this earlier, as a disconnected domain
            graph).
    """
    index = _RoutingIndex(topology, registry=registry)
    return {
        source: RoutingTable(source, index=index) for source in topology.servers
    }


def hop_distances(topology: Topology, source: int) -> Dict[int, int]:
    """Shortest-path hop count from ``source`` to every server.

    Route-free helper for callers that only need distances (benchmark
    target selection, diagnostics); equals ``len(route(...)) - 1`` for
    every destination without materializing any routing table.
    """
    if source not in topology.servers:
        raise TopologyError(f"unknown server {source}")
    index = _RoutingIndex(topology)
    dist = index.distances_from(source)
    return {server: dist[server] for server in topology.servers}


def route(tables: Dict[int, RoutingTable], source: int, dest: int) -> List[int]:
    """The full server path from ``source`` to ``dest`` (both inclusive).

    Utility for diagnostics and the analytic cost model; the MOM itself
    only ever consults one hop at a time, like an IP router.
    """
    if source == dest:
        return [source]
    path = [source]
    current = source
    for _ in range(len(tables) + 1):
        current = tables[current].next_hop(dest)
        path.append(current)
        if current == dest:
            return path
    raise RoutingError(
        f"routing loop detected between {source} and {dest}: {path}"
    )
