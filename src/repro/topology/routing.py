"""Static routing tables, built at boot (§5).

"The routing table gives, for each destination server, the identifier of
the server to which the message should be sent: the destination server,
within a domain, and a router server otherwise. The routing table is built
statically at boot time [...] based on a shortest path algorithm."

The server adjacency graph connects two servers iff they share a domain
(messages are intra-domain). A breadth-first search per server yields the
next hop towards every destination; on validated (tree-like) topologies
the route at domain granularity is unique, and ties inside a domain are
broken deterministically by preferring the lowest next-hop identifier so
that every boot produces identical tables.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

import networkx as nx

from repro.errors import RoutingError, TopologyError
from repro.topology.domains import Topology


class RoutingTable:
    """One server's routing table: destination server -> next-hop server."""

    __slots__ = ("_owner", "_next_hop")

    def __init__(self, owner: int, next_hop: Dict[int, int]):
        self._owner = owner
        self._next_hop = dict(next_hop)

    @property
    def owner(self) -> int:
        return self._owner

    def next_hop(self, dest: int) -> int:
        """The server to forward to on the way to ``dest``.

        Equals ``dest`` itself when it is directly reachable (shares a
        domain with the owner); §5 calls the indirection "completely
        invisible to the clients".
        """
        if dest == self._owner:
            raise RoutingError(f"server {self._owner} routing to itself")
        try:
            return self._next_hop[dest]
        except KeyError:
            raise RoutingError(
                f"server {self._owner} has no route to server {dest}"
            ) from None

    def destinations(self) -> List[int]:
        return sorted(self._next_hop)

    def __repr__(self) -> str:
        return f"RoutingTable(owner={self._owner}, routes={len(self._next_hop)})"


def _server_graph(topology: Topology) -> nx.Graph:
    """Adjacency between servers that share at least one domain."""
    graph = nx.Graph()
    graph.add_nodes_from(topology.servers)
    for domain in topology.domains:
        members = domain.servers
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                graph.add_edge(first, second)
    return graph


def build_routing_tables(topology: Topology) -> Dict[int, RoutingTable]:
    """Build every server's routing table with per-destination BFS trees.

    A BFS is rooted at each *destination*; following BFS parents from any
    source yields the first hop of a shortest path. Ties prefer the lowest
    parent id, making tables deterministic.

    Raises:
        RoutingError: if some pair of servers is unreachable (the bus
            validation also catches this earlier, as a disconnected domain
            graph).
    """
    graph = _server_graph(topology)
    servers = topology.servers
    # parent_towards[dest][s] = next hop from s towards dest.
    parent_towards: Dict[int, Dict[int, int]] = {}
    for dest in servers:
        parents: Dict[int, int] = {}
        visited = {dest}
        frontier = deque([dest])
        while frontier:
            current = frontier.popleft()
            for neighbor in sorted(graph.neighbors(current)):
                if neighbor not in visited:
                    visited.add(neighbor)
                    parents[neighbor] = current
                    frontier.append(neighbor)
        missing = set(servers) - visited
        if missing:
            raise RoutingError(
                f"servers {sorted(missing)} cannot reach server {dest}; "
                "topology is disconnected"
            )
        parent_towards[dest] = parents

    tables: Dict[int, RoutingTable] = {}
    for source in servers:
        next_hop = {
            dest: parent_towards[dest][source]
            for dest in servers
            if dest != source
        }
        tables[source] = RoutingTable(source, next_hop)
    return tables


def route(tables: Dict[int, RoutingTable], source: int, dest: int) -> List[int]:
    """The full server path from ``source`` to ``dest`` (both inclusive).

    Utility for diagnostics and the analytic cost model; the MOM itself
    only ever consults one hop at a time, like an IP router.
    """
    if source == dest:
        return [source]
    path = [source]
    current = source
    for _ in range(len(tables) + 1):
        current = tables[current].next_hop(dest)
        path.append(current)
        if current == dest:
            return path
    raise RoutingError(
        f"routing loop detected between {source} and {dest}: {path}"
    )
