"""The analytic cost model of §6.2.

The paper's back-of-envelope argument, verbatim in symbols:

- sending a message inside a domain of *s* servers costs ``s²`` (matrix
  maintenance dominates);
- in a tree of domains of depth *d*, fan-out *k*, domain size *s*, the
  total server count is ``n = 1 + (s-1)(k^(d+1) - 1)/(k-1) ≈ s·k^d`` and
  the worst-case message crosses ``2d+1`` domains, costing
  ``C ≈ (2d+1)s²``;
- the bus (depth 1) with ``√n`` domains of ``√n`` servers gives
  ``C ≈ K·n`` — linear;
- a deeper tree with fixed s, k gives ``C ≈ 2s²·ln(n)/ln(k)`` —
  logarithmic, **but** with a constant K′ > K (routing adds cost
  proportional to d), so a tree may lose to a bus at moderate n.

These closed forms drive the Figure-9 ablation and give the expected
crossover point of Figure 11.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.topology.domains import Topology
from repro.topology.routing import build_routing_tables, route


def domain_message_cost(domain_size: int, unit: float = 1.0) -> float:
    """Cost of one message inside a domain of ``domain_size`` servers:
    ``unit × s²`` (§6.2's modelling assumption)."""
    if domain_size < 1:
        raise ConfigurationError(f"domain size must be >= 1, got {domain_size}")
    return unit * domain_size * domain_size


def tree_server_count(domain_size: int, fanout: int, depth: int) -> int:
    """§6.2: ``n = 1 + (s-1)(k^(d+1) - 1)/(k-1)`` servers in a full tree of
    domains (s servers per domain, k children each, depth d)."""
    if domain_size < 2:
        raise ConfigurationError(f"domain size must be >= 2, got {domain_size}")
    if fanout < 2:
        raise ConfigurationError(f"fanout must be >= 2, got {fanout}")
    if depth < 0:
        raise ConfigurationError(f"depth must be >= 0, got {depth}")
    s, k, d = domain_size, fanout, depth
    return 1 + (s - 1) * (k ** (d + 1) - 1) // (k - 1)


def flat_unicast_cost(server_count: int, unit: float = 1.0) -> float:
    """Cost of one message in the undomained MOM: ``unit × n²``."""
    return domain_message_cost(server_count, unit)


def bus_unicast_cost(
    server_count: int, domain_size: int = 0, unit: float = 1.0
) -> float:
    """Worst-case message cost in a bus of √n-ish domains: 3 domain
    traversals of ``s²`` each (leaf → backbone → leaf; d = 1 so 2d+1 = 3).

    With ``s = √n`` this is ``3·unit·n`` — the linear curve of Figure 10.
    """
    size = domain_size or max(2, round(math.sqrt(server_count)))
    return 3.0 * domain_message_cost(size, unit)


def tree_unicast_cost(
    server_count: int, domain_size: int, fanout: int, unit: float = 1.0
) -> float:
    """Worst-case message cost in a tree: ``(2d+1)·s²`` with
    ``d ≈ (ln n - ln s)/ln k`` (§6.2)."""
    if server_count < domain_size:
        return domain_message_cost(server_count, unit)
    if fanout < 2:
        raise ConfigurationError(f"fanout must be >= 2, got {fanout}")
    depth = max(
        0.0,
        (math.log(server_count) - math.log(domain_size)) / math.log(fanout),
    )
    return (2.0 * depth + 1.0) * domain_message_cost(domain_size, unit)


def crossover_point(
    unit: float = 1.0,
    fixed_flat: float = 0.0,
    fixed_bus: float = 0.0,
    limit: int = 100_000,
) -> Optional[int]:
    """Smallest n at which the bus organization beats the flat MOM.

    Compares ``fixed_flat + unit·n²`` against ``fixed_bus + 3·unit·n``
    (taking s = √n exactly). The extra fixed cost of the bus (two more
    routing hops per message) pushes the crossover right — which is why
    Figure 11's curves only cross in the tens of servers.
    """
    for n in range(2, limit + 1):
        flat = fixed_flat + flat_unicast_cost(n, unit)
        domained = fixed_bus + 3.0 * unit * n
        if domained < flat:
            return n
    return None


def topology_unicast_cost(
    topology: Topology, source: int, dest: int, unit: float = 1.0
) -> float:
    """Exact model cost of a unicast on a concrete topology: the sum of
    ``s_d²`` over the domains its route actually traverses.

    Unlike the closed forms above this uses the real routing tables, so the
    partitioning heuristics (:mod:`repro.topology.partition`) can score
    arbitrary decompositions.
    """
    tables = build_routing_tables(topology)
    path = route(tables, source, dest)
    total = 0.0
    for here, there in zip(path, path[1:]):
        domain = topology.shared_domain(here, there)
        total += domain_message_cost(domain.size, unit)
    return total
