"""The hierarchical Daisy baseline [Baldoni–Friedman–van Renesse 1997]
(§2, [17]).

The Daisy keeps vector clocks small the same way the paper keeps matrix
clocks small — by grouping — but on top of *causal broadcast*: nodes are
organized in a chain of groups ("daisies"), each group runs BSS causal
broadcast internally, and gateway nodes belonging to two adjacent groups
re-broadcast traffic from one into the other in their local delivery
order. Relaying in delivery order preserves causality along the chain,
for the same reason the paper's router-servers do.

The crucial cost difference this baseline exposes: a logical unicast
still floods every group on its path (group_size − 1 packets per group),
whereas the matrix-clock MOM sends exactly one packet per domain hop. §2's
verdict — "based on vector clocks, which require causal broadcast and
therefore do not scale" — made measurable.

The implementation reuses the simulation substrate (kernel, network,
processors, cost model) and records an app-level trace so the standard
causality checkers can audit it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.causality.message import Message
from repro.causality.trace import Trace
from repro.clocks.vector import CausalBroadcastClock, VectorStamp
from repro.errors import ConfigurationError
from repro.simulation.costs import CostModel
from repro.simulation.kernel import Processor, Simulator
from repro.simulation.network import ConstantLatency, LatencyModel, Network
from repro.simulation.rng import RngFactory

# R023: the Daisy baseline rides on CausalBroadcastClock (a vector
# clock, not a CausalClock) and is driven by its own harness, never
# booted through make_bus — so it registers no CausalCore.
PROTOCOL_EXEMPT = "causal-broadcast baseline; not bootable via the core registry"


@dataclass(frozen=True)
class _DaisyPacket:
    """One intra-group broadcast carrying an application message."""

    group: int
    stamp: VectorStamp
    app_mid: int
    origin: int
    dest: int
    payload: Any


class DaisyChain:
    """A chain of BSS groups with shared gateway nodes.

    Layout mirrors :func:`repro.topology.builders.daisy`: with k groups of
    size s, global node ids run ``0..k(s-1)``, and node ``g*(s-1)`` ...
    the last node of group g is the first node of group g+1.
    """

    def __init__(
        self,
        group_count: int,
        group_size: int,
        cost_model: Optional[CostModel] = None,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
    ):
        if group_count < 1:
            raise ConfigurationError(f"need >= 1 group, got {group_count}")
        if group_size < 2:
            raise ConfigurationError(f"groups need >= 2 nodes, got {group_size}")
        self.group_count = group_count
        self.group_size = group_size
        self.cost_model = cost_model or CostModel()
        self.sim = Simulator()
        rng = RngFactory(seed)
        self.network = Network(
            self.sim,
            latency=latency or ConstantLatency(self.cost_model.latency_ms),
            rng=rng.stream("network"),
        )
        stride = group_size - 1
        self.node_count = group_count * stride + 1
        # group membership and local indices
        self.groups: List[List[int]] = [
            list(range(g * stride, g * stride + group_size))
            for g in range(group_count)
        ]
        self._clocks: Dict[Tuple[int, int], CausalBroadcastClock] = {}
        self._holdback: Dict[Tuple[int, int], List[_DaisyPacket]] = {}
        self._processors: Dict[int, Processor] = {}
        self._delivered: Dict[int, List[Tuple[int, Any]]] = {}
        self._seen_app: Dict[int, set] = {}
        for node in range(self.node_count):
            self._processors[node] = Processor(self.sim)
            self._delivered[node] = []
            self._seen_app[node] = set()
            self.network.attach(node, self._on_packet_at(node))
        for g, members in enumerate(self.groups):
            for local, node in enumerate(members):
                self._clocks[(node, g)] = CausalBroadcastClock(group_size, local)
                self._holdback[(node, g)] = []
        self._app_mids = 0
        self._handlers: Dict[int, Callable[[int, Any], None]] = {}
        self.trace = Trace()

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------

    def groups_of(self, node: int) -> List[int]:
        return [g for g, members in enumerate(self.groups) if node in members]

    def home_group(self, node: int) -> int:
        return self.groups_of(node)[0]

    def is_gateway(self, node: int) -> bool:
        return len(self.groups_of(node)) >= 2

    def deliveries(self, node: int) -> List[Tuple[int, Any]]:
        """(origin, payload) pairs delivered at ``node``, in order."""
        return list(self._delivered[node])

    def set_handler(self, node: int, handler: Callable[[int, Any], None]) -> None:
        """Install a delivery callback ``fn(origin, payload)`` — the hook
        reactive workloads (ping-pong) use to send follow-ups."""
        self._handlers[node] = handler

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, origin: int, dest: int, payload: Any) -> None:
        """Causally send ``payload`` from ``origin`` to ``dest``.

        The message is broadcast in the origin's group and relayed
        group-by-group by the gateways until it reaches the destination's
        group. Call only before/while the simulation runs.
        """
        if not 0 <= origin < self.node_count or not 0 <= dest < self.node_count:
            raise ConfigurationError(f"unknown node in {origin}->{dest}")
        if origin == dest:
            raise ConfigurationError("origin and dest must differ")
        self._app_mids += 1
        mid = self._app_mids
        self.trace.record_send(Message(mid, origin, dest, payload=payload))
        group = self._route_group(origin, dest)
        self._broadcast(origin, group, mid, origin, dest, payload)

    def _route_group(self, node: int, dest: int) -> int:
        """The group to broadcast in next, moving towards ``dest``."""
        dest_groups = set(self.groups_of(dest))
        here = self.groups_of(node)
        both = dest_groups.intersection(here)
        if both:
            return min(both)
        dest_group = min(dest_groups)
        # groups form a chain: move towards the destination's group index
        candidates = [g for g in here]
        return min(candidates, key=lambda g: abs(g - dest_group))

    def _broadcast(
        self, node: int, group: int, mid: int, origin: int, dest: int, payload: Any
    ) -> None:
        clock = self._clocks[(node, group)]
        stamp = clock.stamp_broadcast()
        packet = _DaisyPacket(group, stamp, mid, origin, dest, payload)
        cost_each = self.cost_model.send_fixed_ms + (
            self.cost_model.ser_ms_per_cell * stamp.wire_cells
        )
        for member in self.groups[group]:
            if member == node:
                continue
            self._processors[node].submit(
                cost_each, self.network.transmit,
                node, member, packet, stamp.wire_cells,
            )
        self.sim.schedule(0.0, self._receive, node, packet)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def _on_packet_at(self, node: int) -> Callable[[int, Any], None]:
        def handler(src: int, packet: _DaisyPacket) -> None:
            self._receive(node, packet)
        return handler

    def _receive(self, node: int, packet: _DaisyPacket) -> None:
        key = (node, packet.group)
        self._holdback[key].append(packet)
        self._drain(node, packet.group)

    def _drain(self, node: int, group: int) -> None:
        key = (node, group)
        clock = self._clocks[key]
        progress = True
        while progress:
            progress = False
            for packet in list(self._holdback[key]):
                if clock.can_deliver(packet.stamp):
                    self._holdback[key].remove(packet)
                    clock.deliver(packet.stamp)
                    self._bss_delivered(node, packet)
                    progress = True

    def _bss_delivered(self, node: int, packet: _DaisyPacket) -> None:
        model = self.cost_model
        cost = (
            model.recv_fixed_ms
            + model.deser_ms_per_cell * packet.stamp.wire_cells
            + model.io_ms_per_cell * self.group_size
        )
        self._processors[node].submit(cost, self._handle_app, node, packet)

    def _handle_app(self, node: int, packet: _DaisyPacket) -> None:
        if packet.app_mid in self._seen_app[node]:
            return
        self._seen_app[node].add(packet.app_mid)
        if node == packet.dest:
            self._delivered[node].append((packet.origin, packet.payload))
            self.trace.record_receive(self.trace.message(packet.app_mid))
            handler = self._handlers.get(node)
            if handler is not None:
                handler(packet.origin, packet.payload)
            return
        if node == packet.origin:
            return
        if self.is_gateway(node) and packet.dest not in self.groups[packet.group]:
            next_group = self._route_group(node, packet.dest)
            if next_group != packet.group:
                self._broadcast(
                    node, next_group,
                    packet.app_mid, packet.origin, packet.dest, packet.payload,
                )

    # ------------------------------------------------------------------
    # Running / accounting
    # ------------------------------------------------------------------

    def run_until_idle(self) -> None:
        self.sim.run_until_idle()

    @property
    def wire_cells(self) -> int:
        return self.network.cells_transmitted

    @property
    def packets_sent(self) -> int:
        return self.network.packets_sent

    def __repr__(self) -> str:
        return (
            f"DaisyChain(groups={self.group_count}, size={self.group_size}, "
            f"t={self.sim.now:.1f}ms)"
        )
