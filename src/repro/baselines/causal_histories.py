"""Explicit causal histories — the clock-free family of §2 ([10]).

Rodrigues–Veríssimo's causal separators build on the observation that
causal delivery needs no logical clock at all: a message can simply carry
the identifiers of the messages that causally precede it, and the receiver
holds it back until those are delivered ("lists of causally linked
messages", §2). Their contribution — pruning those lists at topological
separators — attacks the obvious problem: histories grow with the
computation.

:class:`HistoryClock` implements the family's core behind the standard
:class:`~repro.clocks.base.CausalClock` interface:

- each process accumulates the set of message ids it causally depends on;
- a stamp carries the sender's current dependency set (minus what the
  sender already knows the *destination* has seen — the standard pruning
  that keeps steady-state pairs cheap);
- the receiver delivers when every carried dependency addressed *to it*
  has been delivered, and merges the dependency set.

Correct by construction (it literally ships ≺), and measurably unscalable
in a different dimension than vector/matrix clocks: the *stamp size*
tracks the breadth of the causal past instead of the group size. The
comparison bench shows histories beating matrix stamps on quiet pairs and
losing badly once the communication pattern widens — the trade [10]
navigates with separators, and the paper's domains make moot.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.clocks.base import CausalClock, Stamp
from repro.errors import ClockError


@dataclass(frozen=True)
class _MessageRef:
    """A globally unique message id: (sender, dest, per-pair sequence)."""

    src: int
    dst: int
    seq: int


class HistoryStamp(Stamp):
    """The message's own ref, its (pruned) causal dependency set, and an
    acknowledgment counter: how many of the destination's messages the
    sender has delivered — the feedback that lets the destination prune
    its own future histories."""

    __slots__ = ("_ref", "_deps", "_acked")

    def __init__(self, ref: _MessageRef, deps: FrozenSet[_MessageRef], acked: int):
        self._ref = ref
        self._deps = deps
        self._acked = acked

    @property
    def ref(self) -> _MessageRef:
        return self._ref

    @property
    def deps(self) -> FrozenSet[_MessageRef]:
        return self._deps

    @property
    def acked(self) -> int:
        """Highest contiguous seq of dest→sender messages delivered at the
        sender."""
        return self._acked

    @property
    def sender(self) -> int:
        return self._ref.src

    @property
    def dest(self) -> int:
        return self._ref.dst

    @property
    def wire_cells(self) -> int:
        """Own ref + ack counter + one cell per carried dependency."""
        return 2 + len(self._deps)

    def entry(self, row: int, col: int):
        if (row, col) == (self._ref.src, self._ref.dst):
            return self._ref.seq
        return None

    def __repr__(self) -> str:
        return (
            f"HistoryStamp({self._ref}, deps={len(self._deps)}, "
            f"acked={self._acked})"
        )


class HistoryClock(CausalClock):
    """Causal delivery via explicit dependency sets (no counters beyond
    per-pair sequence numbers for identity)."""

    __slots__ = (
        "_size",
        "_owner",
        "_sent_seq",
        "_delivered",
        "_history",
        "_known_at",
        "_sent_records",
        "_delivered_from",
        "_dirty",
    )

    def __init__(self, size: int, owner: int):
        if size <= 0:
            raise ClockError(f"size must be positive, got {size}")
        if not 0 <= owner < size:
            raise ClockError(f"owner {owner} out of range for size {size}")
        self._size = size
        self._owner = owner
        self._sent_seq: Dict[int, int] = {}
        self._delivered: Set[_MessageRef] = set()
        self._history: Set[_MessageRef] = set()
        # what we know each peer has already seen (for pruning)
        self._known_at: Dict[int, Set[_MessageRef]] = {
            peer: set() for peer in range(size)
        }
        # what each of our own sends carried, until acked (for transitive
        # pruning when the destination acknowledges delivery)
        self._sent_records: Dict[Tuple[int, int], FrozenSet[_MessageRef]] = {}
        # highest contiguous delivered seq per source (the ack we emit)
        self._delivered_from: Dict[int, int] = {}
        self._dirty = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def owner(self) -> int:
        return self._owner

    def prepare_send(self, dest: int) -> HistoryStamp:
        if not 0 <= dest < self._size:
            raise ClockError(f"destination {dest} out of range")
        if dest == self._owner:
            raise ClockError("a process does not stamp messages to itself")
        seq = self._sent_seq.get(dest, 0) + 1
        self._sent_seq[dest] = seq
        ref = _MessageRef(self._owner, dest, seq)
        # Prune only knowledge *proven* by messages received from dest —
        # assuming in-flight sends arrived would let a later message omit
        # an earlier one from its dependency set and break FIFO.
        deps = frozenset(self._history - self._known_at[dest])
        self._history.add(ref)
        self._sent_records[(dest, seq)] = deps
        self._dirty += 1
        acked = self._delivered_from.get(dest, 0)
        return HistoryStamp(ref, deps, acked)

    def can_deliver(self, stamp: Stamp) -> bool:
        if not isinstance(stamp, HistoryStamp):
            raise ClockError(
                f"expected HistoryStamp, got {type(stamp).__name__}"
            )
        me = self._owner
        return all(
            dep in self._delivered
            for dep in stamp.deps
            if dep.dst == me
        )

    def is_duplicate(self, stamp: Stamp) -> bool:
        if not isinstance(stamp, HistoryStamp):
            raise ClockError(
                f"expected HistoryStamp, got {type(stamp).__name__}"
            )
        return stamp.ref in self._delivered

    def deliver(self, stamp: Stamp) -> None:
        if not self.can_deliver(stamp):
            raise ClockError(f"{stamp!r} not deliverable: missing deps")
        assert isinstance(stamp, HistoryStamp)
        sender = stamp.ref.src
        self._delivered.add(stamp.ref)
        self._history.add(stamp.ref)
        self._history |= stamp.deps
        # contiguous-delivery counter per source (the ack we will emit);
        # FIFO is enforced by deps, so delivery per pair is in seq order
        self._delivered_from[sender] = max(
            self._delivered_from.get(sender, 0), stamp.ref.seq
        )
        # the sender has seen everything it shipped us...
        sender_known = self._known_at[sender]
        sender_known.add(stamp.ref)
        sender_known |= stamp.deps
        # ...and, per its ack, everything *we* shipped it up to `acked`,
        # including what those messages carried
        for seq in range(1, stamp.acked + 1):
            record = self._sent_records.pop((sender, seq), None)
            if record is not None:
                sender_known.add(_MessageRef(self._owner, sender, seq))
                sender_known |= record
        self._dirty += 1

    def cell(self, row: int, col: int) -> int:
        """Best-effort counter view: delivered/sent counts per pair."""
        if row == self._owner:
            return self._sent_seq.get(col, 0)
        if col == self._owner:
            return sum(
                1
                for ref in self._delivered
                if ref.src == row and ref.dst == col
            )
        return 0

    def dirty_cells(self) -> int:
        return self._dirty

    def clear_dirty(self) -> None:
        self._dirty = 0

    @property
    def history_size(self) -> int:
        """Accumulated dependency refs — the growth [10] prunes with
        separators."""
        return len(self._history)

    def snapshot(self):
        return {
            "sent_seq": dict(self._sent_seq),
            "delivered": set(self._delivered),
            "history": set(self._history),
            "known_at": {k: set(v) for k, v in self._known_at.items()},
            "sent_records": dict(self._sent_records),
            "delivered_from": dict(self._delivered_from),
        }

    def restore(self, snapshot) -> None:
        self._sent_seq = dict(snapshot["sent_seq"])
        self._delivered = set(snapshot["delivered"])
        self._history = set(snapshot["history"])
        self._known_at = {k: set(v) for k, v in snapshot["known_at"].items()}
        self._sent_records = dict(snapshot["sent_records"])
        self._delivered_from = dict(snapshot["delivered_from"])
        self._dirty = 0

    def __repr__(self) -> str:
        return (
            f"HistoryClock(size={self._size}, owner={self._owner}, "
            f"history={len(self._history)})"
        )
