"""The locality reduction pushed to its limit: per-pair FIFO only.

§2 discusses the FM-class optimizations of Meldal–Sankar–Vera [19]: shrink
the clock by keeping "information about the set of processes with which
[a process] may communicate". Taken to its extreme — each process tracks
only per-partner send/delivery counters — the clock degenerates to
per-channel FIFO, and as the paper notes, "this algorithm does not ensure
the global causal delivery of messages": transitive dependencies through
relays are invisible.

:class:`FifoClock` implements exactly that degenerate clock behind the
standard :class:`~repro.clocks.base.CausalClock` interface, so the
exhaustive model checker (:mod:`repro.causality.exhaustive`) can *prove*
the §2 claim on this implementation: the triangle-relay scenario admits
executions that violate causal delivery (see
``tests/test_local_fifo_baseline.py``), while per-pair FIFO itself always
holds. The stamp is a single integer — maximal wire savings, bought with
the loss of the very property this library is about.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List

from repro.clocks.base import CausalClock, Stamp
from repro.errors import ClockError


class FifoStamp(Stamp):
    """One cell on the wire: the per-(src, dst) sequence number."""

    __slots__ = ("_sender", "_dest", "_seq")

    def __init__(self, sender: int, dest: int, seq: int):
        self._sender = sender
        self._dest = dest
        self._seq = seq

    @property
    def sender(self) -> int:
        return self._sender

    @property
    def dest(self) -> int:
        return self._dest

    @property
    def seq(self) -> int:
        return self._seq

    @property
    def wire_cells(self) -> int:
        return 1

    def entry(self, row: int, col: int):
        if (row, col) == (self._sender, self._dest):
            return self._seq
        return None

    def __repr__(self) -> str:
        return f"FifoStamp({self._sender}->{self._dest} #{self._seq})"


class FifoClock(CausalClock):
    """Per-partner counters only — FIFO channels, no transitive order."""

    __slots__ = ("_size", "_owner", "_sent", "_delivered", "_dirty")

    def __init__(self, size: int, owner: int):
        if size <= 0:
            raise ClockError(f"size must be positive, got {size}")
        if not 0 <= owner < size:
            raise ClockError(f"owner {owner} out of range for size {size}")
        self._size = size
        self._owner = owner
        self._sent: List[int] = [0] * size
        self._delivered: List[int] = [0] * size
        self._dirty = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def owner(self) -> int:
        return self._owner

    def prepare_send(self, dest: int) -> FifoStamp:
        if not 0 <= dest < self._size:
            raise ClockError(f"destination {dest} out of range")
        if dest == self._owner:
            raise ClockError("a process does not stamp messages to itself")
        self._sent[dest] += 1
        self._dirty += 1
        return FifoStamp(self._owner, dest, self._sent[dest])

    def can_deliver(self, stamp: Stamp) -> bool:
        if not isinstance(stamp, FifoStamp):
            raise ClockError(f"expected FifoStamp, got {type(stamp).__name__}")
        return stamp.seq == self._delivered[stamp.sender] + 1

    def is_duplicate(self, stamp: Stamp) -> bool:
        if not isinstance(stamp, FifoStamp):
            raise ClockError(f"expected FifoStamp, got {type(stamp).__name__}")
        return stamp.seq <= self._delivered[stamp.sender]

    def deliver(self, stamp: Stamp) -> None:
        if not self.can_deliver(stamp):
            raise ClockError(f"{stamp!r} not deliverable (FIFO gap)")
        assert isinstance(stamp, FifoStamp)
        self._delivered[stamp.sender] += 1
        self._dirty += 1

    def cell(self, row: int, col: int) -> int:
        if row == self._owner:
            return self._sent[col]
        if col == self._owner:
            return self._delivered[row]
        return 0  # no knowledge about third parties — the whole point

    def dirty_cells(self) -> int:
        return self._dirty

    def clear_dirty(self) -> None:
        self._dirty = 0

    def snapshot(self):
        return {"sent": list(self._sent), "delivered": list(self._delivered)}

    def restore(self, snapshot) -> None:
        if len(snapshot["sent"]) != self._size:
            raise ClockError("snapshot shape does not match clock size")
        self._sent = list(snapshot["sent"])
        self._delivered = list(snapshot["delivered"])
        self._dirty = 0

    def __repr__(self) -> str:
        return f"FifoClock(size={self._size}, owner={self._owner})"
