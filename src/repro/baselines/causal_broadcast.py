"""Vector-clock causal broadcast (Birman–Schiper–Stephenson) as a full
messaging substrate — the §2 baseline.

Every payload is broadcast to the whole group; receivers run the BSS
deliverability test against their vector of delivered-counts and hold
early messages back. Point-to-point semantics are emulated the way the
broadcast-based systems do it: the payload carries its intended
destination and other members discard it *after* clock processing — they
cannot skip the processing, because their clocks must advance for the
causal order to work. That obligation is precisely why the paper says
these solutions "require causal broadcast and therefore do not scale"
(§2): one logical unicast costs n-1 packets and n-1 clock updates.

The implementation runs on the same simulator, network, processor and
cost-model machinery as the MOM, so wire cells, disk cells and simulated
milliseconds are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.clocks.vector import CausalBroadcastClock, VectorStamp
from repro.errors import ConfigurationError
from repro.simulation.costs import CostModel
from repro.simulation.kernel import Processor, Simulator
from repro.simulation.network import ConstantLatency, LatencyModel, Network
from repro.simulation.rng import RngFactory

# R023: BSS broadcast runs on CausalBroadcastClock (a vector clock, not
# a CausalClock) under its own group harness — it is never selected by
# name through make_bus, so it registers no CausalCore.
PROTOCOL_EXEMPT = "causal-broadcast baseline; not bootable via the core registry"


@dataclass(frozen=True)
class _BroadcastPacket:
    stamp: VectorStamp
    dest: Optional[int]
    payload: Any


class BroadcastNode:
    """One member of a causal-broadcast group."""

    def __init__(
        self,
        group: "BroadcastGroup",
        node_id: int,
        on_deliver: Callable[[int, Any], None],
    ):
        self._group = group
        self.node_id = node_id
        self._on_deliver = on_deliver
        self._clock = CausalBroadcastClock(group.size, node_id)
        self._holdback: List[_BroadcastPacket] = []
        self.processor = Processor(group.sim)
        group.network.attach(node_id, self._on_packet)

    def broadcast(self, payload: Any, dest: Optional[int] = None) -> None:
        """Causally broadcast ``payload`` to the group.

        ``dest`` marks the member the payload is *for* (unicast emulation);
        ``None`` addresses everyone. Either way all n-1 members receive and
        clock-process the packet.
        """
        stamp = self._clock.stamp_broadcast()
        packet = _BroadcastPacket(stamp, dest, payload)
        cost_each = self._group.cost_model.send_fixed_ms + (
            self._group.cost_model.ser_ms_per_cell * stamp.wire_cells
        )
        for member in range(self._group.size):
            if member == self.node_id:
                continue
            self.processor.submit(
                cost_each, self._group.network.transmit,
                self.node_id, member, packet, stamp.wire_cells,
            )
        # the sender's own copy follows the same delivery rule, locally
        self._group.sim.schedule(0.0, self._on_packet, self.node_id, packet)

    def _on_packet(self, src: int, packet: _BroadcastPacket) -> None:
        self._holdback.append(packet)
        self._drain()

    def _drain(self) -> None:
        progress = True
        while progress:
            progress = False
            for packet in list(self._holdback):
                if self._clock.can_deliver(packet.stamp):
                    self._holdback.remove(packet)
                    self._deliver(packet)
                    progress = True

    def _deliver(self, packet: _BroadcastPacket) -> None:
        self._clock.deliver(packet.stamp)
        model = self._group.cost_model
        cost = (
            model.recv_fixed_ms
            + model.deser_ms_per_cell * packet.stamp.wire_cells
            + model.io_ms_per_cell * self._group.size  # persist the vector
        )
        self._group.persisted_cells += self._group.size
        if packet.dest is None or packet.dest == self.node_id:
            self.processor.submit(
                cost, self._on_deliver, packet.stamp.sender, packet.payload
            )
        else:
            # not for us: the clock work was still mandatory; charge it
            self.processor.submit(cost, lambda: None)

    @property
    def heldback(self) -> int:
        return len(self._holdback)


class BroadcastGroup:
    """A group of BSS nodes sharing one simulator and network."""

    def __init__(
        self,
        size: int,
        cost_model: Optional[CostModel] = None,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
    ):
        if size < 2:
            raise ConfigurationError(f"group needs >= 2 members, got {size}")
        self.size = size
        self.cost_model = cost_model or CostModel()
        self.sim = Simulator()
        rng = RngFactory(seed)
        self.network = Network(
            self.sim,
            latency=latency or ConstantLatency(self.cost_model.latency_ms),
            rng=rng.stream("network"),
        )
        self.persisted_cells = 0
        self.nodes: List[BroadcastNode] = []

    def add_node(self, on_deliver: Callable[[int, Any], None]) -> BroadcastNode:
        """Register the next member (call exactly ``size`` times)."""
        if len(self.nodes) >= self.size:
            raise ConfigurationError("group is already fully populated")
        node = BroadcastNode(self, len(self.nodes), on_deliver)
        self.nodes.append(node)
        return node

    def run_until_idle(self) -> None:
        if len(self.nodes) != self.size:
            raise ConfigurationError(
                f"populate all {self.size} members before running "
                f"(have {len(self.nodes)})"
            )
        self.sim.run_until_idle()

    @property
    def wire_cells(self) -> int:
        return self.network.cells_transmitted

    @property
    def packets_sent(self) -> int:
        return self.network.packets_sent

    def __repr__(self) -> str:
        return f"BroadcastGroup(size={self.size}, t={self.sim.now:.1f}ms)"
