"""Related-work baselines (§2).

The solutions the paper positions itself against fall in two families:

- **vector clocks + causal broadcast** — the substrate of the hierarchical
  cluster protocol [Adly–Nagi–Bacon 1993] and the hierarchical Daisy
  [Baldoni–Friedman–van Renesse 1997]. Every message is broadcast to the
  whole group and delivered through the Birman–Schiper–Stephenson rule.
  :mod:`repro.baselines.causal_broadcast` implements that substrate on the
  same simulator, so its costs are directly comparable with the
  matrix-clock MOM's: n-1 packets on the wire per payload and an O(n)
  stamp per packet, versus one routed message with per-domain stamps.

- **matrix clocks with reduced stamps** — the Updates algorithm of
  Appendix A (implemented in :mod:`repro.clocks.updates`) and the
  restriction-based approaches; the ablation benches cover those.

- **explicit causal histories** — the clock-free family of
  Rodrigues–Veríssimo [10]: messages carry the identifiers of their
  causal predecessors, pruned via acknowledgments
  (:mod:`repro.baselines.causal_histories`). Exact like matrix clocks,
  but its wire cost tracks the breadth of the causal past instead of the
  group size — the trade [10] manages with separators and the paper's
  domains dissolve.

- **locality-restricted clocks** — the FM-class reduction of
  Meldal–Sankar–Vera [19], pushed to per-pair FIFO counters in
  :mod:`repro.baselines.local_fifo`; the exhaustive checker proves §2's
  verdict that it "does not ensure the global causal delivery of
  messages". It can also be booted into the MOM itself
  (``clock_algorithm="fifo"``) for end-to-end demonstrations.

``benchmarks/test_baseline_broadcast.py`` puts the families side by side.
"""

from repro.baselines.causal_broadcast import (
    BroadcastGroup,
    BroadcastNode,
)
from repro.baselines.daisy import DaisyChain
from repro.baselines.local_fifo import FifoClock, FifoStamp
from repro.baselines.causal_histories import HistoryClock, HistoryStamp

__all__ = [
    "BroadcastGroup",
    "BroadcastNode",
    "DaisyChain",
    "FifoClock",
    "FifoStamp",
    "HistoryClock",
    "HistoryStamp",
]
