"""The rule catalogue, R001–R017 (see ``docs/analysis.md`` for rationale).

Each rule guards one invariant the PR-1 hot-path rewrite (and the paper's
protocol itself) depends on:

- **R001** — clock internals (``_buf``, ``_log``, ``_image`` and the
  Updates-clock buffers) are mutated only inside ``repro/clocks/``. The
  copy-on-write stamp discipline means an out-of-module write can corrupt
  a stamp that is already on the wire.
- **R002** — no ambient nondeterminism (``random.*`` module functions,
  unseeded ``random.Random()``, ``time.time()``, ``datetime.now()``,
  ``os.urandom``) outside ``repro/simulation/rng.py``. Every random draw
  must flow from the seeded per-stream factory or runs stop being
  bit-for-bit reproducible.
- **R003** — no iteration over bare ``set`` expressions or ``.keys()``
  views in ``repro/simulation/`` and ``repro/mom/``: hash order feeding
  event scheduling or message fan-out silently breaks determinism.
- **R004** — no ``==``/``!=`` on virtual-timestamp expressions; simulated
  times are floats and exact equality is a latent flake.
- **R005** — no bare ``except`` and no swallowed protocol errors
  (``ClockError``/``ReproError`` caught without re-raising): a suppressed
  clock error converts a crash into a silent causality violation.
- **R006** — layered imports only: a package may import packages at or
  below its own layer (``errors < simulation < clocks < causality <
  topology < baselines < mom < pubsub < obs < bench < analysis``).

R007–R012 are the whole-program/flow-sensitive tier added with the
CFG/call-graph/dataflow engine (:mod:`repro.analysis.cfg`,
:mod:`repro.analysis.callgraph`, :mod:`repro.analysis.dataflow`,
:mod:`repro.analysis.effects`):

- **R007** — nondeterminism taint: a value drawn from an
  ``RngFactory`` stream must never flow (through assignments and calls,
  interprocedurally) into protocol-visible state outside the
  ``simulation`` layer. Determinism of protocol state given message
  order is what makes runs replayable.
- **R008** — observation purity: no function reachable over the call
  graph from a ``repro.obs``/``repro.metrics`` hook may mutate
  ``mom``/``clocks`` protocol state — the static form of the
  "bit-identical with tracer/accounting on" claim.
- **R009** — guard discipline: every hook call through a
  ``_tracer``/accounting handle must be dominated by an
  ``is not None`` check (CFG must-facts, plus ``x and x.m()`` /
  ternary lexical guards), so the no-observer fast path stays a
  pointer test.
- **R010** — transaction pairing: a ``._pending_commits.add(...)``
  must reach a ``.discard()``/``.clear()`` or a processor hand-off
  (``.submit()``/``.schedule()``) on **every** CFG path to the normal
  exit, exception edges included.
- **R011** — persistence API: the store internals ``_data`` /
  ``writes`` / ``cells_written`` are written only inside
  ``repro/mom/persistence.py``; everyone else goes through
  ``save()``/``put_entry()``/``delete_entry()`` so recovery replays
  see every write.
- **R012** — hold-back leaks: a hold-back insertion whose only route
  to the normal exit crosses an exception edge without a matching
  ``remove()``/``clear()`` leaves a zombie entry that blocks the
  domain's delivery queue forever.

R013–R017 are the concurrency tier added with the fork/pipe
happens-before model (:mod:`repro.analysis.concurrency`) for the PR-6
sharded kernel:

- **R013** — fork-boundary lost updates: a write, in worker-reachable
  code, to module-level state that the parent process reads. Fork is a
  one-way snapshot, so the write silently vanishes — results must ship
  through the worker pipe.
- **R014** — pipe pickle-safety: every type statically inferable as
  crossing a worker pipe (send payloads, protocol stamps) must be
  picklable — no lambdas, locks, open files, generators, sockets or
  bound methods in shipped fields.
- **R015** — epoch discipline: every *rebinding* of a clock change-log
  (``…._log = …``) must write the matching ``_log_epoch`` on all CFG
  paths; in-place appends preserve identity and are exempt. Readers
  dedupe log entries by (epoch, index), so a silent swap replays or
  loses updates.
- **R016** — coordinator flush discipline: on every CFG path, pending
  cross-shard arrivals are flushed into the grant batch before an LBTS
  ``("grant", …)`` message is sent — the bit-identity linchpin of the
  conservative sync protocol.
- **R017** — shard-scoped RNG streams: a stream name constructed in
  worker-reachable code must embed the shard id (constant names would
  give every worker an identical stream), unless lexically guarded by
  the sequential-only ``shard is None`` branch.

R018–R023 are the plug-in contract tier guarding the
:class:`~repro.protocol.core.CausalCore` boundary; they live in
:mod:`repro.analysis.contract` and are appended to ``ALL_RULES`` at the
bottom of this module.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import Project
from repro.analysis.cfg import CFG, CFGNode, build_cfg
from repro.analysis.concurrency import fork_model
from repro.analysis.dataflow import (
    expr_chain,
    guard_facts_from_test,
    non_none_facts,
    solve_forward,
)
from repro.analysis.effects import EffectEngine, stream_call_sites
from repro.analysis.lint import Diagnostic, LintContext
from repro.analysis.rulebase import (
    MUTATOR_METHODS as _MUTATOR_METHODS,
    ProjectRule,
    Rule,
    effect_engine,
    function_defs as _function_defs,
    package_of as _package_of,
)

# Attributes that are private to the clock implementations: the flat
# stamp/clock buffers, the change log, the persistence image/journal and
# the per-sender merge positions. Reading them elsewhere is tolerated
# (diagnostics, the sanitizer); *mutating* them outside repro/clocks is
# how a published stamp gets corrupted.
CLOCK_INTERNALS = frozenset(
    {
        "_buf",
        "_log",
        "_image",
        "_value",
        "_cstate",
        "_origin",
        "_sent_state",
        "_changes",
        "_journal",
        "_journal_sent",
        "_merged",
        "_shared",
    }
)

# Layer order for R006; a package may import itself and anything below.
# ``protocol`` sits between ``baselines`` and ``mom``: the built-in cores
# wrap clock classes from ``clocks`` and ``baselines``, and the MOM
# resolves everything through the core registry.
LAYERS: Dict[str, int] = {
    "errors": 0,
    "metrics": 1,
    "simulation": 2,
    "clocks": 3,
    "causality": 4,
    "topology": 5,
    "baselines": 6,
    "protocol": 7,
    "mom": 8,
    "pubsub": 9,
    "obs": 10,
    "bench": 11,
    "analysis": 12,
}

_TIMELIKE_NAMES = frozenset(
    {
        "now",
        "_now",
        "sent_at",
        "started_at",
        "_round_started",
        "busy_until",
        "_busy_until",
        "virtual_time",
        "vtime",
        "send_time",
        "recv_time",
        "delivery_time",
        "timestamp",
    }
)

_PROTOCOL_ERRORS = frozenset({"ClockError", "ReproError", "SanitizerViolation"})
_BROAD_ERRORS = frozenset({"Exception", "BaseException"})

_DATETIME_NOW = frozenset({"now", "utcnow", "today", "fromtimestamp"})


class ClockInternalMutation(Rule):
    """R001: clock internals are written only inside ``repro/clocks/``."""

    rule_id = "R001"
    title = "mutation of clock internals outside repro/clocks/"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.module is not None and ctx.module.startswith("repro.clocks"):
            return
        for node in ast.walk(tree):
            yield from self._check_node(node, ctx)

    def _check_node(self, node: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
                and isinstance(func.value, ast.Attribute)
                and func.value.attr in CLOCK_INTERNALS
            ):
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    f"call mutates clock internal '.{func.value.attr}' via "
                    f".{func.attr}(); clock state may only change inside "
                    "repro/clocks/ (COW stamps alias these buffers)",
                )
            return
        for target in targets:
            internal = self._internal_target(target)
            if internal is not None:
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    f"assignment to clock internal '.{internal}' outside "
                    "repro/clocks/; published stamps share these buffers "
                    "copy-on-write",
                )

    @staticmethod
    def _internal_target(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Attribute) and target.attr in CLOCK_INTERNALS:
            return target.attr
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and target.value.attr in CLOCK_INTERNALS
        ):
            return target.value.attr
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                found = ClockInternalMutation._internal_target(element)
                if found is not None:
                    return found
        return None


class AmbientNondeterminism(Rule):
    """R002: nondeterministic sources only inside ``repro/simulation/rng.py``."""

    rule_id = "R002"
    title = "ambient nondeterminism outside simulation/rng.py"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.module == "repro.simulation.rng":
            return
        random_mods: Set[str] = set()
        time_mods: Set[str] = set()
        datetime_mods: Set[str] = set()
        os_mods: Set[str] = set()
        # name -> original, for `from random import randint as r`
        from_random: Dict[str, str] = {}
        from_time: Dict[str, str] = {}
        from_datetime: Dict[str, str] = {}
        from_os: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        random_mods.add(bound)
                    elif alias.name == "time":
                        time_mods.add(bound)
                    elif alias.name == "datetime":
                        datetime_mods.add(bound)
                    elif alias.name == "os":
                        os_mods.add(bound)
            elif isinstance(node, ast.ImportFrom):
                table = {
                    "random": from_random,
                    "time": from_time,
                    "datetime": from_datetime,
                    "os": from_os,
                }.get(node.module or "")
                if table is not None:
                    for alias in node.names:
                        table[alias.asname or alias.name] = alias.name

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._forbidden_call(
                node,
                random_mods,
                time_mods,
                datetime_mods,
                os_mods,
                from_random,
                from_time,
                from_datetime,
                from_os,
            )
            if message is not None:
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    message
                    + "; draw from the seeded RngFactory stream instead "
                    "(repro/simulation/rng.py)",
                )

    @staticmethod
    def _forbidden_call(
        node: ast.Call,
        random_mods: Set[str],
        time_mods: Set[str],
        datetime_mods: Set[str],
        os_mods: Set[str],
        from_random: Dict[str, str],
        from_time: Dict[str, str],
        from_datetime: Dict[str, str],
        from_os: Dict[str, str],
    ) -> Optional[str]:
        func = node.func
        unseeded = not node.args and not node.keywords
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in random_mods:
                    if func.attr == "Random":
                        if unseeded:
                            return "unseeded random.Random() is nondeterministic"
                        return None
                    if func.attr == "SystemRandom":
                        return "random.SystemRandom() is nondeterministic"
                    return (
                        f"module-level random.{func.attr}() uses the global, "
                        "unseeded RNG"
                    )
                if base.id in time_mods and func.attr in {"time", "time_ns"}:
                    return f"wall-clock time.{func.attr}() in simulated code"
                if base.id in os_mods and func.attr == "urandom":
                    return "os.urandom() is nondeterministic"
                if (
                    base.id in from_datetime
                    and from_datetime[base.id] in {"datetime", "date"}
                    and func.attr in _DATETIME_NOW
                ):
                    return f"wall-clock datetime {func.attr}()"
            elif isinstance(base, ast.Attribute) and isinstance(
                base.value, ast.Name
            ):
                if (
                    base.value.id in datetime_mods
                    and base.attr in {"datetime", "date"}
                    and func.attr in _DATETIME_NOW
                ):
                    return f"wall-clock datetime.{base.attr}.{func.attr}()"
        elif isinstance(func, ast.Name):
            origin = from_random.get(func.id)
            if origin is not None:
                if origin == "Random":
                    if unseeded:
                        return "unseeded Random() is nondeterministic"
                    return None
                if origin == "SystemRandom":
                    return "SystemRandom() is nondeterministic"
                return f"module-level random.{origin}() uses the global RNG"
            if from_time.get(func.id) in {"time", "time_ns"}:
                return "wall-clock time.time() in simulated code"
            if from_os.get(func.id) == "urandom":
                return "os.urandom() is nondeterministic"
        return None


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _is_unordered_iterable(node: ast.expr) -> Optional[str]:
    if _is_set_expression(node):
        return "a bare set expression"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
    ):
        return "a dict .keys() view"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"list", "tuple"}
        and len(node.args) == 1
        and _is_set_expression(node.args[0])
    ):
        return "a set converted to a sequence"
    return None


class UnorderedIteration(Rule):
    """R003: no hash-ordered iteration feeding scheduling or fan-out."""

    rule_id = "R003"
    title = "iteration over unordered set/keys() in simulation/ or mom/"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        package = _package_of(ctx.module)
        if package is not None and package not in {"simulation", "mom"}:
            return
        iters: List[ast.expr] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
        for expr in iters:
            what = _is_unordered_iterable(expr)
            if what is not None:
                yield ctx.diagnostic(
                    self.rule_id,
                    expr,
                    f"iterating {what}: hash order is not stable run to run; "
                    "sort it (sorted(...)) or use an insertion-ordered "
                    "structure before it feeds event scheduling or fan-out",
                )


def _timelike(node: ast.expr) -> Optional[str]:
    name: Optional[str] = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    if name is None:
        return None
    if name in _TIMELIKE_NAMES or name.endswith("_at"):
        return name
    return None


class FloatTimestampEquality(Rule):
    """R004: no exact equality on virtual-timestamp expressions."""

    rule_id = "R004"
    title = "float equality on virtual timestamps"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[index], operands[index + 1]):
                    name = _timelike(side)
                    if name is not None:
                        yield ctx.diagnostic(
                            self.rule_id,
                            node,
                            f"'{name}' looks like a virtual timestamp; exact "
                            "float equality is a latent flake — compare with "
                            "<=/>= or an explicit tolerance",
                        )
                        break


class SwallowedProtocolError(Rule):
    """R005: no bare ``except``; protocol errors must not be swallowed."""

    rule_id = "R005"
    title = "bare except / swallowed protocol error"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    "bare 'except:' hides protocol violations (and "
                    "KeyboardInterrupt); name the exceptions you mean",
                )
                continue
            caught = self._caught_names(node.type)
            # A handler that re-raises, or returns a value (a CLI boundary
            # converting the error into an exit status), handles the error.
            handled = any(
                isinstance(inner, ast.Raise)
                or (isinstance(inner, ast.Return) and inner.value is not None)
                for inner in ast.walk(node)
            )
            if caught & _PROTOCOL_ERRORS and not handled:
                name = sorted(caught & _PROTOCOL_ERRORS)[0]
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    f"'{name}' caught and swallowed: a suppressed protocol "
                    "error turns a crash into a silent causality violation; "
                    "re-raise or handle explicitly (# noqa: R005 if truly "
                    "intended)",
                )
            elif caught & _BROAD_ERRORS and self._is_trivial_body(node.body):
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    "broad exception swallowed with an empty handler; "
                    "narrow the type or handle the error",
                )

    @staticmethod
    def _caught_names(expr: ast.expr) -> Set[str]:
        names: Set[str] = set()
        nodes = expr.elts if isinstance(expr, ast.Tuple) else [expr]
        for node in nodes:
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
        return names

    @staticmethod
    def _is_trivial_body(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue
            return False
        return True


class LayeredImports(Rule):
    """R006: a package only imports packages at or below its own layer."""

    rule_id = "R006"
    title = "forbidden cross-layer import"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        package = _package_of(ctx.module)
        if package is None or package not in LAYERS:
            return
        layer = LAYERS[package]
        type_checking_only = self._type_checking_imports(tree)
        for node in ast.walk(tree):
            if node in type_checking_only:
                continue
            for target, site in self._imports(node):
                if target == "repro":
                    yield ctx.diagnostic(
                        self.rule_id,
                        site,
                        "import of the 'repro' root aggregator from inside a "
                        "layer package; import the specific subpackage",
                    )
                    continue
                imported = _package_of(target + ".x")
                if imported is None or imported not in LAYERS:
                    continue
                if LAYERS[imported] > layer:
                    yield ctx.diagnostic(
                        self.rule_id,
                        site,
                        f"'{package}' (layer {layer}) imports "
                        f"'{imported}' (layer {LAYERS[imported]}); the layer "
                        "order is "
                        + " < ".join(
                            sorted(LAYERS, key=LAYERS.__getitem__)
                        ),
                    )

    @staticmethod
    def _type_checking_imports(tree: ast.AST) -> Set[ast.AST]:
        """Imports under ``if TYPE_CHECKING:`` — annotation-only, no
        runtime dependency, so no layering edge."""
        guarded: Set[ast.AST] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
                isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
            )
            if not is_tc:
                continue
            for stmt in node.body:
                for inner in ast.walk(stmt):
                    if isinstance(inner, (ast.Import, ast.ImportFrom)):
                        guarded.add(inner)
        return guarded

    @staticmethod
    def _imports(node: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield alias.name, node
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = node.module or ""
            if module == "repro" or module.startswith("repro."):
                yield module, node


# ----------------------------------------------------------------------
# Whole-program tier (R007–R012)
# ----------------------------------------------------------------------


#: Attribute-chain tails that carry an optional observation handle.
HOOK_HANDLES = frozenset(
    {
        "_tracer",
        "tracer",
        "_sacct",
        "sacct",
        "acct",
        "_acct",
        "_telemetry",
        "telemetry",
    }
)

#: Modules that *are* the observation layer (hook targets for R008).
#: The ``repro.obs`` prefix closes over every submodule, including the
#: offline read surfaces (``repro.obs.replay``, ``repro.obs.diff``) that
#: reconstruct protocol state from dumps — they may read anything but
#: must never mutate live protocol state.
_OBSERVATION_PREFIXES = (
    "repro.obs",
    "repro.metrics",
    "repro.mom.accounting",
    "repro.simulation.telemetry",
)


def _is_observation_module(module: Optional[str]) -> bool:
    if not module:
        return False
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in _OBSERVATION_PREFIXES
    )


def _owned_exprs(node: CFGNode) -> List[ast.AST]:
    """The expressions *evaluated at* a CFG node — for compound
    statements only the header (test / iterator / context managers),
    never the nested body, which has CFG nodes of its own."""
    stmt = node.stmt
    if stmt is None or node.kind == "finally":
        return []
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(
        stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return []
    return [stmt]


def _calls_with_lexical_facts(
    root: ast.AST,
) -> List[Tuple[ast.Call, FrozenSet[str]]]:
    """Every call under ``root`` paired with the chains proven
    non-``None`` *lexically* at that call: the short-circuit prefix of an
    ``and``/``or`` chain, or the test of an enclosing ternary."""
    found: List[Tuple[ast.Call, FrozenSet[str]]] = []

    def visit(node: ast.AST, facts: FrozenSet[str]) -> None:
        if isinstance(
            node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # body runs later; facts do not transfer
        if isinstance(node, ast.IfExp):
            visit(node.test, facts)
            visit(node.body, facts | guard_facts_from_test(node.test, True))
            visit(node.orelse, facts | guard_facts_from_test(node.test, False))
            return
        if isinstance(node, ast.BoolOp):
            acc = facts
            for value in node.values:
                visit(value, acc)
                acc = acc | guard_facts_from_test(
                    value, isinstance(node.op, ast.And)
                )
            return
        if isinstance(node, ast.Call):
            found.append((node, facts))
        for child in ast.iter_child_nodes(node):
            visit(child, facts)

    visit(root, frozenset())
    return found


class NondeterminismTaint(ProjectRule):
    """R007: RngFactory stream values stay inside the simulation layer."""

    rule_id = "R007"
    title = "rng stream value flows into protocol state"

    def check_project(
        self, project: Project, contexts: Dict[str, LintContext]
    ) -> Iterator[Diagnostic]:
        engine = effect_engine(project)
        for hit in engine.rng_sink_hits():
            ctx = contexts.get(hit.fn.module)
            if ctx is None:
                continue
            via = f" through {hit.via}" if hit.via else ""
            yield ctx.diagnostic(
                self.rule_id,
                hit.node,
                f"value derived from an RngFactory stream reaches protocol "
                f"state ({hit.target}){via}; randomness may only shape the "
                "simulation/network layer — protocol state must be a "
                "deterministic function of message order",
            )


class ObservationPurity(ProjectRule):
    """R008: nothing reachable from an obs/metrics hook mutates
    protocol state."""

    rule_id = "R008"
    title = "obs/metrics hook path mutates protocol state"

    def check_project(
        self, project: Project, contexts: Dict[str, LintContext]
    ) -> Iterator[Diagnostic]:
        engine = effect_engine(project)
        engine.solve()
        roots = self._hook_roots(project)
        parent = project.reachable_from(sorted(roots))
        for qualname in sorted(parent):
            summary = engine.summaries.get(qualname)
            if summary is None or not summary.mutates_protocol:
                continue
            fn = project.functions[qualname]
            ctx = contexts.get(fn.module)
            if ctx is None:
                continue
            chain = " -> ".join(
                name.rsplit(".", 1)[-1]
                for name in project.path_to(parent, qualname)
            )
            for site in summary.mutates_protocol:
                yield ctx.diagnostic(
                    self.rule_id,
                    site.node,
                    f"{site.description}; reachable from an obs/metrics hook "
                    f"(call path: {chain}) — observation must not perturb "
                    "protocol state, or runs stop being bit-identical with "
                    "tracing/accounting enabled",
                )

    @staticmethod
    def _hook_roots(project: Project) -> Set[str]:
        """Observation-layer functions invoked from protocol code: the
        resolved targets of handle call sites plus registered metric
        collectors. Any protocol→observation call edge is a hook."""
        roots: Set[str] = set()
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            if not fn.module.startswith("repro.") or _is_observation_module(
                fn.module
            ):
                continue
            env = project.local_env(fn)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr == "add_collector":
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            probe = ast.Call(func=arg, args=[], keywords=[])
                            for target in project.resolve_call(probe, fn, env):
                                roots.add(target.qualname)
                    continue
                candidates = project.resolve_call(node, fn, env)
                observation = [
                    c for c in candidates if _is_observation_module(c.module)
                ]
                if observation:
                    roots.update(c.qualname for c in observation)
                    continue
                if candidates or not isinstance(func, ast.Attribute):
                    continue
                chain = expr_chain(func.value)
                if chain is not None and chain.split(".")[-1] in HOOK_HANDLES:
                    # unresolved handle call: match by method name
                    roots.update(
                        f.qualname
                        for f in project.functions_by_name.get(func.attr, [])
                        if _is_observation_module(f.module)
                    )
        return roots


_GUARD_SCOPE = frozenset(
    {
        "simulation",
        "clocks",
        "causality",
        "topology",
        "baselines",
        "protocol",
        "mom",
        "pubsub",
    }
)


class GuardDiscipline(Rule):
    """R009: hook handle calls are dominated by ``is not None``."""

    rule_id = "R009"
    title = "hook call not dominated by an 'is not None' guard"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        package = _package_of(ctx.module)
        if package is None or package not in _GUARD_SCOPE:
            return
        for func in _function_defs(tree):
            graph = build_cfg(func)
            facts = non_none_facts(graph)
            for node in graph.nodes:
                owned = _owned_exprs(node)
                if not owned:
                    continue
                in_fact = facts.get(node.index)
                if in_fact is None:
                    continue  # unreachable
                for expr in owned:
                    for call, lexical in _calls_with_lexical_facts(expr):
                        if not isinstance(call.func, ast.Attribute):
                            continue
                        chain = expr_chain(call.func.value)
                        if chain is None:
                            continue
                        if chain.split(".")[-1] not in HOOK_HANDLES:
                            continue
                        if chain in in_fact or chain in lexical:
                            continue
                        yield ctx.diagnostic(
                            self.rule_id,
                            call,
                            f"hook call through '{chain}' is not dominated "
                            f"by a '{chain} is not None' guard; the "
                            "no-observer configuration must skip hook "
                            "dispatch entirely",
                        )


def _attr_call(expr: ast.AST) -> Optional[Tuple[str, str]]:
    """``(receiver_chain, method)`` for ``a.b.m(...)`` calls."""
    if not isinstance(expr, ast.Call) or not isinstance(expr.func, ast.Attribute):
        return None
    chain = expr_chain(expr.func.value)
    if chain is None:
        return None
    return chain, expr.func.attr


_TXN_CHAIN_TAIL = "_pending_commits"
_TXN_CLOSERS = frozenset({"discard", "remove", "clear"})
_HANDOFF_METHODS = frozenset({"submit", "schedule", "call_later", "defer"})
_HOLDBACK_TAILS = ("_holdback", "holdback")
_HOLDBACK_INSERTS = frozenset({"add", "insert", "append"})
_HOLDBACK_REMOVALS = frozenset({"remove", "clear", "pop", "discard"})


def _txn_scope(module: Optional[str]) -> bool:
    return _package_of(module) in {"mom", "pubsub"}


class TransactionPairing(Rule):
    """R010: every opened commit transaction closes or hands off on
    every CFG path."""

    rule_id = "R010"
    title = "commit transaction opened but not closed on some path"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        if not _txn_scope(ctx.module):
            return
        for func in _function_defs(tree):
            graph = build_cfg(func)
            begins: List[Tuple[int, ast.Call]] = []
            closers: Set[int] = set()
            for node in graph.nodes:
                for expr in _owned_exprs(node):
                    for sub in ast.walk(expr):
                        described = _attr_call(sub)
                        if described is None:
                            continue
                        chain, method = described
                        tail = chain.split(".")[-1]
                        if tail == _TXN_CHAIN_TAIL:
                            if method == "add":
                                begins.append((node.index, sub))  # type: ignore[arg-type]
                            elif method in _TXN_CLOSERS:
                                closers.add(node.index)
                        elif method in _HANDOFF_METHODS:
                            closers.add(node.index)
            for index, call in begins:
                if index in closers:
                    continue
                if graph.reaches_exit_without(index, closers):
                    yield ctx.diagnostic(
                        self.rule_id,
                        call,
                        "transaction opened with ._pending_commits.add() can "
                        "reach the function exit without .discard()/.clear() "
                        "or a processor hand-off (.submit()/.schedule()) on "
                        "some path — a crash there wedges the commit forever",
                    )


class PersistenceBypass(Rule):
    """R011: store internals are written only via the persistence API."""

    rule_id = "R011"
    title = "persistent-state write bypasses the persistence API"

    _INTERNALS = frozenset({"_data", "writes", "cells_written"})
    _STORE_SEGMENTS = frozenset({"store", "_store"})

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.module == "repro.mom.persistence":
            return
        for node in ast.walk(tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                ):
                    internal = self._internal_chain(func.value)
                    if internal is not None:
                        yield ctx.diagnostic(
                            self.rule_id,
                            node,
                            f"mutating store internal '{internal}' via "
                            f".{func.attr}(); persistent state changes only "
                            "through save()/put_entry()/delete_entry() so "
                            "recovery replays see every write",
                        )
                continue
            for target in targets:
                for leaf in _flatten(target):
                    if isinstance(leaf, ast.Subscript):
                        leaf = leaf.value
                    if not isinstance(leaf, ast.Attribute):
                        continue
                    internal = self._internal_chain(leaf)
                    if internal is not None:
                        yield ctx.diagnostic(
                            self.rule_id,
                            node,
                            f"write to store internal '{internal}' outside "
                            "repro/mom/persistence.py; go through the "
                            "persistence API (save()/put_entry()/"
                            "delete_entry()) or recovery will miss the write",
                        )

    def _internal_chain(self, expr: ast.expr) -> Optional[str]:
        """The full chain if ``expr`` is ``<...store...>.<internal>``."""
        if not isinstance(expr, ast.Attribute) or expr.attr not in self._INTERNALS:
            return None
        receiver = expr_chain(expr.value)
        if receiver is None:
            return None
        if self._STORE_SEGMENTS & set(receiver.split(".")):
            return f"{receiver}.{expr.attr}"
        return None


def _flatten(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten(element)
    elif isinstance(target, ast.Starred):
        yield from _flatten(target.value)
    else:
        yield target


class HoldbackLeak(Rule):
    """R012: hold-back inserts must not leak through exception paths."""

    rule_id = "R012"
    title = "hold-back entry leaks on an exception path"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        if not _txn_scope(ctx.module):
            return
        for func in _function_defs(tree):
            graph = build_cfg(func)
            inserts: List[Tuple[int, ast.Call]] = []
            removals: Set[int] = set()
            for node in graph.nodes:
                for expr in _owned_exprs(node):
                    for sub in ast.walk(expr):
                        described = _attr_call(sub)
                        if described is None:
                            continue
                        chain, method = described
                        tail = chain.split(".")[-1]
                        if not any(
                            tail == t or tail.endswith(t) for t in _HOLDBACK_TAILS
                        ):
                            continue
                        if method in _HOLDBACK_INSERTS:
                            inserts.append((node.index, sub))  # type: ignore[arg-type]
                        elif method in _HOLDBACK_REMOVALS:
                            removals.add(node.index)
            for index, call in inserts:
                if graph.reaches_exit_without(
                    index, removals, require_exc_edge=True
                ):
                    yield ctx.diagnostic(
                        self.rule_id,
                        call,
                        "hold-back entry inserted here can survive an "
                        "exception path to the function exit without "
                        ".remove()/.clear(); a swallowed error would leave a "
                        "zombie entry blocking the domain's delivery queue",
                    )


# ----------------------------------------------------------------------
# Concurrency tier (R013–R017) — the fork/pipe happens-before model
# ----------------------------------------------------------------------


class ForkBoundaryLostUpdate(ProjectRule):
    """R013: a worker-side write to parent-read module state vanishes at
    the fork boundary."""

    rule_id = "R013"
    title = "worker-side write to module state the parent reads"

    def check_project(
        self, project: Project, contexts: Dict[str, LintContext]
    ) -> Iterator[Diagnostic]:
        model = fork_model(project)
        if not model.worker_entries:
            return
        for write in model.worker_module_writes():
            ctx = contexts.get(write.fn.module)
            if ctx is None:
                continue
            readers = model.parent_readers(write.fn.module, write.name)
            if not readers:
                continue
            names = ", ".join(sorted({f"{fn.name}()" for fn in readers}))
            path = model.worker_path(write.fn.qualname)
            entry = path[0].rsplit(".", 1)[-1] if path else "a worker entry"
            yield ctx.diagnostic(
                self.rule_id,
                write.node,
                f"{write.how} of module-level '{write.name}' runs in "
                f"fork-worker code (reachable from {entry}()), but the "
                f"parent process reads '{write.name}' in {names}; fork is a "
                "one-way snapshot, so this write silently vanishes — ship "
                "the data through the worker pipe instead",
            )


class PipePickleSafety(ProjectRule):
    """R014: everything crossing a worker pipe is statically picklable."""

    rule_id = "R014"
    title = "unpicklable value crosses the worker pipe"

    def check_project(
        self, project: Project, contexts: Dict[str, LintContext]
    ) -> Iterator[Diagnostic]:
        model = fork_model(project)
        sends = model.pipe_sends()
        if not sends:
            return
        for send in sends:
            ctx = contexts.get(send.fn.module)
            if ctx is None:
                continue
            for arg in send.node.args:
                why = model.unpicklable_reason(arg, send.fn.cls)
                if why is not None:
                    yield ctx.diagnostic(
                        self.rule_id,
                        arg,
                        f"pipe payload sent through '{send.handle}' contains "
                        f"{why}, which cannot be pickled across the fork "
                        "boundary",
                    )
        for cls in model.shipped_classes():
            ctx = contexts.get(cls.module)
            if ctx is None:
                continue
            for site, field_name, why in model.unpicklable_fields(cls):
                yield ctx.diagnostic(
                    self.rule_id,
                    site,
                    f"field '{cls.name}.{field_name}' holds {why}, but "
                    f"'{cls.name}' instances cross the worker pipe pickled "
                    "(directly or inside a shipped payload); every field of "
                    "a shipped type must be statically picklable",
                )


class EpochDiscipline(Rule):
    """R015: every rebinding of a clock change-log writes its epoch."""

    rule_id = "R015"
    title = "change-log rebound without a _log_epoch write on some path"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        if _package_of(ctx.module) != "clocks":
            return
        for func in _function_defs(tree):
            graph = build_cfg(func)
            rebinds: List[Tuple[int, ast.stmt, str]] = []
            epoch_writes: Dict[str, Set[int]] = {}
            for node in graph.nodes:
                stmt = node.stmt
                if stmt is None or node.kind == "finally":
                    continue
                if isinstance(stmt, ast.Assign):
                    targets: List[ast.expr] = list(stmt.targets)
                    rebinding = True
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                    rebinding = stmt.value is not None
                elif isinstance(stmt, ast.AugAssign):
                    # `log += [...]` mutates in place: identity preserved
                    targets = [stmt.target]
                    rebinding = False
                else:
                    continue
                for target in targets:
                    for leaf in _flatten(target):
                        chain = expr_chain(leaf)
                        if chain is None or "." not in chain:
                            continue
                        prefix, _, attr = chain.rpartition(".")
                        if attr == "_log" and rebinding:
                            rebinds.append((node.index, stmt, prefix))
                        elif attr == "_log_epoch":
                            epoch_writes.setdefault(prefix, set()).add(
                                node.index
                            )
            for index, stmt, prefix in rebinds:
                blockers = epoch_writes.get(prefix, set())
                if index in blockers:
                    continue
                if graph.reaches_exit_without(index, blockers):
                    yield ctx.diagnostic(
                        self.rule_id,
                        stmt,
                        f"'{prefix}._log' is rebound here, but some path to "
                        f"the function exit never writes "
                        f"'{prefix}._log_epoch'; change-log consumers dedupe "
                        "entries by (epoch, index), so a silent swap replays "
                        "or loses clock updates",
                    )


class CoordinatorFlushDiscipline(Rule):
    """R016: pending arrivals are flushed before every LBTS grant."""

    rule_id = "R016"
    title = "LBTS grant sent without flushing pending arrivals first"

    _PENDING = "_pending"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        if _package_of(ctx.module) != "simulation":
            return
        for func in _function_defs(tree):
            graph = build_cfg(func)
            grants: List[Tuple[int, ast.Call]] = []
            flushes: Set[int] = set()
            kills: Set[int] = set()
            for node in graph.nodes:
                for expr in _owned_exprs(node):
                    for sub in ast.walk(expr):
                        if not isinstance(sub, ast.Call) or not isinstance(
                            sub.func, ast.Attribute
                        ):
                            continue
                        if sub.func.attr == "send" and self._is_grant(sub):
                            grants.append((node.index, sub))
                        elif (
                            sub.func.attr in _MUTATOR_METHODS
                            and self._mentions_pending(sub.func.value)
                        ):
                            kills.add(node.index)
                stmt = node.stmt
                if (
                    isinstance(stmt, (ast.Assign, ast.AnnAssign))
                    and node.kind != "finally"
                ):
                    targets = (
                        list(stmt.targets)
                        if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                    rebinds_pending = any(
                        (chain := expr_chain(leaf)) is not None
                        and chain.split(".")[-1] == self._PENDING
                        for target in targets
                        for leaf in _flatten(target)
                    )
                    if rebinds_pending:
                        if stmt.value is not None and self._mentions_pending(
                            stmt.value
                        ):
                            # the swap: grant batch <- pending, pending reset
                            flushes.add(node.index)
                            kills.discard(node.index)
                        else:
                            kills.add(node.index)
            if not grants:
                continue

            def transfer(
                node: CFGNode, fact: FrozenSet[str], label: str
            ) -> FrozenSet[str]:
                if node.index in flushes:
                    return frozenset({"flushed"})
                if node.index in kills:
                    return frozenset()
                return fact

            def join(facts: Sequence[FrozenSet[str]]) -> FrozenSet[str]:
                if not facts:
                    return frozenset()
                out = facts[0]
                for fact in facts[1:]:
                    out = out & fact
                return out

            in_facts = solve_forward(graph, frozenset(), transfer, join)
            for index, call in grants:
                if "flushed" not in in_facts.get(index, frozenset()):
                    yield ctx.diagnostic(
                        self.rule_id,
                        call,
                        "LBTS grant sent on a path where pending cross-shard "
                        "arrivals were not flushed into the grant batch; an "
                        "unflushed arrival is delivered one window late, "
                        "breaking bit-identity with the sequential kernel",
                    )

    @staticmethod
    def _is_grant(call: ast.Call) -> bool:
        if not call.args:
            return False
        payload = call.args[0]
        return (
            isinstance(payload, ast.Tuple)
            and bool(payload.elts)
            and isinstance(payload.elts[0], ast.Constant)
            and payload.elts[0].value == "grant"
        )

    @classmethod
    def _mentions_pending(cls, expr: ast.AST) -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Attribute) and sub.attr == cls._PENDING:
                return True
            if isinstance(sub, ast.Name) and sub.id == cls._PENDING:
                return True
        return False


class ShardScopedStreams(ProjectRule):
    """R017: stream names built in worker code embed the shard id."""

    rule_id = "R017"
    title = "RNG stream name in worker-reachable code lacks the shard id"

    def check_project(
        self, project: Project, contexts: Dict[str, LintContext]
    ) -> Iterator[Diagnostic]:
        model = fork_model(project)
        if not model.worker_entries:
            return
        guarded_cache: Dict[str, Set[int]] = {}
        for fn, call in stream_call_sites(project):
            if not model.is_worker(fn.qualname) or not call.args:
                continue
            ctx = contexts.get(fn.module)
            if ctx is None:
                continue
            arg = call.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                flaw = f"constant stream name '{arg.value}'"
            elif isinstance(arg, ast.JoinedStr) and not self._embeds_shard(arg):
                flaw = "f-string stream name with no shard-id field"
            else:
                continue  # shard-scoped, or not statically decidable
            guarded = guarded_cache.get(fn.qualname)
            if guarded is None:
                guarded = model.sequential_guarded_calls(fn)
                guarded_cache[fn.qualname] = guarded
            if id(call) in guarded:
                continue  # sequential-only branch: `shard is None`
            path = model.worker_path(fn.qualname)
            entry = path[0].rsplit(".", 1)[-1] if path else "a worker entry"
            yield ctx.diagnostic(
                self.rule_id,
                call,
                f"{flaw} in worker-reachable code (via {entry}()): every "
                "shard worker would draw an identical sequence; embed the "
                "shard id in the stream name (e.g. "
                "f\"network/shard{shard.shard_id}\") so streams stay "
                "decorrelated across workers",
            )

    @staticmethod
    def _embeds_shard(arg: ast.JoinedStr) -> bool:
        for part in arg.values:
            if not isinstance(part, ast.FormattedValue):
                continue
            for sub in ast.walk(part.value):
                if isinstance(sub, ast.Name) and "shard" in sub.id:
                    return True
                if isinstance(sub, ast.Attribute) and "shard" in sub.attr:
                    return True
        return False


# Imported at the bottom on purpose: the contract tier builds on the
# shared bases in repro.analysis.rulebase, and this module appends its
# rules to the catalogue — a top-of-file import would be cyclic.
from repro.analysis.contract import CONTRACT_RULES  # noqa: E402

ALL_RULES: Tuple[Rule, ...] = (
    ClockInternalMutation(),
    AmbientNondeterminism(),
    UnorderedIteration(),
    FloatTimestampEquality(),
    SwallowedProtocolError(),
    LayeredImports(),
    NondeterminismTaint(),
    ObservationPurity(),
    GuardDiscipline(),
    TransactionPairing(),
    PersistenceBypass(),
    HoldbackLeak(),
    ForkBoundaryLostUpdate(),
    PipePickleSafety(),
    EpochDiscipline(),
    CoordinatorFlushDiscipline(),
    ShardScopedStreams(),
) + CONTRACT_RULES

FILE_RULES: Tuple[Rule, ...] = tuple(
    rule for rule in ALL_RULES if not isinstance(rule, ProjectRule)
)

PROJECT_RULES: Tuple[ProjectRule, ...] = tuple(
    rule for rule in ALL_RULES if isinstance(rule, ProjectRule)
)

RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}
