"""The rule catalogue, R001–R006 (see ``docs/analysis.md`` for rationale).

Each rule guards one invariant the PR-1 hot-path rewrite (and the paper's
protocol itself) depends on:

- **R001** — clock internals (``_buf``, ``_log``, ``_image`` and the
  Updates-clock buffers) are mutated only inside ``repro/clocks/``. The
  copy-on-write stamp discipline means an out-of-module write can corrupt
  a stamp that is already on the wire.
- **R002** — no ambient nondeterminism (``random.*`` module functions,
  unseeded ``random.Random()``, ``time.time()``, ``datetime.now()``,
  ``os.urandom``) outside ``repro/simulation/rng.py``. Every random draw
  must flow from the seeded per-stream factory or runs stop being
  bit-for-bit reproducible.
- **R003** — no iteration over bare ``set`` expressions or ``.keys()``
  views in ``repro/simulation/`` and ``repro/mom/``: hash order feeding
  event scheduling or message fan-out silently breaks determinism.
- **R004** — no ``==``/``!=`` on virtual-timestamp expressions; simulated
  times are floats and exact equality is a latent flake.
- **R005** — no bare ``except`` and no swallowed protocol errors
  (``ClockError``/``ReproError`` caught without re-raising): a suppressed
  clock error converts a crash into a silent causality violation.
- **R006** — layered imports only: a package may import packages at or
  below its own layer (``errors < simulation < clocks < causality <
  topology < baselines < mom < pubsub < obs < bench < analysis``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import Diagnostic, LintContext

# Attributes that are private to the clock implementations: the flat
# stamp/clock buffers, the change log, the persistence image/journal and
# the per-sender merge positions. Reading them elsewhere is tolerated
# (diagnostics, the sanitizer); *mutating* them outside repro/clocks is
# how a published stamp gets corrupted.
CLOCK_INTERNALS = frozenset(
    {
        "_buf",
        "_log",
        "_image",
        "_value",
        "_cstate",
        "_origin",
        "_sent_state",
        "_changes",
        "_journal",
        "_journal_sent",
        "_merged",
        "_shared",
    }
)

_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "frombytes",
        "fromlist",
        "byteswap",
    }
)

# Layer order for R006; a package may import itself and anything below.
LAYERS: Dict[str, int] = {
    "errors": 0,
    "metrics": 1,
    "simulation": 2,
    "clocks": 3,
    "causality": 4,
    "topology": 5,
    "baselines": 6,
    "mom": 7,
    "pubsub": 8,
    "obs": 9,
    "bench": 10,
    "analysis": 11,
}

_TIMELIKE_NAMES = frozenset(
    {
        "now",
        "_now",
        "sent_at",
        "started_at",
        "_round_started",
        "busy_until",
        "_busy_until",
        "virtual_time",
        "vtime",
        "send_time",
        "recv_time",
        "delivery_time",
        "timestamp",
    }
)

_PROTOCOL_ERRORS = frozenset({"ClockError", "ReproError", "SanitizerViolation"})
_BROAD_ERRORS = frozenset({"Exception", "BaseException"})

_DATETIME_NOW = frozenset({"now", "utcnow", "today", "fromtimestamp"})


class Rule:
    """Base class: subclasses set ``rule_id``/``title`` and yield
    diagnostics from :meth:`check`."""

    rule_id: str = ""
    title: str = ""

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError


def _package_of(module: Optional[str]) -> Optional[str]:
    """``repro.mom.channel`` → ``mom``; ``None``/non-repro → ``None``."""
    if not module or not module.startswith("repro"):
        return None
    parts = module.split(".")
    if len(parts) < 2:
        return None
    return parts[1]


class ClockInternalMutation(Rule):
    """R001: clock internals are written only inside ``repro/clocks/``."""

    rule_id = "R001"
    title = "mutation of clock internals outside repro/clocks/"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.module is not None and ctx.module.startswith("repro.clocks"):
            return
        for node in ast.walk(tree):
            yield from self._check_node(node, ctx)

    def _check_node(self, node: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
                and isinstance(func.value, ast.Attribute)
                and func.value.attr in CLOCK_INTERNALS
            ):
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    f"call mutates clock internal '.{func.value.attr}' via "
                    f".{func.attr}(); clock state may only change inside "
                    "repro/clocks/ (COW stamps alias these buffers)",
                )
            return
        for target in targets:
            internal = self._internal_target(target)
            if internal is not None:
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    f"assignment to clock internal '.{internal}' outside "
                    "repro/clocks/; published stamps share these buffers "
                    "copy-on-write",
                )

    @staticmethod
    def _internal_target(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Attribute) and target.attr in CLOCK_INTERNALS:
            return target.attr
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and target.value.attr in CLOCK_INTERNALS
        ):
            return target.value.attr
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                found = ClockInternalMutation._internal_target(element)
                if found is not None:
                    return found
        return None


class AmbientNondeterminism(Rule):
    """R002: nondeterministic sources only inside ``repro/simulation/rng.py``."""

    rule_id = "R002"
    title = "ambient nondeterminism outside simulation/rng.py"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.module == "repro.simulation.rng":
            return
        random_mods: Set[str] = set()
        time_mods: Set[str] = set()
        datetime_mods: Set[str] = set()
        os_mods: Set[str] = set()
        # name -> original, for `from random import randint as r`
        from_random: Dict[str, str] = {}
        from_time: Dict[str, str] = {}
        from_datetime: Dict[str, str] = {}
        from_os: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        random_mods.add(bound)
                    elif alias.name == "time":
                        time_mods.add(bound)
                    elif alias.name == "datetime":
                        datetime_mods.add(bound)
                    elif alias.name == "os":
                        os_mods.add(bound)
            elif isinstance(node, ast.ImportFrom):
                table = {
                    "random": from_random,
                    "time": from_time,
                    "datetime": from_datetime,
                    "os": from_os,
                }.get(node.module or "")
                if table is not None:
                    for alias in node.names:
                        table[alias.asname or alias.name] = alias.name

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._forbidden_call(
                node,
                random_mods,
                time_mods,
                datetime_mods,
                os_mods,
                from_random,
                from_time,
                from_datetime,
                from_os,
            )
            if message is not None:
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    message
                    + "; draw from the seeded RngFactory stream instead "
                    "(repro/simulation/rng.py)",
                )

    @staticmethod
    def _forbidden_call(
        node: ast.Call,
        random_mods: Set[str],
        time_mods: Set[str],
        datetime_mods: Set[str],
        os_mods: Set[str],
        from_random: Dict[str, str],
        from_time: Dict[str, str],
        from_datetime: Dict[str, str],
        from_os: Dict[str, str],
    ) -> Optional[str]:
        func = node.func
        unseeded = not node.args and not node.keywords
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in random_mods:
                    if func.attr == "Random":
                        if unseeded:
                            return "unseeded random.Random() is nondeterministic"
                        return None
                    if func.attr == "SystemRandom":
                        return "random.SystemRandom() is nondeterministic"
                    return (
                        f"module-level random.{func.attr}() uses the global, "
                        "unseeded RNG"
                    )
                if base.id in time_mods and func.attr in {"time", "time_ns"}:
                    return f"wall-clock time.{func.attr}() in simulated code"
                if base.id in os_mods and func.attr == "urandom":
                    return "os.urandom() is nondeterministic"
                if (
                    base.id in from_datetime
                    and from_datetime[base.id] in {"datetime", "date"}
                    and func.attr in _DATETIME_NOW
                ):
                    return f"wall-clock datetime {func.attr}()"
            elif isinstance(base, ast.Attribute) and isinstance(
                base.value, ast.Name
            ):
                if (
                    base.value.id in datetime_mods
                    and base.attr in {"datetime", "date"}
                    and func.attr in _DATETIME_NOW
                ):
                    return f"wall-clock datetime.{base.attr}.{func.attr}()"
        elif isinstance(func, ast.Name):
            origin = from_random.get(func.id)
            if origin is not None:
                if origin == "Random":
                    if unseeded:
                        return "unseeded Random() is nondeterministic"
                    return None
                if origin == "SystemRandom":
                    return "SystemRandom() is nondeterministic"
                return f"module-level random.{origin}() uses the global RNG"
            if from_time.get(func.id) in {"time", "time_ns"}:
                return "wall-clock time.time() in simulated code"
            if from_os.get(func.id) == "urandom":
                return "os.urandom() is nondeterministic"
        return None


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _is_unordered_iterable(node: ast.expr) -> Optional[str]:
    if _is_set_expression(node):
        return "a bare set expression"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
    ):
        return "a dict .keys() view"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"list", "tuple"}
        and len(node.args) == 1
        and _is_set_expression(node.args[0])
    ):
        return "a set converted to a sequence"
    return None


class UnorderedIteration(Rule):
    """R003: no hash-ordered iteration feeding scheduling or fan-out."""

    rule_id = "R003"
    title = "iteration over unordered set/keys() in simulation/ or mom/"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        package = _package_of(ctx.module)
        if package is not None and package not in {"simulation", "mom"}:
            return
        iters: List[ast.expr] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
        for expr in iters:
            what = _is_unordered_iterable(expr)
            if what is not None:
                yield ctx.diagnostic(
                    self.rule_id,
                    expr,
                    f"iterating {what}: hash order is not stable run to run; "
                    "sort it (sorted(...)) or use an insertion-ordered "
                    "structure before it feeds event scheduling or fan-out",
                )


def _timelike(node: ast.expr) -> Optional[str]:
    name: Optional[str] = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    if name is None:
        return None
    if name in _TIMELIKE_NAMES or name.endswith("_at"):
        return name
    return None


class FloatTimestampEquality(Rule):
    """R004: no exact equality on virtual-timestamp expressions."""

    rule_id = "R004"
    title = "float equality on virtual timestamps"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[index], operands[index + 1]):
                    name = _timelike(side)
                    if name is not None:
                        yield ctx.diagnostic(
                            self.rule_id,
                            node,
                            f"'{name}' looks like a virtual timestamp; exact "
                            "float equality is a latent flake — compare with "
                            "<=/>= or an explicit tolerance",
                        )
                        break


class SwallowedProtocolError(Rule):
    """R005: no bare ``except``; protocol errors must not be swallowed."""

    rule_id = "R005"
    title = "bare except / swallowed protocol error"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    "bare 'except:' hides protocol violations (and "
                    "KeyboardInterrupt); name the exceptions you mean",
                )
                continue
            caught = self._caught_names(node.type)
            # A handler that re-raises, or returns a value (a CLI boundary
            # converting the error into an exit status), handles the error.
            handled = any(
                isinstance(inner, ast.Raise)
                or (isinstance(inner, ast.Return) and inner.value is not None)
                for inner in ast.walk(node)
            )
            if caught & _PROTOCOL_ERRORS and not handled:
                name = sorted(caught & _PROTOCOL_ERRORS)[0]
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    f"'{name}' caught and swallowed: a suppressed protocol "
                    "error turns a crash into a silent causality violation; "
                    "re-raise or handle explicitly (# noqa: R005 if truly "
                    "intended)",
                )
            elif caught & _BROAD_ERRORS and self._is_trivial_body(node.body):
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    "broad exception swallowed with an empty handler; "
                    "narrow the type or handle the error",
                )

    @staticmethod
    def _caught_names(expr: ast.expr) -> Set[str]:
        names: Set[str] = set()
        nodes = expr.elts if isinstance(expr, ast.Tuple) else [expr]
        for node in nodes:
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
        return names

    @staticmethod
    def _is_trivial_body(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue
            return False
        return True


class LayeredImports(Rule):
    """R006: a package only imports packages at or below its own layer."""

    rule_id = "R006"
    title = "forbidden cross-layer import"

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        package = _package_of(ctx.module)
        if package is None or package not in LAYERS:
            return
        layer = LAYERS[package]
        type_checking_only = self._type_checking_imports(tree)
        for node in ast.walk(tree):
            if node in type_checking_only:
                continue
            for target, site in self._imports(node):
                if target == "repro":
                    yield ctx.diagnostic(
                        self.rule_id,
                        site,
                        "import of the 'repro' root aggregator from inside a "
                        "layer package; import the specific subpackage",
                    )
                    continue
                imported = _package_of(target + ".x")
                if imported is None or imported not in LAYERS:
                    continue
                if LAYERS[imported] > layer:
                    yield ctx.diagnostic(
                        self.rule_id,
                        site,
                        f"'{package}' (layer {layer}) imports "
                        f"'{imported}' (layer {LAYERS[imported]}); the layer "
                        "order is "
                        + " < ".join(
                            sorted(LAYERS, key=LAYERS.__getitem__)
                        ),
                    )

    @staticmethod
    def _type_checking_imports(tree: ast.AST) -> Set[ast.AST]:
        """Imports under ``if TYPE_CHECKING:`` — annotation-only, no
        runtime dependency, so no layering edge."""
        guarded: Set[ast.AST] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
                isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
            )
            if not is_tc:
                continue
            for stmt in node.body:
                for inner in ast.walk(stmt):
                    if isinstance(inner, (ast.Import, ast.ImportFrom)):
                        guarded.add(inner)
        return guarded

    @staticmethod
    def _imports(node: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield alias.name, node
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = node.module or ""
            if module == "repro" or module.startswith("repro."):
                yield module, node


ALL_RULES: Tuple[Rule, ...] = (
    ClockInternalMutation(),
    AmbientNondeterminism(),
    UnorderedIteration(),
    FloatTimestampEquality(),
    SwallowedProtocolError(),
    LayeredImports(),
)

RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}
