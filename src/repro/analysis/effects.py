"""Interprocedural effect summaries, computed to fixpoint over SCCs.

For every function in a :class:`~repro.analysis.callgraph.Project` this
module computes:

- ``mutates_protocol`` — the function writes *protocol state*: an
  attribute assignment (or mutator-method call) whose receiver is an
  instance of a class defined in ``repro.mom``/``repro.clocks``
  (``repro.mom.accounting`` excluded — that *is* the observation
  layer), or any ``self.…`` write inside those modules. Each mutation
  site is kept for diagnostics. Used by R008: nothing reachable from an
  obs/metrics hook may carry this effect.
- ``returns_taint`` — the function's return value derives from an
  :class:`~repro.simulation.rng.RngFactory` stream draw
  (``….stream(name)`` or anything computed from one).
- ``param_to_return`` — parameter indices that flow into the return
  value.
- ``param_to_state`` — parameter indices that flow into a protocol
  write or a persistence call inside the function (transitively).

Taint propagation is a forward may-analysis on the function's CFG
(:mod:`repro.analysis.dataflow`): facts are ``(chain, label)`` pairs
where the label is ``"rng"`` or ``"p<i>"`` for parameter *i*. The
summaries are solved bottom-up over Tarjan SCCs (callees first, cyclic
components iterated to a fixpoint), then a final reporting pass records
R007 sink hits with stable, deterministic ordering.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.callgraph import FunctionInfo, InferredType, Project
from repro.analysis.cfg import CFGNode
from repro.analysis.dataflow import expr_chain, solve_forward

#: Packages whose classes hold protocol state.
PROTOCOL_PACKAGES = ("repro.mom", "repro.clocks", "repro.protocol")
#: …except the accounting bundles, which are the metrics hot-path layer.
PROTOCOL_EXEMPT_MODULES = frozenset({"repro.mom.accounting"})

#: Persistence entry points (writes must go through these, cf. R011).
PERSISTENCE_METHODS = frozenset({"save", "put_entry", "delete_entry"})

_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)


def is_protocol_module(module: Optional[str]) -> bool:
    if module is None or module in PROTOCOL_EXEMPT_MODULES:
        return False
    if module in PROTOCOL_PACKAGES:
        return True
    return any(module.startswith(pkg + ".") for pkg in PROTOCOL_PACKAGES)


@dataclass
class MutationSite:
    node: ast.AST
    target: str
    description: str


@dataclass
class Summary:
    qualname: str
    mutates_protocol: List[MutationSite] = field(default_factory=list)
    returns_taint: bool = False
    param_to_return: Set[int] = field(default_factory=set)
    param_to_state: Set[int] = field(default_factory=set)


@dataclass
class SinkHit:
    """One R007 finding: an rng-derived value reaching protocol state."""

    node: ast.AST
    fn: FunctionInfo
    target: str
    via: str  # "" for a direct write, else the callee chain


class EffectEngine:
    """Computes and caches summaries for one project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.summaries: Dict[str, Summary] = {}
        self._protocol_classes: FrozenSet[str] = frozenset(
            cls.name
            for cls in project.classes_by_qualname.values()
            if is_protocol_module(cls.module)
        )
        self._solved = False

    # -- public ---------------------------------------------------------

    def summary(self, qualname: str) -> Summary:
        self.solve()
        return self.summaries.get(qualname, Summary(qualname))

    def solve(self) -> None:
        if self._solved:
            return
        self._solved = True
        for qualname in self.project.functions:
            self.summaries[qualname] = Summary(qualname)
            self._local_mutations(self.project.functions[qualname])
        for component in self.project.sccs():
            for _ in range(len(component) + 1):
                changed = False
                for qualname in component:
                    fn = self.project.functions.get(qualname)
                    if fn is None:
                        continue
                    if self._update_taint_summary(fn):
                        changed = True
                if not changed:
                    break

    def rng_sink_hits(self) -> List[SinkHit]:
        """The reporting pass: every rng-labelled flow into protocol
        state, in deterministic (module, lineno) order."""
        self.solve()
        hits: List[SinkHit] = []
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            if fn.module.startswith("repro.simulation"):
                continue  # the simulation layer is the sanctioned consumer
            _, _, fn_hits = self._taint_pass(fn, record=True)
            hits.extend(fn_hits)
        hits.sort(
            key=lambda h: (
                h.fn.module,
                getattr(h.node, "lineno", 0),
                getattr(h.node, "col_offset", 0),
                h.target,
            )
        )
        return hits

    # -- protocol mutations (syntactic + typed) -------------------------

    def receiver_is_protocol(
        self,
        expr: ast.expr,
        fn: FunctionInfo,
        env: Dict[str, InferredType],
    ) -> Optional[str]:
        """If ``expr`` is (part of) a protocol-state object, a short
        human description of why; else ``None``."""
        inferred = self.project.infer_expr(expr, env, fn)
        if inferred is not None and inferred[0] == "cls":
            name = str(inferred[1])
            if name in self._protocol_classes:
                return f"an instance of protocol class {name}"
        chain = expr_chain(expr)
        if (
            chain is not None
            and (chain == "self" or chain.startswith("self."))
            and fn.cls is not None
            and is_protocol_module(fn.module)
        ):
            return f"state of {fn.cls.name} (protocol module {fn.module})"
        return None

    def _local_mutations(self, fn: FunctionInfo) -> None:
        summary = self.summaries[fn.qualname]
        env = self.project.local_env(fn)
        for node in ast.walk(fn.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                    and isinstance(func.value, (ast.Attribute, ast.Subscript))
                ):
                    base = func.value
                    if isinstance(base, ast.Subscript):
                        base = base.value  # type: ignore[assignment]
                    if isinstance(base, ast.Attribute):
                        why = self.receiver_is_protocol(base.value, fn, env)
                        if why is not None:
                            chain = expr_chain(base) or base.attr
                            summary.mutates_protocol.append(
                                MutationSite(
                                    node,
                                    chain,
                                    f".{func.attr}() on '{chain}', {why}",
                                )
                            )
                continue
            for target in targets:
                site = self._attribute_write(target, fn, env)
                if site is not None:
                    summary.mutates_protocol.append(
                        MutationSite(node, site[0], site[1])
                    )

    def _attribute_write(
        self,
        target: ast.expr,
        fn: FunctionInfo,
        env: Dict[str, InferredType],
    ) -> Optional[Tuple[str, str]]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                found = self._attribute_write(element, fn, env)
                if found is not None:
                    return found
            return None
        if isinstance(target, ast.Subscript):
            target = target.value  # a[k] = v mutates a
        if not isinstance(target, ast.Attribute):
            return None
        why = self.receiver_is_protocol(target.value, fn, env)
        if why is None:
            return None
        chain = expr_chain(target) or target.attr
        return chain, f"write to '{chain}', {why}"

    # -- taint ----------------------------------------------------------

    def _update_taint_summary(self, fn: FunctionInfo) -> bool:
        returns_taint, param_flows, _ = self._taint_pass(fn, record=False)
        summary = self.summaries[fn.qualname]
        changed = False
        if returns_taint and not summary.returns_taint:
            summary.returns_taint = True
            changed = True
        if not param_flows["return"] <= summary.param_to_return:
            summary.param_to_return |= param_flows["return"]
            changed = True
        if not param_flows["state"] <= summary.param_to_state:
            summary.param_to_state |= param_flows["state"]
            changed = True
        return changed

    def _taint_pass(
        self, fn: FunctionInfo, record: bool
    ) -> Tuple[bool, Dict[str, Set[int]], List[SinkHit]]:
        """One forward taint analysis over ``fn``'s CFG under the current
        summaries. Returns (returns rng taint, {"return"/"state": param
        indices}, sink hits)."""
        env = self.project.local_env(fn)
        cfg = fn.cfg()
        params = fn.params
        skip_self = 1 if fn.cls is not None and params else 0
        seed: Set[Tuple[str, str]] = set()
        for index, arg in enumerate(params[skip_self:]):
            seed.add((arg.arg, f"p{index}"))

        engine = self

        def labels_of(expr: ast.expr, fact: FrozenSet[str]) -> Set[str]:
            return engine._expr_labels(expr, fact, fn, env)

        def transfer(node: CFGNode, fact: FrozenSet[str], label: str) -> FrozenSet[str]:
            stmt = node.stmt
            if stmt is None or node.kind == "finally":
                return fact
            out = set(fact)
            pairs: List[Tuple[ast.expr, Optional[ast.expr]]] = []
            if isinstance(stmt, ast.Assign):
                pairs = [(t, stmt.value) for t in stmt.targets]
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                pairs = [(stmt.target, stmt.value)]
            elif isinstance(stmt, ast.AugAssign):
                pairs = [(stmt.target, stmt.value)]
            for target, value in pairs:
                value_labels = labels_of(value, frozenset(out)) if value else set()
                if isinstance(stmt, ast.AugAssign):
                    chain = expr_chain(target)
                    if chain is not None:
                        value_labels |= {
                            entry.split("|", 1)[1]
                            for entry in out
                            if entry.split("|", 1)[0] == chain
                        }
                for leaf in _targets(target):
                    chain = expr_chain(leaf)
                    if chain is None:
                        continue
                    out = {
                        entry
                        for entry in out
                        if entry.split("|", 1)[0] != chain
                    }
                    for tag in sorted(value_labels):
                        out.add(f"{chain}|{tag}")
            return frozenset(out)

        def join(facts: List[FrozenSet[str]]) -> FrozenSet[str]:
            merged: Set[str] = set()
            for fact in facts:
                merged |= fact
            return frozenset(merged)

        entry_fact = frozenset(f"{name}|{tag}" for name, tag in seed)
        in_facts = solve_forward(cfg, entry_fact, transfer, join)

        returns_taint = False
        param_flows: Dict[str, Set[int]] = {"return": set(), "state": set()}
        hits: List[SinkHit] = []

        for index, stmt in cfg.statements():
            fact = in_facts.get(index)
            if fact is None:
                continue
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                labels = labels_of(stmt.value, fact)
                if "rng" in labels:
                    returns_taint = True
                param_flows["return"] |= _param_indices(labels)
            # sinks: attribute writes into protocol state
            self._statement_sinks(
                stmt, fact, fn, env, labels_of, param_flows, hits, record
            )
        return returns_taint, param_flows, hits

    def _statement_sinks(
        self,
        stmt: ast.stmt,
        fact: FrozenSet[str],
        fn: FunctionInfo,
        env: Dict[str, InferredType],
        labels_of: Callable[[ast.expr, FrozenSet[str]], Set[str]],
        param_flows: Dict[str, Set[int]],
        hits: List[SinkHit],
        record: bool,
    ) -> None:
        targets: List[Tuple[ast.expr, Optional[ast.expr]]] = []
        if isinstance(stmt, ast.Assign):
            targets = [(t, stmt.value) for t in stmt.targets]
        elif isinstance(stmt, (ast.AugAssign,)):
            targets = [(stmt.target, stmt.value)]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [(stmt.target, stmt.value)]
        for target, value in targets:
            if value is None:
                continue
            site = self._attribute_write(target, fn, env)
            if site is None:
                continue
            labels = labels_of(value, fact)
            if "rng" in labels and record:
                hits.append(SinkHit(stmt, fn, site[0], via=""))
            param_flows["state"] |= _param_indices(labels)
        # call sinks: persistence writes and callees whose params reach state
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            arg_labels = [labels_of(arg, fact) for arg in node.args]
            kw_labels = {
                kw.arg: labels_of(kw.value, fact)
                for kw in node.keywords
                if kw.arg is not None
            }
            if (
                isinstance(func, ast.Attribute)
                and func.attr in PERSISTENCE_METHODS
                and _looks_like_store(func.value, self, fn, env)
            ):
                merged: Set[str] = set()
                for labels in arg_labels:
                    merged |= labels
                for labels in kw_labels.values():
                    merged |= labels
                if "rng" in merged and record:
                    hits.append(
                        SinkHit(node, fn, f"persistence .{func.attr}()", via="")
                    )
                param_flows["state"] |= _param_indices(merged)
                continue
            for callee in self.project.resolve_call(node, fn, env):
                callee_summary = self.summaries.get(callee.qualname)
                if callee_summary is None or not callee_summary.param_to_state:
                    continue
                callee_params = [
                    a.arg
                    for a in callee.params[1 if callee.cls is not None else 0 :]
                ]
                for pos, labels in enumerate(arg_labels):
                    if pos in callee_summary.param_to_state:
                        if "rng" in labels and record:
                            hits.append(
                                SinkHit(
                                    node,
                                    fn,
                                    f"argument {pos} of {callee.name}()",
                                    via=callee.qualname,
                                )
                            )
                        param_flows["state"] |= _param_indices(labels)
                for name, labels in sorted(kw_labels.items()):
                    if name in callee_params and callee_params.index(
                        name
                    ) in callee_summary.param_to_state:
                        if "rng" in labels and record:
                            hits.append(
                                SinkHit(
                                    node,
                                    fn,
                                    f"argument '{name}' of {callee.name}()",
                                    via=callee.qualname,
                                )
                            )
                        param_flows["state"] |= _param_indices(labels)

    def _expr_labels(
        self,
        expr: ast.expr,
        fact: FrozenSet[str],
        fn: FunctionInfo,
        env: Dict[str, InferredType],
    ) -> Set[str]:
        """Taint labels carried by an expression under ``fact``."""
        labels: Set[str] = set()
        chain = expr_chain(expr)
        if chain is not None:
            for entry in fact:
                entry_chain, _, tag = entry.partition("|")
                if entry_chain == chain or chain.startswith(entry_chain + "."):
                    labels.add(tag)
            return labels
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and func.attr == "stream":
                labels.add("rng")
                return labels
            arg_label_sets = [
                self._expr_labels(arg, fact, fn, env) for arg in expr.args
            ] + [
                self._expr_labels(kw.value, fact, fn, env)
                for kw in expr.keywords
            ]
            merged: Set[str] = set()
            for entry in arg_label_sets:
                merged |= entry
            # a method call *on* a tainted receiver (stream.random()) is tainted
            if isinstance(func, ast.Attribute):
                merged |= self._expr_labels(func.value, fact, fn, env)
            callees = self.project.resolve_call(expr, fn, env)
            if not callees:
                labels |= merged  # unknown callee: assume data flows through
            for callee in callees:
                summary = self.summaries.get(callee.qualname)
                if summary is None:
                    continue
                if summary.returns_taint:
                    labels.add("rng")
                if summary.param_to_return:
                    skip = 1 if callee.cls is not None else 0
                    names = [a.arg for a in callee.params[skip:]]
                    for pos, arg in enumerate(expr.args):
                        if pos in summary.param_to_return:
                            labels |= self._expr_labels(arg, fact, fn, env)
                    for kw in expr.keywords:
                        if (
                            kw.arg in names
                            and names.index(kw.arg) in summary.param_to_return
                        ):
                            labels |= self._expr_labels(kw.value, fact, fn, env)
            return labels
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                labels |= self._expr_labels(child, fact, fn, env)
        return labels


def stream_call_sites(project: Project) -> List[Tuple[FunctionInfo, ast.Call]]:
    """Every ``….stream(...)`` call site in the project, in deterministic
    (qualname, position) order.  The same syntactic pattern `_expr_labels`
    treats as the RNG taint source — reused by R017 to audit stream
    *names* in worker-reachable code."""
    sites: List[Tuple[FunctionInfo, ast.Call]] = []
    for qualname in sorted(project.functions):
        fn = project.functions[qualname]
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "stream"
            ):
                sites.append((fn, node))
    return sites


def _targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _targets(element)
    else:
        yield target


def _param_indices(labels: Set[str]) -> Set[int]:
    out: Set[int] = set()
    for label in labels:
        if label.startswith("p") and label[1:].isdigit():
            out.add(int(label[1:]))
    return out


def _looks_like_store(
    expr: ast.expr,
    engine: EffectEngine,
    fn: FunctionInfo,
    env: Dict[str, InferredType],
) -> bool:
    inferred = engine.project.infer_expr(expr, env, fn)
    if inferred is not None and inferred[0] == "cls":
        return str(inferred[1]) == "PersistentStore"
    chain = expr_chain(expr)
    if chain is None:
        return False
    segments = chain.split(".")
    return any(seg in ("store", "_store") for seg in segments)
