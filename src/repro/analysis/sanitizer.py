"""Opt-in runtime sanitizer for the causal-delivery protocol.

The lint rules (:mod:`repro.analysis.rules`) catch invariant violations
that are visible in the source; this module catches the ones that are
only visible in a *running* bus. Set ``REPRO_SANITIZE=1`` and the test
suite's conftest installs it; every :class:`~repro.mom.bus.MessageBus`
constructed afterwards is instrumented:

- **Stamp freeze (write-after-publish).** ``prepare_send`` hands stamps
  the clock's live buffer copy-on-write; the protocol requires that the
  published bytes never change afterwards (retransmissions must carry the
  *original* stamp). The sanitizer fingerprints every published stamp and
  re-verifies the fingerprint at each use and at quiescence — the moral
  equivalent of a write-after-share check in a race sanitizer.
- **Monotonicity.** Matrix cells only ever grow between restores; a
  shadow matrix per clock detects any regression.
- **FIFO pre-check.** A stamp handed to ``deliver`` must be the FIFO-next
  message from its sender (``W[s][me] == M[s][me] + 1``); the sanitizer
  reports the offending clock and cell *before* the clock's own
  ``ClockError`` would fire with less context.
- **Causal order (online).** A vector-clock reference checker shadows the
  bus's app-level send/receive hooks and raises the moment a delivery
  contradicts the happens-before order — only on topologies that promise
  causal order (``validate=True``; the theorem tests boot cyclic
  topologies where violations are the *expected outcome*).
- **Quiescence hygiene.** After ``run_until_idle`` with every server up:
  no held-back envelopes leaked, every engine queue drained, and the
  domain graph is still acyclic.

Everything is observation-only: no simulated cost is charged, no RNG
stream is consumed, no metric counter is touched, so a sanitized run is
bit-identical to a bare one (the determinism suite re-runs under the
sanitizer to pin exactly this).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.clocks.base import CausalClock, Stamp
from repro.clocks.matrix import MatrixStamp
from repro.clocks.updates import UpdateStamp
from repro.errors import ReproError
from repro.mom.identifiers import AgentId
from repro.mom.payloads import Notification

# Retain at most this many published-stamp fingerprints per bus; old
# entries age out FIFO (long benchmark runs should not hoard memory).
_MAX_FROZEN = 4096


class SanitizerViolation(ReproError):
    """A runtime invariant of the causal protocol was broken.

    Attributes:
        kind: short machine-readable category (``stamp-mutation``,
            ``monotonicity``, ``fifo``, ``causal-order``,
            ``holdback-leak``, ``queue-leak``, ``cyclic-domains``).
        artifact: flight-recorder dump directory, when tracing was on
            (``REPRO_TRACE=1``) at the moment of the violation.
    """

    def __init__(self, kind: str, message: str) -> None:
        self.kind = kind
        self.artifact = _flight_record(kind)
        suffix = (
            f" [flight record: {self.artifact}]" if self.artifact else ""
        )
        super().__init__(f"[{kind}] {message}{suffix}")


def _flight_record(kind: str) -> Optional[str]:
    """Dump the event ring of every traced bus; the violation message
    points at the artifact so the failure is inspectable post-mortem."""
    try:
        from repro.obs import flight_recorder
    except ImportError:
        return None
    return flight_recorder.record_violation(kind)


def _fingerprint(stamp: Stamp) -> Optional[object]:
    """A value equal iff the stamp's published content is unchanged."""
    if isinstance(stamp, MatrixStamp):
        # The sanitizer is the one watchdog allowed to reach past the
        # core boundary: it fingerprints raw stamp bytes to prove nobody
        # else mutated them.
        return stamp._buf.tobytes()  # noqa: R018
    if isinstance(stamp, UpdateStamp):
        return tuple(stamp.updates)
    return None


class _StampRegistry:
    """Published stamps and their publish-time fingerprints (bus-wide)."""

    def __init__(self) -> None:
        self._order: Deque[int] = deque()
        self._entries: Dict[int, Tuple[Stamp, object, str]] = {}

    def publish(self, stamp: Stamp, label: str) -> None:
        frozen = _fingerprint(stamp)
        if frozen is None:
            return
        key = id(stamp)
        if key not in self._entries:
            self._order.append(key)
            if len(self._order) > _MAX_FROZEN:
                self._entries.pop(self._order.popleft(), None)
        self._entries[key] = (stamp, frozen, label)

    def verify(self, stamp: Stamp) -> None:
        entry = self._entries.get(id(stamp))
        if entry is not None and entry[0] is stamp:
            self._verify_entry(entry)

    def verify_all(self) -> None:
        for entry in list(self._entries.values()):
            self._verify_entry(entry)

    @staticmethod
    def _verify_entry(entry: Tuple[Stamp, object, str]) -> None:
        stamp, frozen, label = entry
        current = _fingerprint(stamp)
        if current == frozen:
            return
        detail = ""
        if isinstance(stamp, MatrixStamp) and isinstance(frozen, bytes):
            from array import array

            old = array("q", frozen)
            size = stamp.size
            for idx in range(size * size):
                if stamp._buf[idx] != old[idx]:
                    detail = (
                        f": cell ({idx // size}, {idx % size}) changed "
                        f"{old[idx]} -> {stamp._buf[idx]}"
                    )
                    break
        raise SanitizerViolation(
            "stamp-mutation",
            f"stamp {stamp!r} published by {label} was mutated after it was "
            f"shared{detail}; published stamps must stay frozen so "
            "retransmissions carry the original bytes",
        )


class ClockSanitizer(CausalClock):
    """Wraps one :class:`CausalClock`, checking every protocol step.

    Pure delegation plus checks — no simulated cost, no extra state the
    protocol can observe. ``label`` names the wrapped clock in violations
    (e.g. ``"server 3, domain 'D'"``).
    """

    # R023: a diagnostic wrapper, not a bootable protocol — it is never
    # selected by name through the core registry.
    protocol_exempt = "delegating sanitizer wrapper, not a protocol variant"

    def __init__(
        self, inner: CausalClock, label: str, registry: _StampRegistry
    ) -> None:
        self.inner = inner
        self.label = label
        self.registry = registry
        self._shadow: List[int] = self._read_matrix()

    def _read_matrix(self) -> List[int]:
        size = self.inner.size
        return [
            self.inner.cell(row, col)
            for row in range(size)
            for col in range(size)
        ]

    def _check_monotonic(self, operation: str) -> None:
        size = self.inner.size
        shadow = self._shadow
        current = self._read_matrix()
        for idx in range(size * size):
            if current[idx] < shadow[idx]:
                raise SanitizerViolation(
                    "monotonicity",
                    f"{self.label}: cell ({idx // size}, {idx % size}) "
                    f"regressed {shadow[idx]} -> {current[idx]} during "
                    f"{operation}; matrix cells only ever grow",
                )
        self._shadow = current

    # -- CausalClock interface ----------------------------------------

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def owner(self) -> int:
        return self.inner.owner

    def prepare_send(self, dest: int) -> Stamp:
        stamp = self.inner.prepare_send(dest)
        self._check_monotonic("prepare_send")
        self.registry.publish(stamp, self.label)
        return stamp

    def can_deliver(self, stamp: Stamp) -> bool:
        self.registry.verify(stamp)
        return self.inner.can_deliver(stamp)

    def deliver(self, stamp: Stamp) -> None:
        self.registry.verify(stamp)
        me = self.inner.owner
        shipped = stamp.entry(stamp.sender, me)
        expected = self.inner.cell(stamp.sender, me) + 1
        if shipped is not None and shipped != expected:
            raise SanitizerViolation(
                "fifo",
                f"{self.label}: deliver() of a stamp from sender "
                f"{stamp.sender} with send-count {shipped}, but cell "
                f"({stamp.sender}, {me}) expects {expected}; messages from "
                "one sender must be delivered in FIFO order",
            )
        self.inner.deliver(stamp)
        self._check_monotonic("deliver")

    def is_duplicate(self, stamp: Stamp) -> bool:
        self.registry.verify(stamp)
        return self.inner.is_duplicate(stamp)

    def cell(self, row: int, col: int) -> int:
        return self.inner.cell(row, col)

    def dirty_cells(self) -> int:
        return self.inner.dirty_cells()

    def clear_dirty(self) -> None:
        self.inner.clear_dirty()

    def snapshot(self) -> Any:
        return self.inner.snapshot()

    def sync_image(self) -> Any:
        return self.inner.sync_image()

    def restore(self, snapshot: Any) -> None:
        self.inner.restore(snapshot)
        # a restore legitimately rolls volatile state back to the last
        # persisted image; re-baseline instead of flagging the rollback
        self._shadow = self._read_matrix()

    def __repr__(self) -> str:
        return f"ClockSanitizer({self.inner!r})"


def _vc_strictly_before(a: Dict[AgentId, int], b: Dict[AgentId, int]) -> bool:
    le = all(value <= b.get(key, 0) for key, value in a.items())
    return le and not all(value <= a.get(key, 0) for key, value in b.items())


class OrderChecker:
    """Online causal-delivery reference checker (vector clocks per agent).

    Maintains one vector clock per agent outside the system under test.
    Every app-level send is stamped; on every delivery, any *pending*
    message to the same agent whose send causally precedes this one proves
    the MOM delivered out of causal order.
    """

    def __init__(self) -> None:
        self._vcs: Dict[AgentId, Dict[AgentId, int]] = {}
        self._pending: Dict[AgentId, Dict[int, Dict[AgentId, int]]] = {}

    def _vc(self, agent: AgentId) -> Dict[AgentId, int]:
        vc = self._vcs.get(agent)
        if vc is None:
            vc = {}
            self._vcs[agent] = vc
        return vc

    def on_send(self, notification: Notification) -> None:
        if notification.sender == notification.target:
            return
        vc = self._vc(notification.sender)
        vc[notification.sender] = vc.get(notification.sender, 0) + 1
        self._pending.setdefault(notification.target, {})[
            notification.nid
        ] = dict(vc)

    def on_receive(self, notification: Notification) -> None:
        if notification.sender == notification.target:
            return
        target = notification.target
        bucket = self._pending.get(target, {})
        sent_vc = bucket.pop(notification.nid, None)
        if sent_vc is None:
            return  # replayed delivery after recovery; already checked
        for nid, other_vc in bucket.items():
            if _vc_strictly_before(other_vc, sent_vc):
                raise SanitizerViolation(
                    "causal-order",
                    f"notification {notification.nid} "
                    f"({notification.sender} -> {target}) delivered before "
                    f"notification {nid}, which causally precedes it and is "
                    f"addressed to the same agent",
                )
        vc = self._vc(target)
        for key, value in sent_vc.items():
            if value > vc.get(key, 0):
                vc[key] = value
        vc[target] = vc.get(target, 0) + 1


class BusSanitizer:
    """Instruments one :class:`~repro.mom.bus.MessageBus` in place."""

    def __init__(self, bus: Any, force_order_check: bool = False) -> None:
        self.bus = bus
        self.registry = _StampRegistry()
        self.clocks: List[ClockSanitizer] = []
        self.order_checker: Optional[OrderChecker] = None
        self._force_order_check = force_order_check
        self._attached = False

    def attach(self) -> "BusSanitizer":
        if self._attached:
            return self
        self._attached = True
        bus = self.bus
        # non-causal cores (per-pair FIFO baseline) are exempt from both
        # the clock wrappers and the order oracle: losing causal order is
        # their documented behaviour, not a bug
        causal_core = bus.config.core.causal
        if causal_core:
            for server in bus.servers.values():
                for item in server.channel.domain_items.values():
                    wrapper = ClockSanitizer(
                        item.clock,
                        f"server {server.server_id}, "
                        f"domain {item.domain_id!r}",
                        self.registry,
                    )
                    item._clock = wrapper
                    self.clocks.append(wrapper)
        # Causal order is only promised on validated (acyclic) topologies;
        # the theorem tests boot cyclic ones where violations are the
        # expected observation, not a bug.
        check_order = self._force_order_check or (
            bus.config.validate and causal_core
        )
        if check_order:
            checker = OrderChecker()
            self.order_checker = checker
            original_send = bus.record_app_send
            original_receive = bus.record_app_receive

            def record_app_send(notification: Notification) -> None:
                original_send(notification)
                checker.on_send(notification)

            def record_app_receive(notification: Notification) -> None:
                original_receive(notification)
                checker.on_receive(notification)

            bus.record_app_send = record_app_send
            bus.record_app_receive = record_app_receive

        original_run_until_idle = bus.run_until_idle

        def run_until_idle(max_events: int = 10_000_000) -> int:
            events = original_run_until_idle(max_events=max_events)
            self.check_quiesce()
            return events

        bus.run_until_idle = run_until_idle
        return self

    def check_quiesce(self) -> None:
        """Invariants that must hold once the bus has run to quiescence."""
        self.registry.verify_all()
        bus = self.bus
        if any(server.is_crashed for server in bus.servers.values()):
            # with a server down, held-back and queued messages are
            # legitimately waiting for its recovery
            return
        for server_id in sorted(bus.servers):
            server = bus.servers[server_id]
            held = server.channel.heldback_count
            if held:
                raise SanitizerViolation(
                    "holdback-leak",
                    f"server {server_id} still holds {held} held-back "
                    "envelope(s) at quiescence with every server up; a "
                    "held-back message that can never be released is a "
                    "lost message",
                )
            if server.engine.queued:
                raise SanitizerViolation(
                    "queue-leak",
                    f"server {server_id} still has {server.engine.queued} "
                    "queued reaction(s) at quiescence",
                )
        if bus.config.validate:
            from repro.topology.graph import find_domain_cycle

            cycle = find_domain_cycle(bus.config.topology)
            if cycle is not None:
                pretty = " -> ".join(str(d) for d in cycle)
                raise SanitizerViolation(
                    "cyclic-domains",
                    f"domain graph acquired a cycle after boot: {pretty}; "
                    "the causality theorem's precondition no longer holds",
                )


_original_bus_init: Optional[Any] = None


def is_installed() -> bool:
    return _original_bus_init is not None


def install() -> None:
    """Instrument every :class:`MessageBus` constructed from now on.

    Idempotent. The tests' conftest calls this when ``REPRO_SANITIZE=1``.
    """
    global _original_bus_init
    if _original_bus_init is not None:
        return
    from repro.mom.bus import MessageBus

    original = MessageBus.__init__

    def sanitized_init(self: Any, *args: Any, **kwargs: Any) -> None:
        original(self, *args, **kwargs)
        self._sanitizer = BusSanitizer(self).attach()

    MessageBus.__init__ = sanitized_init  # type: ignore[method-assign]
    _original_bus_init = original


def uninstall() -> None:
    """Undo :func:`install` (buses already built stay instrumented)."""
    global _original_bus_init
    if _original_bus_init is None:
        return
    from repro.mom.bus import MessageBus

    MessageBus.__init__ = _original_bus_init  # type: ignore[method-assign]
    _original_bus_init = None
