"""The protocol linter: repo-specific static rules over the ``ast`` module.

The PR-1 hot-path rewrite (flat copy-on-write clock buffers, change-log
window merges, journaled persistence) is correct only under invariants that
ordinary Python happily lets you violate from any module: mutate a clock's
buffer behind its back, draw unseeded randomness inside the simulation,
iterate a set into the event scheduler, compare virtual timestamps with
``==``. Each lint rule (see :mod:`repro.analysis.rules`) turns one such
invariant into a merge gate; ``python -m repro.analysis lint src/`` runs
them all.

Suppressions use the conventional ``# noqa`` comment syntax::

    clock._buf[0] = 1  # noqa: R001      -- suppress one rule on this line
    clock._buf[0] = 1  # noqa            -- suppress every rule on this line

Only the ``ast`` standard library is used — no third-party dependency.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

_NOQA_RE = re.compile(
    r"#\s*noqa(?P<codes>\s*:\s*[A-Z][A-Z0-9]*(?:\d+)?(?:\s*,\s*[A-Z][A-Z0-9]*\d*)*)?",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, pointing at ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class LintContext:
    """Everything a rule needs to know about the file under analysis."""

    def __init__(self, path: str, module: Optional[str], source: str):
        self.path = path
        self.module = module
        self.source = source

    def diagnostic(self, rule: str, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def module_name(path: Union[str, Path]) -> Optional[str]:
    """Derive the dotted module name from a path containing a ``repro``
    package directory, e.g. ``src/repro/mom/channel.py`` →
    ``repro.mom.channel``. Returns ``None`` for paths outside ``repro``
    (rules that key on package layout skip those files)."""
    parts = list(Path(path).parts)
    if not parts:
        return None
    last = parts[-1]
    if last.endswith(".py"):
        parts[-1] = last[:-3]
    try:
        # rightmost occurrence: the working directory itself may contain
        # a 'repro' component
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return None
    dotted = parts[anchor:]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def _suppressions(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Map line number → suppressed rule ids (``None`` = blanket noqa)."""
    table: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            table[lineno] = None
        else:
            names = codes.lstrip(" :").replace(" ", "").split(",")
            table[lineno] = frozenset(name.upper() for name in names if name)
    return table


def _suppressed(
    diagnostic: Diagnostic, table: Dict[int, Optional[FrozenSet[str]]]
) -> bool:
    entry = table.get(diagnostic.line, False)
    if entry is False:
        return False
    return entry is None or diagnostic.rule in entry


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = "",
    select: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Lint one source string. ``module=""`` (the default) derives the
    module name from ``path``; pass an explicit dotted name to override
    (the fixture tests do)."""
    from repro.analysis.rules import ALL_RULES

    if module == "":
        module = module_name(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="E999",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    context = LintContext(path=path, module=module, source=source)
    wanted = None if select is None else {code.upper() for code in select}
    table = _suppressions(source)
    findings: List[Diagnostic] = []
    for rule in ALL_RULES:
        if wanted is not None and rule.rule_id not in wanted:
            continue
        for diagnostic in rule.check(tree, context):
            if not _suppressed(diagnostic, table):
                findings.append(diagnostic)
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return findings


def lint_file(
    path: Union[str, Path], select: Optional[Iterable[str]] = None
) -> List[Diagnostic]:
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), module="", select=select)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(sorted(path.rglob("*.py")))
        else:
            found.append(path)
    return found


def lint_paths(
    paths: Sequence[Union[str, Path]], select: Optional[Iterable[str]] = None
) -> List[Diagnostic]:
    """Lint every ``*.py`` file under ``paths`` (files or directories)."""
    findings: List[Diagnostic] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, select=select))
    return findings
