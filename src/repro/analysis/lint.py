"""The protocol linter: repo-specific static rules over the ``ast`` module.

The PR-1 hot-path rewrite (flat copy-on-write clock buffers, change-log
window merges, journaled persistence) is correct only under invariants that
ordinary Python happily lets you violate from any module: mutate a clock's
buffer behind its back, draw unseeded randomness inside the simulation,
iterate a set into the event scheduler, compare virtual timestamps with
``==``. Each lint rule (see :mod:`repro.analysis.rules`) turns one such
invariant into a merge gate; ``python -m repro.analysis lint src/`` runs
them all.

Two rule tiers share one driver:

- *file rules* (R001–R006, R009–R012, R015, R016) see a single parsed
  tree at a time and run from :func:`lint_source`;
- *project rules* (R007, R008, R013, R014, R017) need the whole-program
  :class:`~repro.analysis.callgraph.Project` — call graph, effect
  summaries, the fork/pipe happens-before model — and run once per
  :func:`lint_paths` invocation.

Results are cached by file content hash (:class:`LintCache`): per-file
findings are keyed on each file's SHA-256, the project-level findings on
the combined hash of every file, and the whole cache is invalidated when
any ``repro.analysis`` source changes. A warm run re-hashes but never
re-parses. Each rule selection (``--rule``) gets its own cache bucket,
so selected and full runs coexist in one cache file.

Suppressions use the conventional ``# noqa`` comment syntax::

    clock._buf[0] = 1  # noqa: R001      -- suppress one rule on this line
    clock._buf[0] = 1  # noqa            -- suppress every rule on this line

A *baseline file* (``--baseline``) holds fingerprints of known findings
— ``(path, rule, message)`` triples — that are filtered from the report,
for adopting a new rule without a flag-day fixup.

Only the standard library is used — no third-party dependency.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

_NOQA_RE = re.compile(
    r"#\s*noqa(?P<codes>\s*:\s*[A-Z][A-Z0-9]*(?:\d+)?(?:\s*,\s*[A-Z][A-Z0-9]*\d*)*)?",
    re.IGNORECASE,
)

CACHE_FORMAT = "repro.analysis-cache/v3"
BASELINE_FORMAT = "repro.analysis-baseline/v1"


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, pointing at ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "Diagnostic":
        return cls(
            rule=str(raw["rule"]),
            path=str(raw["path"]),
            line=int(raw["line"]),  # type: ignore[arg-type]
            col=int(raw["col"]),  # type: ignore[arg-type]
            message=str(raw["message"]),
        )

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-insensitive identity, used by baseline suppression."""
        return (self.path, self.rule, self.message)


class LintContext:
    """Everything a rule needs to know about the file under analysis."""

    def __init__(self, path: str, module: Optional[str], source: str) -> None:
        self.path = path
        self.module = module
        self.source = source

    def diagnostic(self, rule: str, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def module_name(path: Union[str, Path]) -> Optional[str]:
    """Derive the dotted module name from a path containing a ``repro``
    package directory, e.g. ``src/repro/mom/channel.py`` →
    ``repro.mom.channel``. Returns ``None`` for paths outside ``repro``
    (rules that key on package layout skip those files)."""
    parts = list(Path(path).parts)
    if not parts:
        return None
    last = parts[-1]
    if last.endswith(".py"):
        parts[-1] = last[:-3]
    try:
        # rightmost occurrence: the working directory itself may contain
        # a 'repro' component
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return None
    dotted = parts[anchor:]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def _suppressions(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Map line number → suppressed rule ids (``None`` = blanket noqa)."""
    table: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            table[lineno] = None
        else:
            names = codes.lstrip(" :").replace(" ", "").split(",")
            table[lineno] = frozenset(name.upper() for name in names if name)
    return table


def _suppressed(
    diagnostic: Diagnostic, table: Dict[int, Optional[FrozenSet[str]]]
) -> bool:
    entry = table.get(diagnostic.line, False)
    if entry is False:
        return False
    return entry is None or diagnostic.rule in entry


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = "",
    select: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Lint one source string with the *file* rules. ``module=""`` (the
    default) derives the module name from ``path``; pass an explicit
    dotted name to override (the fixture tests do). Project rules
    (R007/R008) need :func:`lint_paths`."""
    from repro.analysis.rules import FILE_RULES

    if module == "":
        module = module_name(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="E999",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    context = LintContext(path=path, module=module, source=source)
    wanted = None if select is None else {code.upper() for code in select}
    table = _suppressions(source)
    findings: List[Diagnostic] = []
    for rule in FILE_RULES:
        if wanted is not None and rule.rule_id not in wanted:
            continue
        for diagnostic in rule.check(tree, context):
            if not _suppressed(diagnostic, table):
                findings.append(diagnostic)
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return findings


def lint_file(
    path: Union[str, Path], select: Optional[Iterable[str]] = None
) -> List[Diagnostic]:
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), module="", select=select)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(sorted(path.rglob("*.py")))
        else:
            found.append(path)
    return found


# ----------------------------------------------------------------------
# Content-hash cache
# ----------------------------------------------------------------------


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def analysis_signature() -> str:
    """Hash of every ``repro.analysis`` source file: a rule or engine
    change invalidates the whole cache."""
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for source_file in sorted(package_dir.glob("*.py")):
        digest.update(source_file.name.encode("utf-8"))
        digest.update(source_file.read_bytes())
    return digest.hexdigest()


def selection_key(select: Optional[Iterable[str]]) -> str:
    """Canonical cache-bucket key for a rule selection (``"*"`` = all)."""
    if select is None:
        return "*"
    codes = sorted({code.upper() for code in select})
    return ",".join(codes) if codes else "*"


def _rule_catalogue() -> List[str]:
    """Sorted rule ids of the active catalogue (imported lazily: the
    rule modules import this one for the base classes)."""
    from repro.analysis.rules import ALL_RULES

    return sorted(rule.rule_id for rule in ALL_RULES)


class LintCache:
    """JSON cache: per-file findings keyed by content hash, project
    findings keyed by the combined hash of every file.

    Since v2 results are bucketed per rule *selection*: a ``--rule R001``
    run and a full run read and write different buckets of the same
    cache file, so partial results never poison full ones, yet repeated
    selected runs still go warm.

    Since v3 the payload also records the rule catalogue that produced
    it: an entry written by an older toolchain (or one with a different
    rule set — e.g. before the R018–R023 contract tier landed) is
    rejected wholesale, even if the analysis-package signature check is
    ever weakened, so stale caches can never mask findings from newly
    added rules."""

    def __init__(self, path: Path, selection: str = "*") -> None:
        self.path = path
        self.selection = selection
        self.signature = analysis_signature()
        self.rules = _rule_catalogue()
        self._runs: Dict[str, Dict[str, object]] = {}
        self._files: Dict[str, Dict[str, object]] = {}
        self._project: Dict[str, object] = {}
        self._dirty = False
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            isinstance(raw, dict)
            and raw.get("format") == CACHE_FORMAT
            and raw.get("signature") == self.signature
            and raw.get("rules") == self.rules
            and isinstance(raw.get("runs"), dict)
        ):
            self._runs = raw["runs"]
            bucket = self._runs.get(selection)
            if isinstance(bucket, dict):
                files = bucket.get("files")
                project = bucket.get("project")
                if isinstance(files, dict):
                    self._files = files
                if isinstance(project, dict):
                    self._project = project

    def file_findings(self, path: str, sha: str) -> Optional[List[Diagnostic]]:
        entry = self._files.get(path)
        if not isinstance(entry, dict) or entry.get("sha") != sha:
            return None
        return [Diagnostic.from_dict(d) for d in entry.get("findings", [])]  # type: ignore[union-attr]

    def store_file(self, path: str, sha: str, findings: List[Diagnostic]) -> None:
        self._files[path] = {
            "sha": sha,
            "findings": [d.to_dict() for d in findings],
        }
        self._dirty = True

    def project_findings(self, key: str) -> Optional[List[Diagnostic]]:
        if self._project.get("key") != key:
            return None
        return [
            Diagnostic.from_dict(d) for d in self._project.get("findings", [])  # type: ignore[union-attr]
        ]

    def store_project(self, key: str, findings: List[Diagnostic]) -> None:
        self._project = {
            "key": key,
            "findings": [d.to_dict() for d in findings],
        }
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        self._runs[self.selection] = {
            "files": self._files,
            "project": self._project,
        }
        payload = {
            "format": CACHE_FORMAT,
            "signature": self.signature,
            "rules": self.rules,
            "runs": self._runs,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass  # a read-only checkout just runs cold


# ----------------------------------------------------------------------
# SARIF export
# ----------------------------------------------------------------------


SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemas/sarif-schema-2.1.0.json"
)


def to_sarif(findings: Sequence[Diagnostic]) -> Dict[str, object]:
    """SARIF 2.1.0 payload (GitHub code-scanning compatible) for a
    finding list. The full rule catalogue is embedded so annotations
    carry titles even for rules with no findings this run."""
    from repro.analysis.rules import ALL_RULES

    rules_meta: List[Dict[str, object]] = [
        {
            "id": rule.rule_id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title},
        }
        for rule in ALL_RULES
    ]
    known = {rule.rule_id for rule in ALL_RULES}
    for extra in sorted({d.rule for d in findings} - known):
        rules_meta.append(
            {"id": extra, "shortDescription": {"text": "parse failure"}}
        )
    results = [
        {
            "ruleId": d.rule,
            "level": "error",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(d.path).as_posix(),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {"startLine": d.line, "startColumn": d.col},
                    }
                }
            ],
        }
        for d in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {"driver": {"name": "repro.analysis", "rules": rules_meta}},
                "results": results,
            }
        ],
    }


# ----------------------------------------------------------------------
# Baseline suppressions
# ----------------------------------------------------------------------


def load_baseline(path: Union[str, Path]) -> FrozenSet[Tuple[str, str, str]]:
    """Fingerprints ``(path, rule, message)`` of accepted findings."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or raw.get("format") != BASELINE_FORMAT:
        raise ValueError(f"{path}: not a {BASELINE_FORMAT} file")
    entries = raw.get("findings", [])
    fingerprints = set()
    for entry in entries:
        fingerprints.add(
            (str(entry["path"]), str(entry["rule"]), str(entry["message"]))
        )
    return frozenset(fingerprints)


def write_baseline(path: Union[str, Path], findings: Sequence[Diagnostic]) -> None:
    payload = {
        "format": BASELINE_FORMAT,
        "findings": [
            {"path": d.path, "rule": d.rule, "message": d.message}
            for d in sorted(findings, key=lambda d: d.fingerprint())
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def apply_baseline(
    findings: Sequence[Diagnostic],
    baseline: FrozenSet[Tuple[str, str, str]],
) -> List[Diagnostic]:
    return [d for d in findings if d.fingerprint() not in baseline]


# ----------------------------------------------------------------------
# The whole-program driver
# ----------------------------------------------------------------------


def _lint_project(
    parsed: Sequence[Tuple[str, Optional[str], str, ast.Module]],
    select: Optional[Iterable[str]],
) -> List[Diagnostic]:
    """Run the project rules over every successfully parsed file."""
    from repro.analysis.callgraph import ModuleInfo, Project
    from repro.analysis.rules import PROJECT_RULES

    wanted = None if select is None else {code.upper() for code in select}
    rules = [
        rule
        for rule in PROJECT_RULES
        if wanted is None or rule.rule_id in wanted
    ]
    if not rules or not parsed:
        return []
    modules: List[ModuleInfo] = []
    contexts: Dict[str, LintContext] = {}
    tables: Dict[str, Dict[int, Optional[FrozenSet[str]]]] = {}
    for path, module, source, tree in parsed:
        name = module if module is not None else path
        modules.append(
            ModuleInfo(module=name, path=path, tree=tree, source=source)
        )
        contexts[name] = LintContext(path=path, module=module, source=source)
        tables[path] = _suppressions(source)
    project = Project(modules)
    findings: List[Diagnostic] = []
    for rule in rules:
        for diagnostic in rule.check_project(project, contexts):
            table = tables.get(diagnostic.path, {})
            if not _suppressed(diagnostic, table):
                findings.append(diagnostic)
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return findings


def lint_paths(
    paths: Sequence[Union[str, Path]],
    select: Optional[Iterable[str]] = None,
    cache: Optional[Union[str, Path]] = None,
    changed_only: Optional[Iterable[Union[str, Path]]] = None,
) -> List[Diagnostic]:
    """Lint every ``*.py`` file under ``paths``: file rules per file,
    then the project rules over the whole set. With ``cache``, per-file
    and project results are reused when content hashes match; a rule
    selection reads and writes its own cache bucket
    (:func:`selection_key`), so partial runs never poison full ones.
    ``changed_only`` (an iterable of file paths) scopes the *file* rules
    to those files — every file is still read and parsed so the project
    rules keep their whole-program view, but per-file diagnostics of
    unchanged files are neither computed nor reported (the ``--changed``
    pre-commit mode)."""
    store = (
        LintCache(Path(cache), selection_key(select))
        if cache is not None
        else None
    )
    scope = (
        None
        if changed_only is None
        else {Path(raw).resolve() for raw in changed_only}
    )
    sources: List[Tuple[str, Optional[str], str]] = []  # path, module, source
    file_findings: List[Diagnostic] = []
    for path in iter_python_files(paths):
        text = path.read_text(encoding="utf-8")
        key = str(path)
        sources.append((key, module_name(path), text))
        if scope is not None and path.resolve() not in scope:
            continue  # parsed for the project pass only
        cached = (
            store.file_findings(key, _sha(text)) if store is not None else None
        )
        if cached is not None:
            file_findings.extend(cached)
        else:
            found = lint_source(text, path=key, module="", select=select)
            file_findings.extend(found)
            if store is not None:
                store.store_file(key, _sha(text), found)

    project_key = _sha(
        "\n".join(f"{path}\0{_sha(text)}" for path, _, text in sources)
    )
    project_findings = (
        store.project_findings(project_key) if store is not None else None
    )
    if project_findings is None:
        parsed: List[Tuple[str, Optional[str], str, ast.Module]] = []
        for path, module, text in sources:
            try:
                parsed.append((path, module, text, ast.parse(text, filename=path)))
            except SyntaxError:
                continue  # already reported as E999 by the file pass
        project_findings = _lint_project(parsed, select)
        if store is not None:
            store.store_project(project_key, project_findings)
    if store is not None:
        store.save()

    findings = file_findings + project_findings
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return findings
