"""Shared rule machinery: base classes and helpers used by both the
core catalogue (:mod:`repro.analysis.rules`, R001–R017) and the plug-in
contract tier (:mod:`repro.analysis.contract`, R018–R023).

Extracted so the contract rules can depend on the base classes without
importing the full catalogue (which imports the contract tier at the
bottom to assemble ``ALL_RULES`` — a cycle if the bases lived there).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.analysis.callgraph import Project
from repro.analysis.effects import EffectEngine
from repro.analysis.lint import Diagnostic, LintContext

#: Method names that mutate their receiver in place — the container and
#: ``array`` mutators every write-detecting rule treats as stores.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "frombytes",
        "fromlist",
        "byteswap",
    }
)


class Rule:
    """Base class: subclasses set ``rule_id``/``title`` and yield
    diagnostics from :meth:`check`."""

    rule_id: str = ""
    title: str = ""

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that needs the whole :class:`Project` (call graph, effect
    summaries). The per-file :meth:`check` yields nothing; the lint
    driver calls :meth:`check_project` once per run."""

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Diagnostic]:
        return iter(())

    def check_project(
        self, project: Project, contexts: Dict[str, LintContext]
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError


def package_of(module: Optional[str]) -> Optional[str]:
    """``repro.mom.channel`` → ``mom``; ``None``/non-repro → ``None``."""
    if not module or not module.startswith("repro"):
        return None
    parts = module.split(".")
    if len(parts) < 2:
        return None
    return parts[1]


def effect_engine(project: Project) -> EffectEngine:
    """One :class:`EffectEngine` per project, shared across rules."""
    engine = getattr(project, "_effect_engine", None)
    if engine is None:
        engine = EffectEngine(project)
        project._effect_engine = engine  # type: ignore[attr-defined]
    return engine


def function_defs(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
