"""Small-scope protocol model checker: the dynamic half of the core
admission gate.

The contract rules (R018–R023) prove *structural* properties of a
:class:`~repro.protocol.core.CausalCore` — isolation, conformance, guard
purity, picklability. This module checks the *behavioural* property they
cannot: that the core's ``stamp``/``deliverable``/``duplicate``/``merge``
quadruple actually implements causal delivery.

It exhaustively explores every interleaving of sends and arrivals for a
small scope (n ≤ 3 servers, m ≤ 4 messages — the "small scope
hypothesis": protocol bugs that exist at all show up in tiny
configurations), holding back undeliverable messages exactly like the
channel does, and checks two properties in every reachable state:

- **causal delivery** — against an independent vector-clock oracle: when
  the core admits message ``x`` at its destination, every message ``y``
  to the same destination whose send happened-before ``x``'s send must
  already be delivered there;
- **no hold-back leak** — in every terminal state (all messages sent and
  arrived) the hold-back stores are empty and every message was
  delivered exactly once. A merge that forgets causal knowledge (the
  classic "drop one matrix row" bug) parks its successors in hold-back
  forever; the checker prints the interleaving that wedges.

Cores are taken from the registry by name, or loaded from a ``.py`` file
after a *static admission scan*: the candidate module's AST must not
import outside a small whitelist or call process/filesystem primitives —
so pointing the checker at a file never runs arbitrary effects, it only
exercises the protocol surface.

CLI::

    python -m repro.analysis model matrix
    python -m repro.analysis model --all
    python -m repro.analysis model path/to/candidate_core.py --servers 2

Exit status: 0 admitted (or nothing to check), 1 property violation,
2 usage/scan error.
"""

from __future__ import annotations

import ast
import copy
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

# ----------------------------------------------------------------------
# Static admission scan for file-loaded candidate cores
# ----------------------------------------------------------------------

#: Import roots a candidate core module may use. Everything a protocol
#: implementation legitimately needs; nothing that touches the world.
ALLOWED_IMPORT_ROOTS = frozenset(
    {
        "abc",
        "array",
        "collections",
        "copy",
        "dataclasses",
        "enum",
        "functools",
        "itertools",
        "math",
        "typing",
        "repro",
    }
)

#: Call names that end the admission scan immediately.
FORBIDDEN_CALLS = frozenset(
    {
        "open",
        "exec",
        "eval",
        "compile",
        "__import__",
        "input",
        "breakpoint",
        "exit",
        "quit",
    }
)


class ScanError(Exception):
    """The candidate module failed the static admission scan."""


def scan_candidate(source: str, origin: str) -> ast.Module:
    """Parse ``source`` and verify it stays inside the protocol sandbox.

    Returns the parsed tree; raises :class:`ScanError` with the first
    offending construct otherwise.
    """
    try:
        tree = ast.parse(source, filename=origin)
    except SyntaxError as exc:
        raise ScanError(f"{origin}: not parseable: {exc}") from exc
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root not in ALLOWED_IMPORT_ROOTS:
                    raise ScanError(
                        f"{origin}:{node.lineno}: import of '{alias.name}' "
                        "is outside the candidate-core sandbox"
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if node.level == 0 and root not in ALLOWED_IMPORT_ROOTS:
                raise ScanError(
                    f"{origin}:{node.lineno}: import from '{node.module}' "
                    "is outside the candidate-core sandbox"
                )
        elif isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in FORBIDDEN_CALLS:
                raise ScanError(
                    f"{origin}:{node.lineno}: call to {name}() is outside "
                    "the candidate-core sandbox"
                )
    return tree


def load_candidate(path: Path):
    """Scan, import and return the candidate core declared in ``path``.

    The module either binds a ``CORE`` attribute to a
    :class:`~repro.protocol.core.CausalCore` instance, or defines exactly
    one concrete ``CausalCore`` subclass (which is instantiated with no
    arguments).
    """
    import importlib.util
    import inspect

    from repro.protocol.core import CausalCore

    source = path.read_text(encoding="utf-8")
    scan_candidate(source, str(path))
    spec = importlib.util.spec_from_file_location(
        f"repro_model_candidate_{path.stem}", path
    )
    if spec is None or spec.loader is None:
        raise ScanError(f"{path}: not importable")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    core = getattr(module, "CORE", None)
    if isinstance(core, CausalCore):
        return core
    candidates = [
        obj
        for obj in vars(module).values()
        if inspect.isclass(obj)
        and issubclass(obj, CausalCore)
        and not inspect.isabstract(obj)
        and obj.__module__ == module.__name__
    ]
    if len(candidates) != 1:
        raise ScanError(
            f"{path}: expected a CORE attribute or exactly one concrete "
            f"CausalCore subclass, found {len(candidates)}"
        )
    return candidates[0]()


# ----------------------------------------------------------------------
# State freezing (memoization over explored worlds)
# ----------------------------------------------------------------------


def _freeze(obj) -> object:
    """A hashable, equality-faithful snapshot of arbitrary clock/stamp
    state — dicts, sets, arrays, deques, ``__slots__``/``__dict__``
    objects all reduce to nested tuples."""
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if isinstance(obj, (list, tuple)):
        return tuple(_freeze(item) for item in obj)
    if isinstance(obj, array):
        return ("array", obj.typecode, tuple(obj))
    if isinstance(obj, dict):
        return tuple(
            sorted(
                ((_freeze(k), _freeze(v)) for k, v in obj.items()),
                key=repr,
            )
        )
    if isinstance(obj, (set, frozenset)):
        return tuple(sorted((_freeze(item) for item in obj), key=repr))
    if hasattr(obj, "__dict__") and vars(obj):
        return (type(obj).__name__, _freeze(vars(obj)))
    slots = getattr(type(obj), "__slots__", None)
    if slots is not None:
        pairs = []
        for name in slots:
            if hasattr(obj, name):
                pairs.append((name, _freeze(getattr(obj, name))))
        return (type(obj).__name__, tuple(pairs))
    try:
        return tuple(_freeze(item) for item in iter(obj))
    except TypeError:
        return repr(obj)


# ----------------------------------------------------------------------
# The explored world
# ----------------------------------------------------------------------


class _Msg:
    """One in-model message: protocol stamp plus oracle metadata."""

    def __init__(
        self, mid: int, sender: int, dest: int, stamp, vc: Tuple[int, ...]
    ) -> None:
        self.mid = mid
        self.sender = sender
        self.dest = dest
        self.stamp = stamp
        self.vc = vc

    def label(self) -> str:
        return f"m{self.mid}(s{self.sender}->s{self.dest})"


class PropertyViolation(Exception):
    def __init__(self, kind: str, detail: str) -> None:
        super().__init__(detail)
        self.kind = kind
        self.detail = detail


class _World:
    """One reachable protocol state: clocks, oracle VCs, message books."""

    def __init__(self, core, servers: int) -> None:
        self.core = core
        self.servers = servers
        self.clocks = [core.create_clock(servers, i) for i in range(servers)]
        self.vcs = [[0] * servers for _ in range(servers)]
        self.flight: List[_Msg] = []
        self.holdback: List[List[_Msg]] = [[] for _ in range(servers)]
        self.delivered: List[List[int]] = [[] for _ in range(servers)]
        self.msgs: Dict[int, _Msg] = {}
        self.sent = 0

    def clone(self) -> "_World":
        # one deepcopy call for the whole world, so object sharing
        # between a clock and its in-flight stamps is preserved
        return copy.deepcopy(self)

    def freeze(self) -> object:
        return (
            _freeze(self.clocks),
            _freeze(self.vcs),
            tuple(sorted((m.mid, _freeze(m.stamp)) for m in self.flight)),
            tuple(
                tuple((m.mid, _freeze(m.stamp)) for m in held)
                for held in self.holdback
            ),
            tuple(tuple(d) for d in self.delivered),
            self.sent,
        )

    # -- transitions ----------------------------------------------------

    def send(self, sender: int, dest: int) -> str:
        stamp = self.core.stamp(self.clocks[sender], dest)
        self.vcs[sender][sender] += 1
        msg = _Msg(self.sent, sender, dest, stamp, tuple(self.vcs[sender]))
        self.msgs[msg.mid] = msg
        self.flight.append(msg)
        self.sent += 1
        return f"send {msg.label()}"

    def arrive(self, index: int) -> str:
        msg = self.flight.pop(index)
        dest = msg.dest
        clock = self.clocks[dest]
        if self.core.duplicate(clock, msg.stamp):
            return f"arrive {msg.label()}: dropped as duplicate"
        if self.core.deliverable(clock, msg.stamp):
            self._deliver(msg)
            drained = self._drain(dest)
            note = f" (released {drained} held)" if drained else ""
            return f"arrive {msg.label()}: delivered{note}"
        self.holdback[dest].append(msg)
        return f"arrive {msg.label()}: held back"

    # -- delivery + oracle ----------------------------------------------

    def _deliver(self, msg: _Msg) -> None:
        dest = msg.dest
        for other in self.msgs.values():
            if (
                other.mid != msg.mid
                and other.dest == dest
                and other.mid not in self.delivered[dest]
                and _strictly_before(other.vc, msg.vc)
            ):
                raise PropertyViolation(
                    "causal-violation",
                    f"{msg.label()} delivered at s{dest} before its causal "
                    f"predecessor {other.label()} "
                    f"(send VCs {other.vc} < {msg.vc})",
                )
        self.core.merge(self.clocks[dest], msg.stamp)
        vc = self.vcs[dest]
        for i, value in enumerate(msg.vc):
            if value > vc[i]:
                vc[i] = value
        self.delivered[dest].append(msg.mid)

    def _drain(self, dest: int) -> int:
        """Release held-back messages the fresh clock now admits, in
        arrival order, to fixpoint — the channel's release loop."""
        clock = self.clocks[dest]
        released = 0
        progress = True
        while progress:
            progress = False
            for held in list(self.holdback[dest]):
                if self.core.duplicate(clock, held.stamp):
                    self.holdback[dest].remove(held)
                    progress = True
                    break
                if self.core.deliverable(clock, held.stamp):
                    self.holdback[dest].remove(held)
                    self._deliver(held)
                    released += 1
                    progress = True
                    break
        return released

    # -- terminal-state audit -------------------------------------------

    def audit_terminal(self) -> None:
        held = sum(len(h) for h in self.holdback)
        if held:
            stuck = ", ".join(
                m.label() for h in self.holdback for m in h
            )
            raise PropertyViolation(
                "holdback-leak",
                f"terminal state with {held} message(s) wedged in "
                f"hold-back: {stuck}; the merge failed to unlock their "
                "deliverability",
            )
        delivered = sum(len(d) for d in self.delivered)
        if delivered != self.sent:
            raise PropertyViolation(
                "lost-message",
                f"terminal state delivered {delivered} of {self.sent} "
                "messages; the duplicate test dropped a live message",
            )


def _strictly_before(a: Sequence[int], b: Sequence[int]) -> bool:
    return all(x <= y for x, y in zip(a, b)) and tuple(a) != tuple(b)


# ----------------------------------------------------------------------
# Exhaustive exploration
# ----------------------------------------------------------------------

MAX_SERVERS = 3
MAX_MESSAGES = 4


@dataclass
class ModelResult:
    """Outcome of one admission run."""

    core: str
    ok: bool
    kind: str  # admitted | causal-violation | holdback-leak | lost-message
    servers: int
    messages: int
    states: int
    detail: str = ""
    trace: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "core": self.core,
            "ok": self.ok,
            "kind": self.kind,
            "servers": self.servers,
            "messages": self.messages,
            "states": self.states,
            "detail": self.detail,
            "trace": list(self.trace),
        }

    def format(self) -> str:
        head = (
            f"core '{self.core}': "
            f"{'ADMITTED' if self.ok else self.kind.upper()} "
            f"(n={self.servers}, m={self.messages}, "
            f"{self.states} states explored)"
        )
        if self.ok:
            return head
        lines = [head, f"  {self.detail}", "  counterexample interleaving:"]
        lines.extend(
            f"    {i + 1}. {step}" for i, step in enumerate(self.trace)
        )
        return "\n".join(lines)


def check_core(core, servers: int = 3, messages: int = 3) -> ModelResult:
    """Explore every interleaving of ``messages`` sends and their
    arrivals across ``servers`` servers; first violation wins."""
    servers = min(servers, MAX_SERVERS)
    messages = min(messages, MAX_MESSAGES)
    root = _World(core, servers)
    seen: Set[object] = set()
    stack: List[Tuple[_World, List[str]]] = [(root, [])]
    states = 0
    while stack:
        world, trace = stack.pop()
        key = world.freeze()
        if key in seen:
            continue
        seen.add(key)
        states += 1
        moves: List[Tuple[str, int, int]] = []
        if world.sent < messages:
            for sender in range(servers):
                for dest in range(servers):
                    if sender != dest:
                        moves.append(("send", sender, dest))
        for index in range(len(world.flight)):
            moves.append(("arrive", index, -1))
        if not moves:
            try:
                world.audit_terminal()
            except PropertyViolation as violation:
                return ModelResult(
                    core=core.name,
                    ok=False,
                    kind=violation.kind,
                    servers=servers,
                    messages=messages,
                    states=states,
                    detail=violation.detail,
                    trace=trace,
                )
            continue
        for kind, a, b in moves:
            child = world.clone()
            label = (
                f"send s{a}->s{b}"
                if kind == "send"
                else f"arrive {world.flight[a].label()}"
            )
            try:
                step = child.send(a, b) if kind == "send" else child.arrive(a)
            except PropertyViolation as violation:
                return ModelResult(
                    core=core.name,
                    ok=False,
                    kind=violation.kind,
                    servers=servers,
                    messages=messages,
                    states=states,
                    detail=violation.detail,
                    trace=trace + [label],
                )
            stack.append((child, trace + [step]))
    return ModelResult(
        core=core.name,
        ok=True,
        kind="admitted",
        servers=servers,
        messages=messages,
        states=states,
    )


def check_named(
    name: str, servers: int = 3, messages: int = 3
) -> ModelResult:
    import repro.protocol.cores  # noqa: F401  (registration side effect)
    from repro.protocol.registry import get_core

    return check_core(get_core(name), servers=servers, messages=messages)


def checkable_cores() -> Iterator[Tuple[str, bool]]:
    """(name, causal) for every registered core, import side effects
    included (the built-ins register on package import)."""
    import repro.protocol.cores  # noqa: F401  (registration side effect)
    from repro.protocol.registry import registered_cores

    for core in registered_cores():
        yield core.name, core.causal
