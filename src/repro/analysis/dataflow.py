"""A small dataflow framework over :mod:`repro.analysis.cfg`.

Three pieces:

- a generic forward worklist solver (:func:`solve_forward`) with
  per-edge transfer functions, so branch outcomes can refine facts;
- reaching definitions (:func:`reaching_definitions`), the classic
  may-analysis, used by tests and available to rules;
- a *must* non-``None`` facts analysis (:func:`non_none_facts`): at each
  node, the set of canonical expressions (``self._tracer``,
  ``item.acct``, plain locals) proven non-``None`` on **every** path
  from the function entry — i.e. dominated by an ``is not None`` guard.
  This drives rule R009 (hook-guard discipline).

Canonical expressions are dotted chains of names and attributes
(``a.b.c``); anything containing a call or subscript is not canonical
and cannot carry a fact.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG, ENTRY, FALSE, TRUE, CFGNode

Fact = FrozenSet[str]

# ----------------------------------------------------------------------
# Canonical expression chains
# ----------------------------------------------------------------------


def expr_chain(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for pure Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def assigned_chains(stmt: ast.stmt) -> Iterator[str]:
    """Canonical chains (re)bound by a statement — assignment targets,
    loop variables, ``with ... as`` names, deletions."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [
            item.optional_vars for item in stmt.items if item.optional_vars
        ]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        for leaf in _flatten_target(target):
            chain = expr_chain(leaf)
            if chain is not None:
                yield chain


def _flatten_target(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_target(element)
    elif isinstance(target, ast.Starred):
        yield from _flatten_target(target.value)
    else:
        yield target


# ----------------------------------------------------------------------
# Generic forward solver
# ----------------------------------------------------------------------

#: transfer(node, in_fact, edge_label) -> out_fact along that edge
EdgeTransfer = Callable[[CFGNode, Fact, str], Fact]
Join = Callable[[List[Fact]], Fact]


def solve_forward(
    cfg: CFG,
    entry_fact: Fact,
    transfer: EdgeTransfer,
    join: Join,
) -> Dict[int, Fact]:
    """Iterate edge-wise transfer functions to a fixpoint; returns the
    IN fact of every node. Unreached nodes keep ``None``-like top facts
    out of the result (they simply stay absent)."""
    in_facts: Dict[int, Fact] = {ENTRY: entry_fact}
    order = list(range(len(cfg.nodes)))
    changed = True
    while changed:
        changed = False
        for index in order:
            incoming: List[Fact] = []
            for pred, label in cfg.preds[index]:
                if pred not in in_facts:
                    continue  # predecessor not yet reached
                incoming.append(transfer(cfg.nodes[pred], in_facts[pred], label))
            if index == ENTRY:
                continue
            if not incoming:
                continue
            fact = join(incoming)
            if index not in in_facts or in_facts[index] != fact:
                in_facts[index] = fact
                changed = True
    return in_facts


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------


def reaching_definitions(cfg: CFG) -> Dict[int, Set[Tuple[str, int]]]:
    """``IN[n]`` = set of ``(name, defining-node)`` pairs that may reach
    node ``n``. Definitions are canonical chains bound by a statement."""
    defs_of: Dict[int, FrozenSet[str]] = {}
    for index, stmt in cfg.statements():
        bound = frozenset(assigned_chains(stmt))
        if bound:
            defs_of[index] = bound

    def transfer(node: CFGNode, fact: Fact, label: str) -> Fact:
        bound = defs_of.get(node.index)
        if not bound:
            return fact
        kept = frozenset(
            entry for entry in fact if entry.rsplit("@", 1)[0] not in bound
        )
        fresh = frozenset(f"{name}@{node.index}" for name in bound)
        return kept | fresh

    def join(facts: List[Fact]) -> Fact:
        out: Set[str] = set()
        for fact in facts:
            out |= fact
        return frozenset(out)

    encoded = solve_forward(cfg, frozenset(), transfer, join)
    result: Dict[int, Set[Tuple[str, int]]] = {}
    for index, fact in encoded.items():
        pairs: Set[Tuple[str, int]] = set()
        for entry in fact:
            name, _, where = entry.rpartition("@")
            pairs.add((name, int(where)))
        result[index] = pairs
    return result


# ----------------------------------------------------------------------
# Non-None must-facts (guard discipline)
# ----------------------------------------------------------------------


def guard_facts_from_test(test: ast.expr, branch: bool) -> FrozenSet[str]:
    """Chains proven non-``None`` when ``test`` evaluates to ``branch``.

    Understands ``x is not None`` / ``x is None``, plain truthiness of a
    chain, and ``and`` conjunctions (on the true branch every conjunct's
    facts hold).
    """
    facts: Set[str] = set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        if branch:
            for value in test.values:
                facts |= guard_facts_from_test(value, True)
        return frozenset(facts)
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        if not branch:  # `or` false => every disjunct false
            for value in test.values:
                facts |= guard_facts_from_test(value, False)
        return frozenset(facts)
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return guard_facts_from_test(test.operand, not branch)
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, op, right = test.left, test.ops[0], test.comparators[0]
        is_none_cmp = isinstance(right, ast.Constant) and right.value is None
        if is_none_cmp:
            chain = expr_chain(left)
            if chain is not None:
                if isinstance(op, ast.IsNot) and branch:
                    facts.add(chain)
                elif isinstance(op, ast.Is) and not branch:
                    facts.add(chain)
        return frozenset(facts)
    # plain truthiness: `if self._tracer:` — accepted as a guard
    chain = expr_chain(test)
    if chain is not None and branch:
        facts.add(chain)
    return frozenset(facts)


def _assert_facts(stmt: ast.stmt) -> FrozenSet[str]:
    if isinstance(stmt, ast.Assert):
        return guard_facts_from_test(stmt.test, True)
    return frozenset()


def non_none_facts(cfg: CFG) -> Dict[int, FrozenSet[str]]:
    """IN facts per node: chains non-``None`` on every path from entry.

    Facts are generated by branch edges (``TRUE``/``FALSE`` outcomes of
    guard tests), ``assert`` statements, and assignments from obviously
    non-``None`` literal constructors; they are killed by any rebinding
    of the chain or of one of its prefixes.
    """

    def transfer(node: CFGNode, fact: Fact, label: str) -> Fact:
        out: Set[str] = set(fact)
        stmt = node.stmt
        if stmt is not None and node.kind != "finally":
            killed = list(assigned_chains(stmt))
            if killed:
                out = {
                    f
                    for f in out
                    if not any(f == k or f.startswith(k + ".") for k in killed)
                }
            out |= _assert_facts(stmt)
        if node.kind in ("test", "loop") and stmt is not None:
            test = getattr(stmt, "test", None)
            if test is not None and label in (TRUE, FALSE):
                out |= guard_facts_from_test(test, label == TRUE)
        return frozenset(out)

    def join(facts: List[Fact]) -> Fact:
        if not facts:
            return frozenset()
        out = set(facts[0])
        for fact in facts[1:]:
            out &= fact
        return frozenset(out)

    return solve_forward(cfg, frozenset(), transfer, join)
