"""Static and dynamic analysis for the causal-middleware reproduction.

Two complementary halves:

- :mod:`repro.analysis.lint` — an AST linter (rules R001–R017) that makes
  the invariants behind the middleware — copy-on-write clock buffers,
  seeded determinism, ordered iteration, layered imports, whole-program
  taint and effect discipline (R007–R012) and the fork/pipe concurrency
  rules built on the happens-before model in
  :mod:`repro.analysis.concurrency` (R013–R017) — violations you cannot
  merge. Run it with ``python -m repro.analysis lint src/``.
- :mod:`repro.analysis.sanitizer` — an opt-in runtime sanitizer
  (``REPRO_SANITIZE=1``) that wraps live clocks and the bus to catch
  stamp-mutation-after-share, matrix-cell monotonicity violations,
  holdback leaks at quiescence and causal-order violations while the
  normal test suite runs.
"""

from repro.analysis.lint import (
    Diagnostic,
    lint_file,
    lint_paths,
    lint_source,
    module_name,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_ID
from repro.analysis.sanitizer import (
    BusSanitizer,
    ClockSanitizer,
    OrderChecker,
    SanitizerViolation,
    install,
    is_installed,
    uninstall,
)

__all__ = [
    "Diagnostic",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_name",
    "ALL_RULES",
    "RULES_BY_ID",
    "BusSanitizer",
    "ClockSanitizer",
    "OrderChecker",
    "SanitizerViolation",
    "install",
    "is_installed",
    "uninstall",
]
