"""Intraprocedural control-flow graphs over the ``ast`` module.

One :class:`CFG` per function body. Nodes are individual statements plus
three synthetic nodes (entry, normal exit, raise exit); edges carry a
label — ``normal``, ``true``/``false`` for branch outcomes, ``exc`` for
exception edges. The builder understands branches, loops (with explicit
back-edges), ``try``/``except``/``else``/``finally``, ``with`` blocks,
``break``/``continue``/``return``/``raise``.

Precision notes (deliberate over-approximations, all safe for the rules
built on top):

- every statement that contains a call, subscript or attribute access is
  treated as may-raise; ``pass``/``continue``-style statements are not;
- a ``finally`` body is built once and its continuation is the union of
  every way control could have entered it (normal fall-through, caught
  or uncaught exception, ``return``/``break``/``continue``), so a path
  through ``finally`` may over-approximate where it resumes;
- an exception raised in a ``try`` body gets edges to *every* handler of
  every enclosing ``try`` (a handler's type may not match) and to the
  raise exit.

The graph is deterministic: node indices follow source order, successor
lists follow insertion order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Edge labels.
NORMAL = "normal"
TRUE = "true"
FALSE = "false"
EXC = "exc"

#: Synthetic node indices (fixed for every CFG).
ENTRY = 0
EXIT = 1
RAISE = 2


@dataclass
class CFGNode:
    """One CFG node: a statement, or a synthetic entry/exit marker."""

    index: int
    stmt: Optional[ast.stmt]
    kind: str  # "entry" | "exit" | "raise" | "stmt" | "test" | "loop" | "finally"

    def __repr__(self) -> str:
        what = type(self.stmt).__name__ if self.stmt is not None else "-"
        return f"CFGNode({self.index}, {self.kind}, {what})"


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.nodes: List[CFGNode] = []
        self.succs: Dict[int, List[Tuple[int, str]]] = {}
        self.preds: Dict[int, List[Tuple[int, str]]] = {}
        self.back_edges: Set[Tuple[int, int]] = set()
        self._by_stmt: Dict[int, int] = {}
        for kind in ("entry", "exit", "raise"):
            self._add_node(None, kind)

    # -- construction ---------------------------------------------------

    def _add_node(self, stmt: Optional[ast.stmt], kind: str) -> int:
        index = len(self.nodes)
        self.nodes.append(CFGNode(index, stmt, kind))
        self.succs[index] = []
        self.preds[index] = []
        if stmt is not None and id(stmt) not in self._by_stmt:
            self._by_stmt[id(stmt)] = index
        return index

    def _add_edge(self, src: int, dst: int, label: str) -> None:
        if (dst, label) not in self.succs[src]:
            self.succs[src].append((dst, label))
            self.preds[dst].append((src, label))

    # -- queries --------------------------------------------------------

    def node_of(self, stmt: ast.stmt) -> Optional[int]:
        """The node index of a statement object, if it is in this CFG."""
        return self._by_stmt.get(id(stmt))

    def statements(self) -> Iterator[Tuple[int, ast.stmt]]:
        for node in self.nodes:
            if node.stmt is not None and node.kind != "finally":
                yield node.index, node.stmt

    def successors(self, index: int) -> List[Tuple[int, str]]:
        return self.succs[index]

    def predecessors(self, index: int) -> List[Tuple[int, str]]:
        return self.preds[index]

    def dominators(self) -> Dict[int, Set[int]]:
        """``dom[n]`` = nodes on *every* path from entry to ``n``
        (iterative dataflow; deterministic)."""
        all_nodes = set(range(len(self.nodes)))
        dom: Dict[int, Set[int]] = {n: set(all_nodes) for n in all_nodes}
        dom[ENTRY] = {ENTRY}
        changed = True
        while changed:
            changed = False
            for n in range(len(self.nodes)):
                if n == ENTRY:
                    continue
                preds = [p for p, _ in self.preds[n]]
                if preds:
                    new = set.intersection(*(dom[p] for p in preds))
                else:
                    new = set()
                new.add(n)
                if new != dom[n]:
                    dom[n] = new
                    changed = True
        return dom

    def reaches_exit_without(
        self,
        start: int,
        blockers: Set[int],
        require_exc_edge: bool = False,
    ) -> bool:
        """Is the normal exit reachable from ``start``'s successors on a
        path that avoids every node in ``blockers``?

        With ``require_exc_edge`` the path must additionally traverse at
        least one exception edge (used by the hold-back-leak rule: an
        entry that survives only because a handler swallowed the error).
        Paths ending at the raise exit never count — an uncaught
        exception crashes the run loudly, which is not a silent leak.
        """
        seen: Set[Tuple[int, bool]] = set()
        stack: List[Tuple[int, bool]] = [(start, False)]
        while stack:
            node, crossed = stack.pop()
            for succ, label in self.succs[node]:
                state = (succ, crossed or label == EXC)
                if state in seen:
                    continue
                seen.add(state)
                if succ in blockers or succ == RAISE:
                    continue
                if succ == EXIT:
                    if state[1] or not require_exc_edge:
                        return True
                    continue
                stack.append(state)
        return False

    def __repr__(self) -> str:
        return f"CFG(nodes={len(self.nodes)}, edges={sum(len(v) for v in self.succs.values())})"


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------

#: Dangling edge: (source node, label) waiting for its target.
_Dangling = Tuple[int, str]


@dataclass
class _TryFrame:
    """One enclosing ``try`` while its body/handlers are being built."""

    handler_entries: List[int] = field(default_factory=list)
    finally_entry: Optional[int] = None
    #: which kinds of control flow were routed into the finally body
    flows: Set[str] = field(default_factory=set)
    #: loop targets for break/continue that passed through the finally
    break_targets: List["_LoopFrame"] = field(default_factory=list)
    continue_targets: List["_LoopFrame"] = field(default_factory=list)


@dataclass
class _LoopFrame:
    header: int
    breaks: List[_Dangling] = field(default_factory=list)


def _may_raise(stmt: ast.stmt) -> bool:
    """Conservative: anything that evaluates a call, attribute,
    subscript, binary operation or raise can raise."""
    if isinstance(stmt, (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)):
        return False
    if isinstance(stmt, ast.Raise):
        return True
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(
            node,
            (ast.Call, ast.Attribute, ast.Subscript, ast.BinOp, ast.Raise, ast.Assert),
        ):
            return True
        # don't descend into nested function/class bodies
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ) and node is not stmt:
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


class _Builder:
    def __init__(self, func: ast.AST, body: Sequence[ast.stmt]) -> None:
        self.cfg = CFG(func)
        self.loops: List[_LoopFrame] = []
        self.frames: List[_TryFrame] = []
        dangling = self._stmts(body, [(ENTRY, NORMAL)])
        self._connect(dangling, EXIT)

    # -- plumbing -------------------------------------------------------

    def _connect(self, dangling: List[_Dangling], target: int) -> None:
        for src, label in dangling:
            self.cfg._add_edge(src, target, label)

    def _exception_targets(self) -> List[int]:
        """Every node an exception from here could transfer to."""
        targets: List[int] = []
        for frame in reversed(self.frames):
            targets.extend(frame.handler_entries)
            if frame.finally_entry is not None:
                targets.append(frame.finally_entry)
                frame.flows.add("exc")
        targets.append(RAISE)
        return targets

    def _add_raise_edges(self, node: int) -> None:
        for target in self._exception_targets():
            self.cfg._add_edge(node, target, EXC)

    def _innermost_finally(self) -> Optional[_TryFrame]:
        for frame in reversed(self.frames):
            if frame.finally_entry is not None:
                return frame
        return None

    # -- statement dispatch ---------------------------------------------

    def _stmts(
        self, body: Sequence[ast.stmt], dangling: List[_Dangling]
    ) -> List[_Dangling]:
        for stmt in body:
            dangling = self._stmt(stmt, dangling)
        return dangling

    def _stmt(self, stmt: ast.stmt, dangling: List[_Dangling]) -> List[_Dangling]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, dangling)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, dangling)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, dangling)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, dangling)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, dangling)
        if isinstance(stmt, (ast.Return,)):
            return self._return(stmt, dangling)
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, dangling)
        if isinstance(stmt, ast.Break):
            return self._break(stmt, dangling)
        if isinstance(stmt, ast.Continue):
            return self._continue(stmt, dangling)
        # simple statement (incl. nested def/class treated opaquely)
        node = self.cfg._add_node(stmt, "stmt")
        self._connect(dangling, node)
        if _may_raise(stmt):
            self._add_raise_edges(node)
        return [(node, NORMAL)]

    # -- control constructs ---------------------------------------------

    def _if(self, stmt: ast.If, dangling: List[_Dangling]) -> List[_Dangling]:
        test = self.cfg._add_node(stmt, "test")
        self._connect(dangling, test)
        if _may_raise(stmt):  # the test expression itself
            self._add_raise_edges(test)
        out = self._stmts(stmt.body, [(test, TRUE)])
        if stmt.orelse:
            out += self._stmts(stmt.orelse, [(test, FALSE)])
        else:
            out.append((test, FALSE))
        return out

    @staticmethod
    def _test_is_literally_true(expr: ast.expr) -> bool:
        return isinstance(expr, ast.Constant) and bool(expr.value) is True

    def _while(self, stmt: ast.While, dangling: List[_Dangling]) -> List[_Dangling]:
        header = self.cfg._add_node(stmt, "loop")
        self._connect(dangling, header)
        if _may_raise(stmt):
            self._add_raise_edges(header)
        frame = _LoopFrame(header)
        self.loops.append(frame)
        body_out = self._stmts(stmt.body, [(header, TRUE)])
        self.loops.pop()
        for src, label in body_out:
            self.cfg._add_edge(src, header, label)
            self.cfg.back_edges.add((src, header))
        out: List[_Dangling] = list(frame.breaks)
        if not self._test_is_literally_true(stmt.test):
            if stmt.orelse:
                out += self._stmts(stmt.orelse, [(header, FALSE)])
            else:
                out.append((header, FALSE))
        return out

    def _for(self, stmt: ast.stmt, dangling: List[_Dangling]) -> List[_Dangling]:
        header = self.cfg._add_node(stmt, "loop")
        self._connect(dangling, header)
        self._add_raise_edges(header)  # the iterator can always raise
        frame = _LoopFrame(header)
        self.loops.append(frame)
        body_out = self._stmts(stmt.body, [(header, TRUE)])
        self.loops.pop()
        for src, label in body_out:
            self.cfg._add_edge(src, header, label)
            self.cfg.back_edges.add((src, header))
        out: List[_Dangling] = list(frame.breaks)
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            out += self._stmts(orelse, [(header, FALSE)])
        else:
            out.append((header, FALSE))
        return out

    def _with(self, stmt: ast.stmt, dangling: List[_Dangling]) -> List[_Dangling]:
        node = self.cfg._add_node(stmt, "stmt")
        self._connect(dangling, node)
        self._add_raise_edges(node)  # __enter__ can raise
        return self._stmts(stmt.body, [(node, NORMAL)])

    def _try(self, stmt: ast.Try, dangling: List[_Dangling]) -> List[_Dangling]:
        entry = self.cfg._add_node(stmt, "stmt")
        self._connect(dangling, entry)

        frame = _TryFrame()
        for handler in stmt.handlers:
            frame.handler_entries.append(self.cfg._add_node(handler, "stmt"))
        if stmt.finalbody:
            frame.finally_entry = self.cfg._add_node(stmt, "finally")

        # body: handlers + finally are live exception targets
        self.frames.append(frame)
        body_out = self._stmts(stmt.body, [(entry, NORMAL)])
        # else-block: runs when the body completed; this try's handlers no
        # longer apply but its finally still does
        frame.handler_entries, live_handlers = [], frame.handler_entries
        if stmt.orelse:
            body_out = self._stmts(stmt.orelse, body_out)
        # handler bodies: same frame minus the handlers themselves
        handler_out: List[_Dangling] = []
        for handler, hentry in zip(stmt.handlers, live_handlers):
            handler_out += self._stmts(handler.body, [(hentry, NORMAL)])
        self.frames.pop()

        out: List[_Dangling] = []
        if frame.finally_entry is not None:
            # everything converges on the finally body, built once
            if body_out:
                frame.flows.add("normal")
            self._connect(body_out, frame.finally_entry)
            self._connect(handler_out, frame.finally_entry)
            if handler_out:
                frame.flows.add("normal")
            fin_out = self._stmts(stmt.finalbody, [(frame.finally_entry, NORMAL)])
            # continuation union: wherever control could have been headed
            if "normal" in frame.flows:
                out += fin_out
            if "exc" in frame.flows:
                self._connect(fin_out, RAISE)
            if "return" in frame.flows:
                target = self._innermost_finally()
                if target is not None and target is not frame:
                    target.flows.add("return")
                    self._connect(fin_out, target.finally_entry)  # type: ignore[arg-type]
                else:
                    self._connect(fin_out, EXIT)
            for loop in frame.break_targets:
                loop.breaks.extend(fin_out)
            for loop in frame.continue_targets:
                for src, label in fin_out:
                    self.cfg._add_edge(src, loop.header, label)
                    self.cfg.back_edges.add((src, loop.header))
        else:
            out = body_out + handler_out
        return out

    # -- jumps ----------------------------------------------------------

    def _return(self, stmt: ast.Return, dangling: List[_Dangling]) -> List[_Dangling]:
        node = self.cfg._add_node(stmt, "stmt")
        self._connect(dangling, node)
        if _may_raise(stmt):
            self._add_raise_edges(node)
        frame = self._innermost_finally()
        if frame is not None:
            frame.flows.add("return")
            self.cfg._add_edge(node, frame.finally_entry, NORMAL)  # type: ignore[arg-type]
        else:
            self.cfg._add_edge(node, EXIT, NORMAL)
        return []

    def _raise(self, stmt: ast.Raise, dangling: List[_Dangling]) -> List[_Dangling]:
        node = self.cfg._add_node(stmt, "stmt")
        self._connect(dangling, node)
        self._add_raise_edges(node)
        return []

    def _break(self, stmt: ast.Break, dangling: List[_Dangling]) -> List[_Dangling]:
        node = self.cfg._add_node(stmt, "stmt")
        self._connect(dangling, node)
        frame = self._innermost_finally()
        if frame is not None:
            frame.flows.add("break")
            if self.loops and self.loops[-1] not in frame.break_targets:
                frame.break_targets.append(self.loops[-1])
            self.cfg._add_edge(node, frame.finally_entry, NORMAL)  # type: ignore[arg-type]
        elif self.loops:
            self.loops[-1].breaks.append((node, NORMAL))
        return []

    def _continue(self, stmt: ast.Continue, dangling: List[_Dangling]) -> List[_Dangling]:
        node = self.cfg._add_node(stmt, "stmt")
        self._connect(dangling, node)
        frame = self._innermost_finally()
        if frame is not None:
            frame.flows.add("continue")
            if self.loops and self.loops[-1] not in frame.continue_targets:
                frame.continue_targets.append(self.loops[-1])
            self.cfg._add_edge(node, frame.finally_entry, NORMAL)  # type: ignore[arg-type]
        elif self.loops:
            header = self.loops[-1].header
            self.cfg._add_edge(node, header, NORMAL)
            self.cfg.back_edges.add((node, header))
        return []


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of a ``FunctionDef``/``AsyncFunctionDef`` body."""
    body = getattr(func, "body", None)
    if not isinstance(body, list):
        raise TypeError(f"cannot build a CFG for {func!r}")
    return _Builder(func, body).cfg
