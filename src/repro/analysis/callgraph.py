"""The whole-program model: modules, classes, functions, call graph.

A :class:`Project` is built from the parsed trees of every file handed
to the linter. It indexes every class and function by qualified name
(``repro.mom.channel.Channel._commit``), performs *light* type
inference — parameter/attribute annotations, ``x = ClassName(...)``
constructor assignments, annotated returns, ``Optional``/``Dict``
unwrapping — and resolves call expressions to candidate callees:

- ``self.m()`` → methods of the enclosing class (and same-name project
  classes it inherits from);
- ``obj.m()`` with an inferable receiver type → that class's method;
- ``f()`` → the module-local or project-wide function of that name;
- ``obj.m()`` with an *unknown* receiver → every project function named
  ``m``, unless ``m`` is a builtin-collection method name (``append``,
  ``add``, ``pop``, …), which overwhelmingly targets ``list``/``set``/
  ``dict`` and would drown the graph in false edges.

The call graph feeds Tarjan's SCC condensation so interprocedural
effect summaries (:mod:`repro.analysis.effects`) can be computed
bottom-up to a fixpoint. Everything is deterministic: indices are built
in sorted module order and candidate lists are sorted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import CFG, build_cfg

# Method names that near-certainly target builtin containers when the
# receiver type is unknown; resolving them project-wide by bare name
# would wire, say, every `seen.add(x)` to _HoldbackStore.add.
_BUILTIN_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "extend",
        "insert",
        "remove",
        "discard",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "get",
        "keys",
        "values",
        "items",
        "copy",
        "count",
        "index",
        "sort",
        "reverse",
        "join",
        "split",
        "strip",
        "startswith",
        "endswith",
        "format",
        "encode",
        "decode",
        "write",
        "read",
        "close",
        "flush",
    }
)


# ----------------------------------------------------------------------
# Inferred types
# ----------------------------------------------------------------------

#: A type is ``("cls", "Name")``, ``("dict", value_type)``, or ``None``.
InferredType = Optional[Tuple[str, object]]


def _annotation_type(ann: Optional[ast.expr]) -> InferredType:
    """Best-effort class name from an annotation expression."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(ann, ast.Name):
        return ("cls", ann.id)
    if isinstance(ann, ast.Attribute):
        return ("cls", ann.attr)
    if isinstance(ann, ast.Subscript):
        base = ann.value
        base_name = (
            base.id
            if isinstance(base, ast.Name)
            else base.attr
            if isinstance(base, ast.Attribute)
            else None
        )
        inner = ann.slice
        if base_name == "Optional":
            return _annotation_type(inner)
        if base_name in ("Dict", "dict", "Mapping", "MutableMapping"):
            if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                return ("dict", _annotation_type(inner.elts[1]))
        if base_name in ("List", "list", "Sequence", "Deque", "Set", "FrozenSet"):
            return None  # element access loses too much precision anyway
    return None


# ----------------------------------------------------------------------
# Index records
# ----------------------------------------------------------------------


@dataclass
class FunctionInfo:
    qualname: str
    name: str
    module: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional["ClassInfo"] = None
    _cfg: Optional[CFG] = None

    @property
    def params(self) -> List[ast.arg]:
        args = self.node.args  # type: ignore[attr-defined]
        return list(args.posonlyargs) + list(args.args)

    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg

    def __repr__(self) -> str:
        return f"FunctionInfo({self.qualname})"


@dataclass
class ClassInfo:
    qualname: str
    name: str
    module: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: Dict[str, InferredType] = field(default_factory=dict)
    bases: List[str] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"ClassInfo({self.qualname})"


@dataclass
class ModuleInfo:
    module: str
    path: str
    tree: ast.Module
    source: str


# ----------------------------------------------------------------------
# The project
# ----------------------------------------------------------------------


class Project:
    """Index + call graph over a set of parsed modules."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.classes_by_qualname: Dict[str, ClassInfo] = {}
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        for info in sorted(modules, key=lambda m: m.module or m.path):
            # duplicate module names (rare: fixture trees) — last one wins
            self.modules[info.module] = info
        for info in self.modules.values():
            self._index_module(info)
        for cls in self.classes_by_qualname.values():
            self._infer_class_attrs(cls)
        self._edges: Optional[Dict[str, List[str]]] = None

    # -- indexing -------------------------------------------------------

    def _index_module(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(node, ast.ClassDef):
                self._index_class(info, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(info, node, cls=None)
                # nested defs (closures like install_collector's collect)
                for inner in ast.walk(node):
                    if inner is not node and isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._index_function(
                            info, inner, cls=None, parent=node.name
                        )

    def _index_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            qualname=f"{info.module}.{node.name}",
            name=node.name,
            module=info.module,
            node=node,
            bases=[b for b in map(_base_name, node.bases) if b],
        )
        self.classes_by_qualname[cls.qualname] = cls
        self.classes_by_name.setdefault(cls.name, []).append(cls)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._index_function(info, item, cls=cls)
                cls.methods[item.name] = fn
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                cls.attr_types[item.target.id] = _annotation_type(
                    item.annotation
                )

    def _index_function(
        self,
        info: ModuleInfo,
        node: ast.AST,
        cls: Optional[ClassInfo],
        parent: Optional[str] = None,
    ) -> FunctionInfo:
        name = node.name  # type: ignore[attr-defined]
        if cls is not None:
            qualname = f"{cls.qualname}.{name}"
        elif parent is not None:
            qualname = f"{info.module}.{parent}.<locals>.{name}"
        else:
            qualname = f"{info.module}.{name}"
        fn = FunctionInfo(
            qualname=qualname, name=name, module=info.module, node=node, cls=cls
        )
        self.functions[qualname] = fn
        self.functions_by_name.setdefault(name, []).append(fn)
        return fn

    def _infer_class_attrs(self, cls: ClassInfo) -> None:
        """Attribute types from ``self.x: T``/``self.x = Expr()`` in
        methods (``__init__`` first, then the rest; first type wins)."""
        method_order = sorted(
            cls.methods.values(), key=lambda f: (f.name != "__init__", f.name)
        )
        for fn in method_order:
            env = self.param_env(fn)
            for stmt in ast.walk(fn.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                ann: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value, ann = stmt.target, stmt.value, stmt.annotation
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                    or target.attr in cls.attr_types
                ):
                    continue
                inferred = _annotation_type(ann)
                if inferred is None and value is not None:
                    inferred = self.infer_expr(value, env, fn)
                if inferred is not None:
                    cls.attr_types[target.attr] = inferred

    # -- type inference -------------------------------------------------

    def param_env(self, fn: FunctionInfo) -> Dict[str, InferredType]:
        env: Dict[str, InferredType] = {}
        for arg in fn.params:
            inferred = _annotation_type(arg.annotation)
            if inferred is not None:
                env[arg.arg] = inferred
        if fn.cls is not None and fn.params:
            env[fn.params[0].arg] = ("cls", fn.cls.name)
        return env

    def local_env(self, fn: FunctionInfo) -> Dict[str, InferredType]:
        """Parameter types plus single-consistent-type local bindings."""
        env = self.param_env(fn)
        seen: Dict[str, InferredType] = {}
        conflicted: Set[str] = set()
        for stmt in ast.walk(fn.node):
            target = None
            value = None
            ann = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, ann = stmt.target, stmt.value, stmt.annotation
            if not isinstance(target, ast.Name) or target.id in env:
                continue
            inferred = _annotation_type(ann)
            if inferred is None and value is not None:
                inferred = self.infer_expr(value, env, fn)
            name = target.id
            if name in seen and seen[name] != inferred:
                conflicted.add(name)
            seen[name] = inferred
        for name, inferred in sorted(seen.items()):
            if inferred is not None and name not in conflicted:
                env[name] = inferred
        return env

    def class_named(self, name: str) -> Optional[ClassInfo]:
        candidates = self.classes_by_name.get(name)
        if candidates and len(candidates) == 1:
            return candidates[0]
        return None

    def subclasses_of(self, base_name: str) -> List[ClassInfo]:
        """Every project class transitively deriving from ``base_name``
        (by declared base-class *name*), in qualname order."""
        children: Dict[str, List[ClassInfo]] = {}
        for qualname in sorted(self.classes_by_qualname):
            cls = self.classes_by_qualname[qualname]
            for base in cls.bases:
                children.setdefault(base, []).append(cls)
        found: Dict[str, ClassInfo] = {}
        queue = [base_name]
        while queue:
            name = queue.pop(0)
            for cls in children.get(name, []):
                if cls.qualname not in found:
                    found[cls.qualname] = cls
                    queue.append(cls.name)
        return [found[q] for q in sorted(found)]

    def lookup_method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            for base in current.bases:
                parent = self.class_named(base)
                if parent is not None:
                    stack.append(parent)
        return None

    def lookup_attr_type(self, cls: ClassInfo, name: str) -> InferredType:
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.attr_types:
                return current.attr_types[name]
            for base in current.bases:
                parent = self.class_named(base)
                if parent is not None:
                    stack.append(parent)
        return None

    def infer_expr(
        self,
        expr: ast.expr,
        env: Dict[str, InferredType],
        fn: Optional[FunctionInfo] = None,
    ) -> InferredType:
        """Best-effort type of an expression under a name environment."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.infer_expr(expr.value, env, fn)
            if base is not None and base[0] == "cls":
                cls = self.class_named(str(base[1]))
                if cls is not None:
                    attr = self.lookup_attr_type(cls, expr.attr)
                    if attr is not None:
                        return attr
                    prop = self.lookup_method(cls, expr.attr)
                    if prop is not None and _is_property(prop.node):
                        return _annotation_type(
                            getattr(prop.node, "returns", None)
                        )
            return None
        if isinstance(expr, ast.Subscript):
            base = self.infer_expr(expr.value, env, fn)
            if base is not None and base[0] == "dict":
                value_type = base[1]
                if isinstance(value_type, tuple):
                    return value_type  # type: ignore[return-value]
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if self.class_named(func.id) is not None:
                    return ("cls", func.id)
                target = self._function_named(func.id, env)
                if target is not None:
                    return _annotation_type(getattr(target.node, "returns", None))
            elif isinstance(func, ast.Attribute):
                base = self.infer_expr(func.value, env, fn)
                if base is not None and base[0] == "cls":
                    cls = self.class_named(str(base[1]))
                    if cls is not None:
                        method = self.lookup_method(cls, func.attr)
                        if method is not None:
                            return _annotation_type(
                                getattr(method.node, "returns", None)
                            )
            return None
        if isinstance(expr, ast.IfExp):
            body = self.infer_expr(expr.body, env, fn)
            orelse = self.infer_expr(expr.orelse, env, fn)
            return body if body is not None else orelse
        return None

    def _function_named(
        self, name: str, env: Dict[str, InferredType]
    ) -> Optional[FunctionInfo]:
        candidates = self.functions_by_name.get(name)
        if candidates and len(candidates) == 1:
            return candidates[0]
        return None

    # -- call resolution ------------------------------------------------

    def resolve_call(
        self,
        call: ast.Call,
        fn: FunctionInfo,
        env: Optional[Dict[str, InferredType]] = None,
    ) -> List[FunctionInfo]:
        """Candidate callees of a call expression inside ``fn``."""
        if env is None:
            env = self.local_env(fn)
        func = call.func
        if isinstance(func, ast.Name):
            cls = self.class_named(func.id)
            if cls is not None:
                ctor = self.lookup_method(cls, "__init__")
                return [ctor] if ctor is not None else []
            local = self.functions.get(f"{fn.module}.{func.id}")
            if local is not None:
                return [local]
            nested = self.functions.get(
                f"{fn.module}.{_outer_name(fn)}.<locals>.{func.id}"
            )
            if nested is not None:
                return [nested]
            return sorted(
                self.functions_by_name.get(func.id, []),
                key=lambda f: f.qualname,
            )
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
                and fn.cls is not None
            ):
                # super().m(...): resolve through the declared bases, never
                # the bare-name fallback (which would link every __init__).
                for base in fn.cls.bases:
                    parent = self.class_named(base)
                    if parent is not None:
                        method = self.lookup_method(parent, func.attr)
                        if method is not None:
                            return [method]
                return []
            receiver = self.infer_expr(func.value, env, fn)
            if receiver is not None and receiver[0] == "cls":
                cls = self.class_named(str(receiver[1]))
                if cls is not None:
                    method = self.lookup_method(cls, func.attr)
                    return [method] if method is not None else []
            # unknown receiver: bare-name fallback, builtins filtered
            if func.attr in _BUILTIN_METHODS:
                return []
            return sorted(
                self.functions_by_name.get(func.attr, []),
                key=lambda f: f.qualname,
            )
        return []

    # -- the graph ------------------------------------------------------

    def call_edges(self) -> Dict[str, List[str]]:
        """``caller qualname -> sorted callee qualnames`` (cached)."""
        if self._edges is not None:
            return self._edges
        edges: Dict[str, List[str]] = {}
        for qualname in sorted(self.functions):
            fn = self.functions[qualname]
            env = self.local_env(fn)
            targets: Set[str] = set()
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    for callee in self.resolve_call(node, fn, env):
                        targets.add(callee.qualname)
            edges[qualname] = sorted(targets)
        self._edges = edges
        return edges

    def sccs(self) -> List[List[str]]:
        """Strongly-connected components in reverse topological order
        (callees before callers) — Tarjan, iterative."""
        edges = self.call_edges()
        index_of: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        result: List[List[str]] = []
        counter = [0]

        for root in sorted(edges):
            if root in index_of:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, edge_index = work[-1]
                if edge_index == 0:
                    index_of[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                targets = edges.get(node, [])
                while edge_index < len(targets):
                    succ = targets[edge_index]
                    edge_index += 1
                    if succ not in edges:
                        continue
                    if succ not in index_of:
                        work[-1] = (node, edge_index)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    result.append(sorted(component))
        return result

    def reachable_from(self, roots: Sequence[str]) -> Dict[str, str]:
        """BFS closure over the call graph; returns ``{function:
        parent}`` for every reached function (roots map to ``""``)."""
        edges = self.call_edges()
        parent: Dict[str, str] = {}
        queue: List[str] = []
        for root in sorted(set(roots)):
            if root in edges and root not in parent:
                parent[root] = ""
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for succ in edges.get(current, []):
                if succ not in parent and succ in edges:
                    parent[succ] = current
                    queue.append(succ)
        return parent

    def path_to(self, parent: Dict[str, str], qualname: str) -> List[str]:
        chain = [qualname]
        while parent.get(chain[-1]):
            chain.append(parent[chain[-1]])
        return list(reversed(chain))


def _base_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _outer_name(fn: FunctionInfo) -> str:
    # nested functions carry "<parent>.<locals>.<name>" qualnames
    parts = fn.qualname.rsplit(".", 3)
    if len(parts) >= 3 and parts[-2] == "<locals>":
        return parts[-3]
    return fn.name


def _is_property(node: ast.AST) -> bool:
    for decorator in getattr(node, "decorator_list", []):
        if isinstance(decorator, ast.Name) and decorator.id == "property":
            return True
    return False


def iter_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function/method definition in a module, source order."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
