"""The fork/pipe happens-before model behind rules R013–R017.

PR 6 made the simulation kernel multi-process: :class:`ShardedBus` forks
one worker per shard (``ctx.Process(target=_worker_main, ...)``) and all
cross-process traffic rides duplex pipes as pickled tuples. That topology
induces a happens-before order much simpler than general shared-memory
threading, and this module models it statically:

- **fork is a one-way snapshot.** At ``Process(target=f)`` the child
  inherits a copy of the parent's memory. Everything the parent wrote
  *before* the fork happens-before everything the worker does — but no
  edge ever points back: a worker's write to inherited state (module
  globals, parent-owned objects) is invisible to the parent and to every
  sibling. Such writes are *lost updates* (rule R013).
- **``Pipe.send``/``recv`` are the only cross-process flows.** A send
  happens-before the matching receive, and only the pickled payload
  crosses — so every type transitively reachable from a shipped object
  must be picklable (rule R014), and anything the parent must observe
  has to travel through a pipe, never through inherited memory.

The :class:`ForkModel` derives, from a
:class:`~repro.analysis.callgraph.Project`:

- the *worker entry points*: functions referenced as the ``target=`` of a
  ``Process(...)`` construction (``repro.mom.parallel._worker_main`` on
  the real tree);
- the *worker-reachable closure* over the call graph — the code that may
  execute on the child side of the fork (the shard/sync handlers,
  :func:`repro.simulation.sync.serve`, the whole per-worker bus);
- the *pipe send sites* (``….send(payload)`` through a ``conn``-named
  handle) and the classes statically inferable as crossing the pipe,
  closed over their field types;
- worker-side writes to module-level state, and the parent-side readers
  that would observe a stale snapshot.

Everything is deterministic (sorted iteration orders) and stdlib-only,
like the rest of the analysis package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import ClassInfo, FunctionInfo, Project

#: Container-mutator method names (a write even without rebinding).
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Constructors whose instances cannot cross a pickled pipe.
UNPICKLABLE_CTORS: Dict[str, str] = {
    "Lock": "a thread lock",
    "RLock": "a reentrant lock",
    "Condition": "a condition variable",
    "Event": "a thread event",
    "Semaphore": "a semaphore",
    "BoundedSemaphore": "a semaphore",
    "Barrier": "a barrier",
    "Queue": "a queue handle",
    "SimpleQueue": "a queue handle",
    "Pipe": "a pipe handle",
    "Connection": "a pipe connection",
    "socket": "a socket",
    "Thread": "a thread handle",
    "Process": "a process handle",
    "open": "an open file handle",
}

#: Root classes whose instances are pickled inside protocol packets.
SHIPPED_ROOT_BASES = ("Stamp",)


def _call_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _flatten(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten(element)
    elif isinstance(target, ast.Starred):
        yield from _flatten(target.value)
    else:
        yield target


def _assign_targets(node: ast.AST) -> List[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def is_pipe_handle(chain: Optional[str]) -> bool:
    """Heuristic: the last segment of the receiver chain names a pipe
    connection (``conn``, ``child_conn``, ``parent_conn``, ``_conns``)."""
    if not chain:
        return False
    return "conn" in chain.split(".")[-1]


def module_level_names(tree: ast.Module) -> FrozenSet[str]:
    """Names bound by top-level assignments of a module — the mutable
    state a fork snapshots."""
    names: Set[str] = set()
    for stmt in tree.body:
        for target in _assign_targets(stmt):
            for leaf in _flatten(target):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
    return frozenset(names)


def local_bindings(fn_node: ast.AST) -> FrozenSet[str]:
    """Names bound locally inside a function (parameters, assignments,
    loop/with/except targets, comprehension variables) — *excluding*
    names declared ``global``/``nonlocal``."""
    escaping: Set[str] = set()
    bound: Set[str] = set()
    args = fn_node.args  # type: ignore[attr-defined]
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            escaping.update(node.names)
            continue
        if isinstance(node, (ast.For, ast.AsyncFor)):
            targets: List[ast.expr] = [node.target]
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            targets = [
                item.optional_vars for item in node.items if item.optional_vars
            ]
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                bound.add(node.name)
            continue
        elif isinstance(node, ast.comprehension):
            targets = [node.target]
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = _assign_targets(node)
        else:
            continue
        for target in targets:
            for leaf in _flatten(target):
                if isinstance(leaf, ast.Name):
                    bound.add(leaf.id)
    return frozenset(bound - escaping)


@dataclass
class PipeSend:
    """One ``conn.send(...)`` site — a happens-before edge source."""

    fn: FunctionInfo
    node: ast.Call
    handle: str


@dataclass
class ModuleStateWrite:
    """A worker-side write to module-level (fork-snapshotted) state."""

    fn: FunctionInfo
    node: ast.AST
    name: str
    how: str  # "rebinding" | "item write" | ".<method>() mutation"


class ForkModel:
    """The fork/pipe happens-before model of one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.worker_entries: List[str] = self._find_worker_entries()
        #: qualname -> call-graph parent, for every function that may run
        #: on the child side of a fork ("" for the entries themselves).
        self.worker_reachable: Dict[str, str] = project.reachable_from(
            self.worker_entries
        )

    # -- fork topology --------------------------------------------------

    def _find_worker_entries(self) -> List[str]:
        """Functions referenced as ``target=`` of a ``Process(...)``
        construction, anywhere in the project."""
        entries: Set[str] = set()
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                if _call_name(node.func) != "Process":
                    continue
                for keyword in node.keywords:
                    if keyword.arg != "target":
                        continue
                    name = _call_name(keyword.value)
                    if name is None:
                        continue
                    local = self.project.functions.get(f"{fn.module}.{name}")
                    if local is not None:
                        entries.add(local.qualname)
                    else:
                        entries.update(
                            f.qualname
                            for f in self.project.functions_by_name.get(name, [])
                        )
        return sorted(entries)

    def is_worker(self, qualname: str) -> bool:
        """May this function execute on the child side of the fork?"""
        return qualname in self.worker_reachable

    def worker_path(self, qualname: str) -> List[str]:
        """Call chain from a worker entry down to ``qualname``."""
        return self.project.path_to(self.worker_reachable, qualname)

    # -- pipe flows -----------------------------------------------------

    def pipe_sends(self) -> List[PipeSend]:
        """Every ``….send(payload)`` through a pipe-handle chain, on
        either side of the fork (both directions cross the pickle)."""
        from repro.analysis.dataflow import expr_chain

        sends: List[PipeSend] = []
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "send"
                ):
                    chain = expr_chain(node.func.value)
                    if is_pipe_handle(chain):
                        sends.append(PipeSend(fn, node, chain or ""))
        return sends

    def shipped_classes(self) -> List[ClassInfo]:
        """Project classes statically inferable as crossing a pipe:
        inferred types of send-site payload expressions, plus the
        protocol-message roots (``Stamp`` subclasses ride pickled inside
        packets) — closed transitively over field types."""
        seeds: Set[str] = set()
        for send in self.pipe_sends():
            env = self.project.local_env(send.fn)
            for arg in send.node.args:
                self._seed_classes(arg, send.fn, env, seeds)
        for base in SHIPPED_ROOT_BASES:
            for cls in self.project.subclasses_of(base):
                seeds.add(cls.qualname)
        closed: Set[str] = set()
        queue = sorted(seeds)
        while queue:
            qualname = queue.pop(0)
            if qualname in closed:
                continue
            closed.add(qualname)
            cls = self.project.classes_by_qualname.get(qualname)
            if cls is None:
                continue
            for attr in sorted(cls.attr_types):
                inferred = cls.attr_types[attr]
                if inferred is not None and inferred[0] == "cls":
                    inner = self.project.class_named(str(inferred[1]))
                    if inner is not None and inner.qualname not in closed:
                        queue.append(inner.qualname)
        return [
            self.project.classes_by_qualname[name]
            for name in sorted(closed)
            if name in self.project.classes_by_qualname
        ]

    def _seed_classes(
        self,
        expr: ast.expr,
        fn: FunctionInfo,
        env: Dict[str, object],
        seeds: Set[str],
    ) -> None:
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                self._seed_classes(element, fn, env, seeds)
            return
        if isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is not None:
                    self._seed_classes(value, fn, env, seeds)
            return
        inferred = self.project.infer_expr(expr, env, fn)  # type: ignore[arg-type]
        if inferred is not None and inferred[0] == "cls":
            cls = self.project.class_named(str(inferred[1]))
            if cls is not None:
                seeds.add(cls.qualname)

    # -- picklability ---------------------------------------------------

    def unpicklable_fields(
        self, cls: ClassInfo
    ) -> List[Tuple[ast.AST, str, str]]:
        """``(site, field, why)`` for every field assignment storing a
        statically unpicklable value in ``cls``."""
        found: List[Tuple[ast.AST, str, str]] = []
        for name in sorted(cls.methods):
            fn = cls.methods[name]
            for node in ast.walk(fn.node):
                value = getattr(node, "value", None)
                if value is None:
                    continue
                for target in _assign_targets(node):
                    for leaf in _flatten(target):
                        if (
                            isinstance(leaf, ast.Attribute)
                            and isinstance(leaf.value, ast.Name)
                            and leaf.value.id == "self"
                        ):
                            why = self.unpicklable_reason(value, cls)
                            if why is not None:
                                found.append((node, leaf.attr, why))
        return found

    def unpicklable_reason(
        self, expr: ast.expr, cls: Optional[ClassInfo] = None
    ) -> Optional[str]:
        """Why ``expr`` cannot cross a pickled pipe, or ``None``."""
        if isinstance(expr, ast.Lambda):
            return "a lambda"
        if isinstance(expr, ast.GeneratorExp):
            return "a generator expression"
        if isinstance(expr, ast.Call):
            name = _call_name(expr.func)
            if name in UNPICKLABLE_CTORS:
                return UNPICKLABLE_CTORS[name]
            return None
        if (
            cls is not None
            and isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.project.lookup_method(cls, expr.attr) is not None
        ):
            return f"the bound method self.{expr.attr}"
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                why = self.unpicklable_reason(element, cls)
                if why is not None:
                    return why
        if isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is not None:
                    why = self.unpicklable_reason(value, cls)
                    if why is not None:
                        return why
        return None

    # -- fork-boundary lost updates -------------------------------------

    def worker_module_writes(self) -> List[ModuleStateWrite]:
        """Writes, in worker-reachable code, to module-level state of the
        writer's own module — each one a candidate lost update."""
        writes: List[ModuleStateWrite] = []
        for qualname in sorted(self.worker_reachable):
            fn = self.project.functions.get(qualname)
            if fn is None:
                continue
            info = self.project.modules.get(fn.module)
            if info is None:
                continue
            mod_names = module_level_names(info.tree)
            if not mod_names:
                continue
            locals_ = local_bindings(fn.node)
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    for target in _assign_targets(node):
                        for leaf in _flatten(target):
                            if (
                                isinstance(leaf, ast.Name)
                                and leaf.id in mod_names
                                and leaf.id not in locals_
                            ):
                                writes.append(
                                    ModuleStateWrite(
                                        fn, node, leaf.id, "rebinding"
                                    )
                                )
                            elif (
                                isinstance(leaf, ast.Subscript)
                                and isinstance(leaf.value, ast.Name)
                                and leaf.value.id in mod_names
                                and leaf.value.id not in locals_
                            ):
                                writes.append(
                                    ModuleStateWrite(
                                        fn, node, leaf.value.id, "item write"
                                    )
                                )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in mod_names
                    and node.func.value.id not in locals_
                ):
                    writes.append(
                        ModuleStateWrite(
                            fn,
                            node,
                            node.func.value.id,
                            f".{node.func.attr}() mutation",
                        )
                    )
        return writes

    def parent_readers(self, module: str, name: str) -> List[FunctionInfo]:
        """Functions of ``module`` outside the worker closure that read
        the module-level ``name`` — the observers of the stale fork
        snapshot."""
        readers: List[FunctionInfo] = []
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            if fn.module != module or qualname in self.worker_reachable:
                continue
            if name in local_bindings(fn.node):
                continue  # shadowed: the local, not the module state
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Name)
                    and node.id == name
                    and isinstance(node.ctx, ast.Load)
                ):
                    readers.append(fn)
                    break
        return readers

    # -- shard-scoped lexical guards (R017) -----------------------------

    def sequential_guarded_calls(self, fn: FunctionInfo) -> Set[int]:
        """``id()`` of every call lexically inside an ``if <shard-ish>
        is None:`` body — the sequential-only branch, where a constant
        stream name cannot collide across workers."""
        guarded: Set[int] = set()

        def visit(node: ast.AST, inside: bool) -> None:
            if isinstance(node, ast.If):
                branch = inside or _is_shardless_test(node.test)
                visit(node.test, inside)
                for stmt in node.body:
                    visit(stmt, branch)
                for stmt in node.orelse:
                    visit(stmt, inside)
                return
            if isinstance(node, ast.Call) and inside:
                guarded.add(id(node))
            for child in ast.iter_child_nodes(node):
                visit(child, inside)

        visit(fn.node, False)
        return guarded

    def __repr__(self) -> str:
        return (
            f"ForkModel(entries={len(self.worker_entries)}, "
            f"worker_reachable={len(self.worker_reachable)})"
        )


def _is_shardless_test(test: ast.expr) -> bool:
    """``<chain containing a shard segment> is None``."""
    from repro.analysis.dataflow import expr_chain

    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Is)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        chain = expr_chain(test.left)
        if chain is not None:
            return any("shard" in segment for segment in chain.split("."))
    return False


def fork_model(project: Project) -> ForkModel:
    """One memoized :class:`ForkModel` per project (mirrors
    :func:`repro.analysis.rules.effect_engine`)."""
    model = getattr(project, "_fork_model", None)
    if model is None:
        model = ForkModel(project)
        project._fork_model = model  # type: ignore[attr-defined]
    return model
