"""CLI entry point: ``python -m repro.analysis lint src/``.

Exit codes: 0 = clean, 1 = findings, 2 = usage error. The ``--json``
payload and the exit code are computed from the same post-suppression,
post-baseline finding list, so they can never disagree; ``--sarif``
writes that same list as a SARIF 2.1.0 file for code-scanning upload.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set

from repro.analysis.lint import (
    apply_baseline,
    lint_paths,
    load_baseline,
    to_sarif,
    write_baseline,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_ID


def _git_changed_files() -> Set[Path]:
    """Changed ``*.py`` files: unstaged + staged ``git diff --name-only``,
    resolved against the repository root. Raises on any git failure."""
    top = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True,
        text=True,
        check=True,
    ).stdout.strip()
    names: Set[str] = set()
    for extra in ([], ["--cached"]):
        out = subprocess.run(
            ["git", "diff", "--name-only", *extra],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        names.update(line.strip() for line in out.splitlines() if line.strip())
    return {
        Path(top) / name for name in names if name.endswith(".py")
    }


def _cmd_lint(args: argparse.Namespace) -> int:
    select: Optional[List[str]] = None
    if args.select:
        select = [code for code in args.select.split(",") if code]
    if args.rule:
        select = (select or []) + list(args.rule)
    if select is not None:
        unknown = [code for code in select if code.upper() not in RULES_BY_ID]
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    changed_only = None
    if args.changed:
        try:
            changed_only = _git_changed_files()
        except (OSError, subprocess.CalledProcessError) as exc:
            print(f"error: --changed needs a git checkout: {exc}", file=sys.stderr)
            return 2
    try:
        findings = lint_paths(
            args.paths,
            select=select,
            cache=args.cache,
            changed_only=changed_only,
        )
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(
            f"wrote {len(findings)} fingerprint(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0
    suppressed = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: bad baseline file: {exc}", file=sys.stderr)
            return 2
        kept = apply_baseline(findings, baseline)
        suppressed = len(findings) - len(kept)
        findings = kept
    if args.sarif:
        Path(args.sarif).write_text(
            json.dumps(to_sarif(findings), indent=2), encoding="utf-8"
        )
    if args.json:
        payload = {
            "findings": [d.to_dict() for d in findings],
            "count": len(findings),
            "baseline_suppressed": suppressed,
            "clean": not findings,
        }
        print(json.dumps(payload, indent=2))
    else:
        for diagnostic in findings:
            print(diagnostic.format())
        if findings:
            print(f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


def _cmd_rules(args: argparse.Namespace) -> int:
    for rule in ALL_RULES:
        print(f"{rule.rule_id}  {rule.title}")
    return 0


#: Packages whose changes retrigger the model-checker admission gate.
_MODEL_TRIGGER_PARTS = ("clocks", "mom", "protocol")


def _model_relevant(paths: Set[Path]) -> bool:
    for path in paths:
        if any(part in _MODEL_TRIGGER_PARTS for part in path.parts):
            return True
    return False


def _cmd_model(args: argparse.Namespace) -> int:
    from repro.analysis.model import (
        ScanError,
        check_core,
        check_named,
        checkable_cores,
        load_candidate,
    )

    if args.changed:
        try:
            changed = _git_changed_files()
        except (OSError, subprocess.CalledProcessError) as exc:
            print(f"error: --changed needs a git checkout: {exc}", file=sys.stderr)
            return 2
        if not _model_relevant(changed):
            print(
                "model: no changes under clocks/, mom/ or protocol/ — "
                "admission gate skipped",
                file=sys.stderr,
            )
            return 0
    results = []
    try:
        if args.all:
            for name, causal in checkable_cores():
                if args.core and name != args.core:
                    continue
                if not causal:
                    print(
                        f"core '{name}': skipped (causal=False baseline; "
                        "check it explicitly to see its counterexample)",
                        file=sys.stderr,
                    )
                    continue
                results.append(
                    check_named(
                        name, servers=args.servers, messages=args.messages
                    )
                )
        else:
            if not args.core:
                print("error: name a core or pass --all", file=sys.stderr)
                return 2
            if args.core.endswith(".py"):
                core = load_candidate(Path(args.core))
                results.append(
                    check_core(
                        core, servers=args.servers, messages=args.messages
                    )
                )
            else:
                results.append(
                    check_named(
                        args.core,
                        servers=args.servers,
                        messages=args.messages,
                    )
                )
    except ScanError as exc:
        print(f"error: admission scan failed: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # ProtocolError: unknown core name, bad boot
        from repro.errors import ProtocolError

        if not isinstance(exc, ProtocolError):
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(
            json.dumps(
                {
                    "results": [r.to_dict() for r in results],
                    "ok": all(r.ok for r in results),
                },
                indent=2,
            )
        )
    else:
        for result in results:
            print(result.format())
    return 0 if all(r.ok for r in results) else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Protocol linter for the causal-middleware repo.",
    )
    sub = parser.add_subparsers(dest="command")

    lint_parser = sub.add_parser("lint", help="lint files or directories")
    lint_parser.add_argument("paths", nargs="+", help="files or directories")
    lint_parser.add_argument(
        "--json", action="store_true", help="emit diagnostics as JSON"
    )
    lint_parser.add_argument(
        "--sarif",
        default=None,
        metavar="FILE",
        help="also write the findings as SARIF 2.1.0 (code scanning)",
    )
    lint_parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint_parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RXXX",
        help="run one rule (repeatable; combines with --select)",
    )
    lint_parser.add_argument(
        "--cache",
        default=None,
        metavar="FILE",
        help="content-hash result cache (rule selections get their own "
        "cache bucket)",
    )
    lint_parser.add_argument(
        "--changed",
        action="store_true",
        help="scope file rules to git-changed files (project rules still "
        "run whole-program)",
    )
    lint_parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings fingerprinted in this baseline file",
    )
    lint_parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings as a baseline file and exit 0",
    )
    lint_parser.set_defaults(func=_cmd_lint)

    rules_parser = sub.add_parser("rules", help="list the rule catalogue")
    rules_parser.set_defaults(func=_cmd_rules)

    model_parser = sub.add_parser(
        "model",
        help="small-scope model-check a causal core (admission gate)",
    )
    model_parser.add_argument(
        "core",
        nargs="?",
        default=None,
        help="registered core name, or a path to a candidate .py file",
    )
    model_parser.add_argument(
        "--all",
        action="store_true",
        help="check every registered causal core (causal=False baselines "
        "are skipped)",
    )
    model_parser.add_argument(
        "--servers",
        type=int,
        default=3,
        metavar="N",
        help="servers in the explored scope (capped at 3)",
    )
    model_parser.add_argument(
        "--messages",
        type=int,
        default=3,
        metavar="M",
        help="messages in the explored scope (capped at 4)",
    )
    model_parser.add_argument(
        "--changed",
        action="store_true",
        help="run only when git-changed files touch clocks/, mom/ or "
        "protocol/; otherwise exit 0 immediately",
    )
    model_parser.add_argument(
        "--json", action="store_true", help="emit results as JSON"
    )
    model_parser.set_defaults(func=_cmd_model)

    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help(sys.stderr)
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
