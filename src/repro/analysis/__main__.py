"""CLI entry point: ``python -m repro.analysis lint src/``.

Exit codes: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.lint import lint_paths
from repro.analysis.rules import ALL_RULES


def _cmd_lint(args: argparse.Namespace) -> int:
    select = args.select.split(",") if args.select else None
    try:
        findings = lint_paths(args.paths, select=select)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps([d.to_dict() for d in findings], indent=2))
    else:
        for diagnostic in findings:
            print(diagnostic.format())
        if findings:
            print(f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


def _cmd_rules(args: argparse.Namespace) -> int:
    for rule in ALL_RULES:
        print(f"{rule.rule_id}  {rule.title}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Protocol linter for the causal-middleware repo.",
    )
    sub = parser.add_subparsers(dest="command")

    lint_parser = sub.add_parser("lint", help="lint files or directories")
    lint_parser.add_argument("paths", nargs="+", help="files or directories")
    lint_parser.add_argument(
        "--json", action="store_true", help="emit diagnostics as JSON"
    )
    lint_parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint_parser.set_defaults(func=_cmd_lint)

    rules_parser = sub.add_parser("rules", help="list the rule catalogue")
    rules_parser.set_defaults(func=_cmd_rules)

    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help(sys.stderr)
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
