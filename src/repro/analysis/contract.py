"""R018–R023: the :class:`~repro.protocol.core.CausalCore` contract tier.

The PR-10 refactor moved every protocol decision (stamping, the
deliverability test, duplicate detection, merge/commit, the wire codec)
behind a registered ``CausalCore``. That plug-in seam is only safe if
every core honours a contract the interpreter never checks:

- **R018** — core isolation: outside the protocol-owning packages
  (``clocks``, ``protocol``, ``baselines``) nobody reads private core
  state, writes *any* core state, or calls a mutator on it. The channel
  and engine must stay protocol-agnostic: all decisions flow through the
  registered core's public surface.
- **R019** — interface conformance: every registered core implements the
  full abstract ``CausalCore`` surface — no inherited abstract stubs, no
  arity drift, no annotations unrelated to the contract's types.
- **R020** — deliverability-test purity: nothing reachable from a core's
  ``deliverable``/``duplicate`` (or its clock's ``can_deliver``/
  ``is_duplicate``) may mutate core state. The hold-back store probes
  these guards speculatively; an impure guard corrupts state on probes
  that do not commit. A lazy memo fill (``if x is None: ... self._x = x``)
  is the one tolerated write — it caches a pure computation.
- **R021** — stamp picklability: every registered core's stamp type
  crosses the sharded kernel's worker pipe pickled; fields must be
  statically picklable (no lambdas, locks, open files, bound methods).
- **R022** — core nondeterminism taint: a value drawn from an
  ``RngFactory`` stream must never be written into core state, wherever
  the core is defined — plug-in cores outside the classic protocol
  packages get the same determinism guarantee R007 gives the built-ins.
- **R023** — registration completeness: every ``CausalClock`` subclass
  is claimed by a registered core or carries an explicit
  ``protocol_exempt = "<why>"`` marker; every ``_CLOCKS`` boot entry
  resolves to a registered core or an exempt clock; every
  ``repro.baselines`` variant module either contributes a registered
  clock or declares ``PROTOCOL_EXEMPT = "<why>"``.

All six are :class:`~repro.analysis.rulebase.ProjectRule` instances: the
registry itself is discovered statically, from ``register_core(...)``
call sites resolved through the project's class table — no imports, no
execution.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import ClassInfo, FunctionInfo, Project
from repro.analysis.concurrency import fork_model
from repro.analysis.dataflow import expr_chain
from repro.analysis.lint import Diagnostic, LintContext
from repro.analysis.rulebase import MUTATOR_METHODS, ProjectRule, package_of

#: Class names whose subclass closure *is* core state: a value of one of
#: these types may only be touched by the protocol-owning packages.
STATE_ROOTS = ("CausalClock", "Stamp", "CausalCore")

#: Packages that own protocol state — R018 does not police them.
PROTOCOL_OWNERS = frozenset({"clocks", "protocol", "baselines"})


def _is_abstract(node: ast.AST) -> bool:
    for decorator in getattr(node, "decorator_list", []):
        if isinstance(decorator, ast.Name) and decorator.id == "abstractmethod":
            return True
        if (
            isinstance(decorator, ast.Attribute)
            and decorator.attr == "abstractmethod"
        ):
            return True
    return False


def _class_body_assign(cls: ClassInfo, attr: str) -> Optional[ast.expr]:
    """The value assigned to a class-level ``attr`` in ``cls``'s own
    body, or ``None``."""
    for stmt in cls.node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == attr:
                    return stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == attr
                and stmt.value is not None
            ):
                return stmt.value
    return None


def _inherited_class_assign(
    project: Project, cls: ClassInfo, attr: str
) -> Optional[ast.expr]:
    """Class-level ``attr`` resolved through the declared bases (BFS)."""
    seen: Set[str] = set()
    queue: List[ClassInfo] = [cls]
    while queue:
        current = queue.pop(0)
        if current.qualname in seen:
            continue
        seen.add(current.qualname)
        value = _class_body_assign(current, attr)
        if value is not None:
            return value
        for base in current.bases:
            parent = project.class_named(base)
            if parent is not None:
                queue.append(parent)
    return None


@dataclass
class RegisteredCore:
    """One statically discovered ``register_core(SomeCore())`` call."""

    cls: ClassInfo
    site: ast.AST
    module: str
    name: Optional[str]
    clock_cls: Optional[ClassInfo]
    stamp_cls: Optional[ClassInfo]
    causal: bool

    @property
    def label(self) -> str:
        return self.name if self.name else self.cls.name


class CoreContract:
    """Registry discovery + the core-state class closure, shared by the
    contract rules (cached per :class:`Project` like the effect engine)."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.cores: List[RegisteredCore] = self._discover()
        names: Set[str] = set()
        qualnames: Set[str] = set()
        for root in STATE_ROOTS:
            base = project.class_named(root)
            if base is not None:
                names.add(base.name)
                qualnames.add(base.qualname)
            for sub in project.subclasses_of(root):
                names.add(sub.name)
                qualnames.add(sub.qualname)
        for core in self.cores:
            for cls in (core.cls, core.clock_cls, core.stamp_cls):
                if cls is not None:
                    names.add(cls.name)
                    qualnames.add(cls.qualname)
        #: Simple class names whose instances are core state (receiver
        #: inference yields simple names).
        self.state_names: FrozenSet[str] = frozenset(names)
        #: Qualnames of the same classes (method-ownership tests).
        self.state_qualnames: FrozenSet[str] = frozenset(qualnames)

    def _discover(self) -> List[RegisteredCore]:
        found: List[RegisteredCore] = []
        seen_sites: Set[Tuple[str, int, int]] = set()
        for module in sorted(self.project.modules):
            info = self.project.modules[module]
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute) else None
                )
                if name != "register_core" or not node.args:
                    continue
                arg = node.args[0]
                if not (
                    isinstance(arg, ast.Call) and isinstance(arg.func, ast.Name)
                ):
                    continue
                cls = self.project.class_named(arg.func.id)
                if cls is None:
                    continue
                key = (module, node.lineno, node.col_offset)
                if key in seen_sites:
                    continue
                seen_sites.add(key)
                found.append(self._describe(cls, node, module))
        return found

    def _describe(
        self, cls: ClassInfo, site: ast.AST, module: str
    ) -> RegisteredCore:
        name_expr = _inherited_class_assign(self.project, cls, "name")
        name = (
            name_expr.value
            if isinstance(name_expr, ast.Constant)
            and isinstance(name_expr.value, str)
            and name_expr.value
            else None
        )
        causal_expr = _inherited_class_assign(self.project, cls, "causal")
        causal = not (
            isinstance(causal_expr, ast.Constant) and causal_expr.value is False
        )
        return RegisteredCore(
            cls=cls,
            site=site,
            module=module,
            name=name,
            clock_cls=self._class_ref(cls, "clock_cls"),
            stamp_cls=self._class_ref(cls, "stamp_cls"),
            causal=causal,
        )

    def _class_ref(self, cls: ClassInfo, attr: str) -> Optional[ClassInfo]:
        expr = _inherited_class_assign(self.project, cls, attr)
        if isinstance(expr, ast.Name):
            return self.project.class_named(expr.id)
        if isinstance(expr, ast.Attribute):
            return self.project.class_named(expr.attr)
        return None

    # -- receiver classification ---------------------------------------

    def state_receiver(
        self,
        expr: ast.expr,
        env: Dict[str, object],
        fn: FunctionInfo,
    ) -> Optional[str]:
        """The core-state class name ``expr`` statically evaluates to,
        or ``None``."""
        inferred = self.project.infer_expr(expr, env, fn)  # type: ignore[arg-type]
        if inferred is not None and inferred[0] == "cls":
            name = str(inferred[1])
            if name in self.state_names:
                return name
        return None


def core_contract(project: Project) -> CoreContract:
    """One :class:`CoreContract` per project, shared across rules."""
    contract = getattr(project, "_core_contract", None)
    if contract is None:
        contract = CoreContract(project)
        project._core_contract = contract  # type: ignore[attr-defined]
    return contract


# ----------------------------------------------------------------------
# R018 — core isolation
# ----------------------------------------------------------------------


class CoreIsolation(ProjectRule):
    """R018: core state is only touched by the protocol-owning packages."""

    rule_id = "R018"
    title = "protocol core state touched outside the core boundary"

    def check_project(
        self, project: Project, contexts: Dict[str, LintContext]
    ) -> Iterator[Diagnostic]:
        contract = core_contract(project)
        if not contract.state_names:
            return
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            package = package_of(fn.module)
            if package is None or package in PROTOCOL_OWNERS:
                continue
            if fn.cls is not None and fn.cls.qualname in contract.state_qualnames:
                continue  # a core's own methods manage their own state
            ctx = contexts.get(fn.module)
            if ctx is None:
                continue
            yield from self._check_function(fn, contract, ctx)

    def _check_function(
        self, fn: FunctionInfo, contract: CoreContract, ctx: LintContext
    ) -> Iterator[Diagnostic]:
        env = contract.project.local_env(fn)
        reported: Set[Tuple[int, int]] = set()

        def emit(node: ast.AST, message: str) -> Iterator[Diagnostic]:
            spot = (
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
            )
            if spot not in reported:
                reported.add(spot)
                yield ctx.diagnostic(self.rule_id, node, message)

        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
            ):
                owner = node.func.value
                receivers = [owner]
                if isinstance(owner, ast.Attribute):
                    receivers.append(owner.value)
                for receiver in receivers:
                    name = contract.state_receiver(receiver, env, fn)
                    if name is not None:
                        yield from emit(
                            node,
                            f".{node.func.attr}() mutates state of protocol "
                            f"core class '{name}' from outside the core "
                            "boundary; only the registered CausalCore (and "
                            "the clocks/protocol/baselines packages) may "
                            "change protocol state",
                        )
                        break
            elif isinstance(node, ast.Attribute):
                name = contract.state_receiver(node.value, env, fn)
                if name is None:
                    continue
                attr = node.attr
                private = attr.startswith("_") and not (
                    attr.startswith("__") and attr.endswith("__")
                )
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    yield from emit(
                        node,
                        f"write to '.{attr}' of protocol core class "
                        f"'{name}' from outside the core boundary; protocol "
                        "state changes only through the registered "
                        "CausalCore's methods",
                    )
                elif private:
                    yield from emit(
                        node,
                        f"access to private '.{attr}' of protocol core "
                        f"class '{name}' from outside the core boundary; "
                        "go through the core's public surface so plug-in "
                        "cores stay substitutable",
                    )


# ----------------------------------------------------------------------
# R019 — interface conformance
# ----------------------------------------------------------------------


def _annotation_name(expr: Optional[ast.expr]) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        tail = expr.value.split(".")[-1].strip()
        return tail if tail.isidentifier() else None
    if isinstance(expr, ast.Subscript):
        return _annotation_name(expr.value)
    return None


def _related(project: Project, first: str, second: str) -> bool:
    """Do the two class names coincide or sit on one inheritance chain
    (by declared base names)?"""
    if first == second:
        return True

    def reaches(start: str, goal: str) -> bool:
        seen: Set[str] = set()
        queue = [start]
        while queue:
            current = queue.pop(0)
            if current == goal:
                return True
            if current in seen:
                continue
            seen.add(current)
            cls = project.class_named(current)
            if cls is not None:
                queue.extend(cls.bases)
        return False

    return reaches(first, second) or reaches(second, first)


class InterfaceConformance(ProjectRule):
    """R019: registered cores implement the full abstract surface."""

    rule_id = "R019"
    title = "registered core does not conform to the CausalCore interface"

    _CLASS_ATTRS = ("name", "clock_cls", "stamp_cls")

    def check_project(
        self, project: Project, contexts: Dict[str, LintContext]
    ) -> Iterator[Diagnostic]:
        contract = core_contract(project)
        base = project.class_named("CausalCore")
        if base is None or not contract.cores:
            return
        abstract = {
            name: base.methods[name]
            for name in sorted(base.methods)
            if _is_abstract(base.methods[name].node)
        }
        emitted: Set[Tuple[str, int, str]] = set()

        def emit(
            module: str, node: ast.AST, message: str
        ) -> Iterator[Diagnostic]:
            ctx = contexts.get(module)
            if ctx is None:
                return
            key = (module, getattr(node, "lineno", 0), message)
            if key in emitted:
                return
            emitted.add(key)
            yield ctx.diagnostic(self.rule_id, node, message)

        for core in contract.cores:
            for attr in self._CLASS_ATTRS:
                if _inherited_class_assign(project, core.cls, attr) is None:
                    yield from emit(
                        core.cls.module,
                        core.cls.node,
                        f"registered core '{core.label}' declares no "
                        f"'{attr}' class attribute; the registry and the "
                        "bus resolve cores through it",
                    )
            if (
                _inherited_class_assign(project, core.cls, "name") is not None
                and core.name is None
            ):
                yield from emit(
                    core.cls.module,
                    core.cls.node,
                    f"registered core '{core.cls.name}' has a 'name' that "
                    "is not a non-empty string literal; registry lookups "
                    "key on it",
                )
            for method_name in sorted(abstract):
                spec = abstract[method_name]
                impl = project.lookup_method(core.cls, method_name)
                if impl is None or _is_abstract(impl.node):
                    yield from emit(
                        core.cls.module,
                        core.cls.node,
                        f"registered core '{core.label}' does not implement "
                        f"abstract method {method_name}(); instantiating it "
                        "raises TypeError at boot",
                    )
                    continue
                yield from self._check_signature(
                    project, core, spec, impl, emit
                )

    def _check_signature(self, project, core, spec, impl, emit):
        spec_args = spec.node.args
        impl_args = impl.node.args
        if impl_args.vararg is None and len(impl_args.args) != len(
            spec_args.args
        ):
            yield from emit(
                impl.module,
                impl.node,
                f"{core.label}.{impl.name}() takes {len(impl_args.args)} "
                f"positional parameter(s), but the CausalCore contract "
                f"declares {len(spec_args.args)}; the channel calls every "
                "core through the contract signature",
            )
            return
        pairs = list(zip(spec_args.args, impl_args.args))
        pairs.append(
            (  # type: ignore[arg-type]
                _ReturnSlot(spec.node),
                _ReturnSlot(impl.node),
            )
        )
        for spec_slot, impl_slot in pairs:
            spec_ann = _annotation_name(spec_slot.annotation)
            impl_ann = _annotation_name(impl_slot.annotation)
            if spec_ann is None or impl_ann is None:
                continue
            if not _related(project, spec_ann, impl_ann):
                where = getattr(spec_slot, "arg", "return")
                yield from emit(
                    impl.module,
                    impl.node,
                    f"{core.label}.{impl.name}() annotates '{where}' as "
                    f"'{impl_ann}', unrelated to the contract's "
                    f"'{spec_ann}'; core signatures must stay compatible "
                    "with the CausalCore surface",
                )


class _ReturnSlot:
    """Adapter so the return annotation joins the parameter loop."""

    arg = "return"

    def __init__(self, node: ast.AST) -> None:
        self.annotation = getattr(node, "returns", None)


# ----------------------------------------------------------------------
# R020 — deliverability-test purity
# ----------------------------------------------------------------------


def _parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _memo_aliases(fn_node: ast.AST) -> Dict[str, Set[str]]:
    """``attr -> {local names bound from self.attr}`` anywhere in the
    function (flow-insensitive; good enough for the memo idiom)."""
    aliases: Dict[str, Set[str]] = {}
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        value = node.value
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            aliases.setdefault(value.attr, set()).add(target.id)
    return aliases


def _is_none_test_of(
    test: ast.expr, attr: str, alias_names: Set[str]
) -> bool:
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Is)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return False
    left = test.left
    if isinstance(left, ast.Name):
        return left.id in alias_names
    return (
        isinstance(left, ast.Attribute)
        and isinstance(left.value, ast.Name)
        and left.value.id == "self"
        and left.attr == attr
    )


def _memo_fill_allowed(
    fn_node: ast.AST,
    assign: ast.AST,
    parents: Dict[ast.AST, ast.AST],
    aliases: Dict[str, Set[str]],
) -> bool:
    """Is ``assign`` the write half of the lazy-memo idiom: ``self.X = v``
    guarded by an enclosing ``if <self.X or alias> is None:``?"""
    if not isinstance(assign, ast.Assign) or len(assign.targets) != 1:
        return False
    target = assign.targets[0]
    if not (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return False
    attr = target.attr
    alias_names = aliases.get(attr, set())
    node: ast.AST = assign
    while node in parents:
        node = parents[node]
        if isinstance(node, ast.If) and _is_none_test_of(
            node.test, attr, alias_names
        ):
            return True
        if node is fn_node:
            break
    return False


class DeliverabilityPurity(ProjectRule):
    """R020: deliverability/duplicate guards are mutation-free."""

    rule_id = "R020"
    title = "deliverability test reaches a core-state mutation"

    _CORE_GUARDS = ("deliverable", "duplicate")
    _CLOCK_GUARDS = ("can_deliver", "is_duplicate")

    def check_project(
        self, project: Project, contexts: Dict[str, LintContext]
    ) -> Iterator[Diagnostic]:
        contract = core_contract(project)
        roots: Set[str] = set()
        for core in contract.cores:
            for method_name in self._CORE_GUARDS:
                impl = project.lookup_method(core.cls, method_name)
                if impl is not None:
                    roots.add(impl.qualname)
            if core.clock_cls is not None:
                for method_name in self._CLOCK_GUARDS:
                    impl = project.lookup_method(core.clock_cls, method_name)
                    if impl is not None:
                        roots.add(impl.qualname)
        if not roots:
            return
        parent = project.reachable_from(sorted(roots))
        for qualname in sorted(parent):
            fn = project.functions[qualname]
            if fn.cls is None or fn.cls.name not in contract.state_names:
                continue  # purity is about core state, not helpers
            ctx = contexts.get(fn.module)
            if ctx is None:
                continue
            chain = " -> ".join(
                name.rsplit(".", 1)[-1]
                for name in project.path_to(parent, qualname)
            )
            yield from self._check_function(fn, ctx, chain)

    def _check_function(
        self, fn: FunctionInfo, ctx: LintContext, chain: str
    ) -> Iterator[Diagnostic]:
        parents = _parent_map(fn.node)
        aliases = _memo_aliases(fn.node)
        params = {arg.arg for arg in fn.params}
        for node in ast.walk(fn.node):
            described = self._mutation(node, params)
            if described is None:
                continue
            if _memo_fill_allowed(fn.node, node, parents, aliases):
                continue  # lazy memo of a pure computation
            yield ctx.diagnostic(
                self.rule_id,
                node,
                f"{described} inside the deliverability closure (guard "
                f"path: {chain}); the hold-back store probes "
                "deliverable()/duplicate() speculatively, so any state "
                "change here corrupts clocks on probes that do not commit",
            )

    @staticmethod
    def _mutation(node: ast.AST, params: Set[str]) -> Optional[str]:
        """A description if ``node`` mutates reachable state, else None."""
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in MUTATOR_METHODS:
                chain = expr_chain(node.func.value)
                if chain is not None:
                    root = chain.split(".")[0]
                    if root == "self" or root in params:
                        return (
                            f".{node.func.attr}() call mutating '{chain}'"
                        )
            return None
        for target in targets:
            if isinstance(target, ast.Subscript):
                target = target.value
            chain = expr_chain(target)
            if chain is None or "." not in chain:
                continue  # locals are fair game
            root = chain.split(".")[0]
            if root == "self" or root in params:
                return f"write to '{chain}'"
        return None


# ----------------------------------------------------------------------
# R021 — stamp picklability
# ----------------------------------------------------------------------


class StampPicklability(ProjectRule):
    """R021: registered stamp types survive the worker pipe."""

    rule_id = "R021"
    title = "registered stamp type holds an unpicklable field"

    def check_project(
        self, project: Project, contexts: Dict[str, LintContext]
    ) -> Iterator[Diagnostic]:
        contract = core_contract(project)
        model = fork_model(project)
        seen: Set[str] = set()
        for core in contract.cores:
            stamp_cls = core.stamp_cls
            if stamp_cls is None or stamp_cls.qualname in seen:
                continue
            seen.add(stamp_cls.qualname)
            ctx = contexts.get(stamp_cls.module)
            if ctx is None:
                continue
            for site, field_name, why in model.unpicklable_fields(stamp_cls):
                yield ctx.diagnostic(
                    self.rule_id,
                    site,
                    f"field '{stamp_cls.name}.{field_name}' holds {why}, "
                    f"but '{stamp_cls.name}' is the registered stamp type "
                    f"of core '{core.label}' and crosses the sharded "
                    "kernel's worker pipe pickled; stamp fields must be "
                    "statically picklable",
                )


# ----------------------------------------------------------------------
# R022 — core nondeterminism taint
# ----------------------------------------------------------------------


def _contains_stream_call(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "stream"
        ):
            return True
    return False


def _mentions_names(expr: ast.AST, names: Set[str]) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in names:
            return True
    return False


class CoreRngTaint(ProjectRule):
    """R022: rng-derived values never enter core state, wherever the
    core lives."""

    rule_id = "R022"
    title = "rng stream value written into protocol core state"

    def check_project(
        self, project: Project, contexts: Dict[str, LintContext]
    ) -> Iterator[Diagnostic]:
        contract = core_contract(project)
        if not contract.state_names:
            return
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            if not fn.module.startswith("repro."):
                continue
            ctx = contexts.get(fn.module)
            if ctx is None:
                continue
            yield from self._check_function(fn, contract, ctx)

    def _check_function(
        self, fn: FunctionInfo, contract: CoreContract, ctx: LintContext
    ) -> Iterator[Diagnostic]:
        tainted = self._tainted_locals(fn.node)
        env = None
        for node in ast.walk(fn.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            value = getattr(node, "value", None)
            if value is None:
                continue
            if not (
                _contains_stream_call(value)
                or _mentions_names(value, tainted)
            ):
                continue
            for target in targets:
                if isinstance(target, ast.Subscript):
                    target = target.value
                if not isinstance(target, ast.Attribute):
                    continue
                if env is None:
                    env = contract.project.local_env(fn)
                receiver = contract.state_receiver(target.value, env, fn)
                if receiver is None and isinstance(target.value, ast.Name):
                    if target.value.id == "self" and fn.cls is not None:
                        if fn.cls.name in contract.state_names:
                            receiver = fn.cls.name
                if receiver is not None:
                    yield ctx.diagnostic(
                        self.rule_id,
                        node,
                        f"value derived from an RngFactory stream is "
                        f"written into state of protocol core class "
                        f"'{receiver}'; core state must be a deterministic "
                        "function of message order — randomness belongs to "
                        "the simulation/network layer (R007's guarantee, "
                        "extended to plug-in cores)",
                    )

    @staticmethod
    def _tainted_locals(fn_node: ast.AST) -> Set[str]:
        """Local names (transitively, intra-method) derived from a
        ``.stream(...)`` draw — a small fixpoint, flow-insensitive."""
        tainted: Set[str] = set()
        assigns: List[Tuple[List[str], ast.expr]] = []
        for node in ast.walk(fn_node):
            if not isinstance(node, ast.Assign):
                continue
            names = [
                target.id
                for target in node.targets
                if isinstance(target, ast.Name)
            ]
            if names:
                assigns.append((names, node.value))
        changed = True
        while changed:
            changed = False
            for names, value in assigns:
                if set(names) <= tainted:
                    continue
                if _contains_stream_call(value) or _mentions_names(
                    value, tainted
                ):
                    tainted.update(names)
                    changed = True
        return tainted


# ----------------------------------------------------------------------
# R023 — registration completeness
# ----------------------------------------------------------------------


def _module_exempt(tree: ast.AST) -> bool:
    for stmt in getattr(tree, "body", []):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "PROTOCOL_EXEMPT"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    return True
    return False


class RegistrationCompleteness(ProjectRule):
    """R023: every bootable protocol variant is registered or exempt."""

    rule_id = "R023"
    title = "protocol variant neither registered nor explicitly exempt"

    def check_project(
        self, project: Project, contexts: Dict[str, LintContext]
    ) -> Iterator[Diagnostic]:
        contract = core_contract(project)
        registered_clocks = {
            core.clock_cls.qualname
            for core in contract.cores
            if core.clock_cls is not None
        }
        registered_names = {
            core.name for core in contract.cores if core.name is not None
        }

        def class_exempt(cls: ClassInfo) -> bool:
            value = _inherited_class_assign(project, cls, "protocol_exempt")
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                return True
            info = project.modules.get(cls.module)
            return info is not None and _module_exempt(info.tree)

        clock_subclasses = project.subclasses_of("CausalClock")
        for sub in clock_subclasses:
            if sub.module == "repro.clocks.base":
                continue
            if sub.qualname in registered_clocks or class_exempt(sub):
                continue
            ctx = contexts.get(sub.module)
            if ctx is None:
                continue
            yield ctx.diagnostic(
                self.rule_id,
                sub.node,
                f"CausalClock subclass '{sub.name}' is not the clock of "
                "any registered core; register a CausalCore for it or "
                "mark it protocol_exempt = \"<why>\" so the contract "
                "rules know it is not a bootable protocol",
            )

        # _CLOCKS boot table: every name make_bus accepts must resolve.
        info = project.modules.get("repro.mom.config")
        if info is not None:
            ctx = contexts.get("repro.mom.config")
            for key_node, value_node in self._clock_table(info.tree):
                if not (
                    isinstance(key_node, ast.Constant)
                    and isinstance(key_node.value, str)
                ):
                    continue
                name = key_node.value
                if name in registered_names:
                    continue
                cls = (
                    project.class_named(value_node.id)
                    if isinstance(value_node, ast.Name)
                    else None
                )
                if cls is not None and class_exempt(cls):
                    continue
                if ctx is not None:
                    yield ctx.diagnostic(
                        self.rule_id,
                        key_node,
                        f"make_bus can boot clock algorithm '{name}', but "
                        "no registered core claims that name and its clock "
                        "is not protocol_exempt; every bootable variant "
                        "must go through the registry",
                    )

        # baselines variant modules declare their registry relationship
        for module in sorted(project.modules):
            if not module.startswith("repro.baselines."):
                continue
            info = project.modules[module]
            if _module_exempt(info.tree):
                continue
            local_clocks = [
                sub for sub in clock_subclasses if sub.module == module
            ]
            if local_clocks:
                continue  # covered (or flagged) by the subclass pass
            ctx = contexts.get(module)
            if ctx is None:
                continue
            anchor = info.tree.body[0] if getattr(info.tree, "body", None) else info.tree
            yield ctx.diagnostic(
                self.rule_id,
                anchor,
                f"baselines variant module '{module}' neither contributes "
                "a registered clock nor declares PROTOCOL_EXEMPT = "
                "\"<why>\"; every protocol variant must state its "
                "relationship to the core registry",
            )

    @staticmethod
    def _clock_table(
        tree: ast.AST,
    ) -> Iterator[Tuple[ast.expr, ast.expr]]:
        for stmt in getattr(tree, "body", []):
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            value = getattr(stmt, "value", None)
            if not isinstance(value, ast.Dict):
                continue
            if not any(
                isinstance(target, ast.Name) and target.id == "_CLOCKS"
                for target in targets
            ):
                continue
            for key, entry in zip(value.keys, value.values):
                if key is not None:
                    yield key, entry


CONTRACT_RULES: Tuple[ProjectRule, ...] = (
    CoreIsolation(),
    InterfaceConformance(),
    DeliverabilityPurity(),
    StampPicklability(),
    CoreRngTaint(),
    RegistrationCompleteness(),
)
