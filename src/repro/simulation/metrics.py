"""Lightweight metrics: counters and sample collections.

Every experiment reports through a :class:`MetricsRegistry`; the bench
harness turns registries into the rows of the paper's figures.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (add {amount})"
            )
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Samples:
    """A collection of float observations with summary statistics."""

    __slots__ = ("name", "_values")

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []

    def record(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return math.nan
        return float(np.mean(self._values))

    @property
    def std(self) -> float:
        if len(self._values) < 2:
            return 0.0
        return float(np.std(self._values, ddof=1))

    @property
    def minimum(self) -> float:
        return min(self._values) if self._values else math.nan

    @property
    def maximum(self) -> float:
        return max(self._values) if self._values else math.nan

    def percentile(self, q: float) -> float:
        if not self._values:
            return math.nan
        return float(np.percentile(self._values, q))

    def __repr__(self) -> str:
        return f"Samples({self.name}: n={self.count}, mean={self.mean:.3f})"


class MetricsRegistry:
    """Named counters and sample sets, created on first use."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._samples: Dict[str, Samples] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def samples(self, name: str) -> Samples:
        samples = self._samples.get(name)
        if samples is None:
            samples = Samples(name)
            self._samples[name] = samples
        return samples

    def snapshot(self) -> Dict[str, float]:
        """Flatten to ``{name: value}`` (counters) and
        ``{name.mean/.p50/.p99: value}`` (samples)."""
        flat: Dict[str, float] = {}
        for name, counter in self._counters.items():
            flat[name] = counter.value
        for name, samples in self._samples.items():
            flat[f"{name}.count"] = samples.count
            flat[f"{name}.mean"] = samples.mean
            flat[f"{name}.p50"] = samples.percentile(50)
            flat[f"{name}.p99"] = samples.percentile(99)
        return flat

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={sorted(self._counters)}, "
            f"samples={sorted(self._samples)})"
        )
