"""Lightweight metrics: counters and sample collections.

Every experiment reports through a :class:`MetricsRegistry`; the bench
harness turns registries into the rows of the paper's figures.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.errors import ConfigurationError


_PAIRWISE_BLOCK = 128


def _pairwise_sum(values: List[float], start: int, count: int) -> float:
    """Float sum with numpy's pairwise algorithm, bit for bit.

    The metrics snapshots feed determinism fingerprints that were recorded
    when :class:`Samples` used ``np.mean``; a plain ``sum()`` (or
    ``math.fsum``) rounds differently in the last ulp. This mirrors
    numpy's ``pairwise_sum_DOUBLE``: sequential below 8 elements, eight
    interleaved accumulators up to one block, recursive halving (rounded
    to a multiple of 8) above.
    """
    if count < 8:
        total = 0.0
        for i in range(start, start + count):
            total += values[i]
        return total
    if count <= _PAIRWISE_BLOCK:
        acc = values[start : start + 8]
        i = start + 8
        last = start + count - (count % 8)
        while i < last:
            for j in range(8):
                acc[j] += values[i + j]
            i += 8
        total = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + (
            (acc[4] + acc[5]) + (acc[6] + acc[7])
        )
        for i in range(last, start + count):
            total += values[i]
        return total
    half = count // 2
    half -= half % 8
    return _pairwise_sum(values, start, half) + _pairwise_sum(
        values, start + half, count - half
    )


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (add {amount})"
            )
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class LazyCounter:
    """An interned counter handle that defers registration to first use.

    Hot paths resolve ``registry.counter(name)`` once per component
    instead of once per event, but eager resolution would *register* the
    counter immediately and surface zero-valued keys in snapshots that
    lazily-looked-up counters never created. This handle keeps the
    registration lazy (snapshot key sets stay exactly as before) while
    making the per-event cost a single attribute check.
    """

    __slots__ = ("_registry", "_name", "_counter")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name
        self._counter: Counter = None  # type: ignore[assignment]

    def add(self, amount: int = 1) -> None:
        counter = self._counter
        if counter is None:
            counter = self._registry.counter(self._name)
            self._counter = counter
        counter.add(amount)

    def __repr__(self) -> str:
        return f"LazyCounter({self._name})"


class Samples:
    """A collection of float observations with summary statistics."""

    __slots__ = ("name", "_values")

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []

    def record(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    @property
    def mean(self) -> float:
        """Mean over the *sorted* values: a canonical summation order, so
        the statistic depends only on the observation multiset — per-shard
        sample sets merged in any order reproduce the sequential value bit
        for bit (docs/parallel.md)."""
        if not self._values:
            return math.nan
        ordered = sorted(self._values)
        return _pairwise_sum(ordered, 0, len(ordered)) / len(ordered)

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1) in canonical (sorted)
        summation order, like :attr:`mean`."""
        n = len(self._values)
        if n < 2:
            return 0.0
        mean = self.mean
        squares = [(v - mean) * (v - mean) for v in sorted(self._values)]
        return math.sqrt(_pairwise_sum(squares, 0, n) / (n - 1))

    @property
    def minimum(self) -> float:
        return min(self._values) if self._values else math.nan

    @property
    def maximum(self) -> float:
        return max(self._values) if self._values else math.nan

    def percentile(self, q: float) -> float:
        """Linear-interpolation percentile — numpy's default ``linear``
        method, including its lerp rounding (``b - diff·(1-γ)`` when
        γ ≥ ½), so pre-rewrite fingerprints still match bit for bit."""
        values = self._values
        if not values:
            return math.nan
        ordered = sorted(values)
        n = len(ordered)
        virtual = (q / 100.0) * (n - 1)
        lower = math.floor(virtual)
        upper = min(lower + 1, n - 1)
        gamma = virtual - lower
        a = ordered[lower]
        b = ordered[upper]
        diff = b - a
        if gamma >= 0.5:
            return b - diff * (1.0 - gamma)
        return a + diff * gamma

    def __repr__(self) -> str:
        return f"Samples({self.name}: n={self.count}, mean={self.mean:.3f})"


class MetricsRegistry:
    """Named counters and sample sets, created on first use."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._samples: Dict[str, Samples] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def samples(self, name: str) -> Samples:
        samples = self._samples.get(name)
        if samples is None:
            samples = Samples(name)
            self._samples[name] = samples
        return samples

    def snapshot(self) -> Dict[str, float]:
        """Flatten to ``{name: value}`` (counters) and
        ``{name.mean/.p50/.p99: value}`` (samples).

        Keys are emitted in sorted order — first-touch order would depend
        on which shard touched a metric first in a parallel run."""
        flat: Dict[str, float] = {}
        for name in sorted(self._counters):
            flat[name] = self._counters[name].value
        for name in sorted(self._samples):
            samples = self._samples[name]
            flat[f"{name}.count"] = samples.count
            flat[f"{name}.mean"] = samples.mean
            flat[f"{name}.p50"] = samples.percentile(50)
            flat[f"{name}.p99"] = samples.percentile(99)
        return flat

    def dump_state(self) -> Dict[str, Dict[str, object]]:
        """Picklable contents, for shipping a shard's registry to the
        coordinating process."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "samples": {n: list(s.values) for n, s in self._samples.items()},
        }

    def merge_state(self, state: Dict[str, Dict[str, object]]) -> None:
        """Fold one shard's :meth:`dump_state` into this registry.

        Counters add; sample sets concatenate (all summary statistics are
        canonical in the observation multiset, so merge order is
        irrelevant)."""
        for name, value in state["counters"].items():
            self.counter(name).add(int(value))
        for name, values in state["samples"].items():
            samples = self.samples(name)
            for value in values:  # type: ignore[union-attr]
                samples.record(value)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={sorted(self._counters)}, "
            f"samples={sorted(self._samples)})"
        )
