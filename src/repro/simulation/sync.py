"""Conservative synchronization for the sharded kernel (docs/parallel.md).

The coordinator runs a windowed LBTS (lower bound on time stamp) barrier —
the classical null-message idea batched into rounds:

1. every worker reports its earliest pending event time;
2. ``LBTS = min`` over those reports and over all in-transit cross-shard
   arrivals;
3. every event fired in ``[LBTS, LBTS + L)`` — ``L`` being the lookahead,
   the minimum network latency — can only generate cross-shard arrivals at
   ``>= LBTS + L``, so the window ``[LBTS, LBTS + L)`` is safe to run on
   every shard concurrently without any arrival landing inside it;
4. outboxes are collected, routed to their destination shards, and the
   next round begins. Termination: ``LBTS == inf`` (all queues empty,
   nothing in transit).

Messages on the worker pipes are plain tuples:

- parent → worker: ``("grant", bound, arrivals, max_events)``,
  ``("collect", tag)``, ``("finish",)``;
- worker → parent: ``("report", next_time, outbox, now, fired)``,
  ``("state", payload, telemetry)``, ``("error", exc, traceback_text,
  flight)``.

``telemetry`` is the worker's :class:`~repro.simulation.telemetry`
dump (or ``None`` when shard monitoring is off); ``flight`` is the
worker's flight record on a crash — the event ring and state it would
otherwise take to the grave — which the coordinator writes to an
artifact directory and names in the re-raised error ("[flight record:
path]").

This module is MOM-agnostic (layering rule R006): the worker loop drives
a :class:`~repro.simulation.kernel.Simulator` and a
:class:`~repro.simulation.shard.ShardNetwork`; everything bus-specific
reaches it through the opaque ``collect`` and ``flight`` callables.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.simulation.kernel import Simulator
from repro.simulation.shard import OutboxEntry, ShardNetwork


def serve(
    conn,
    sim: Simulator,
    network: ShardNetwork,
    collect: Callable[[Any], Any],
    telemetry: Optional[Any] = None,
    flight: Optional[Callable[[BaseException], Any]] = None,
) -> None:
    """The worker side: answer grant/collect requests until finished.

    Sends one unsolicited initial report so the coordinator can compute
    the first LBTS. Any exception (protocol errors included) is shipped to
    the parent, which re-raises it — a sharded run fails exactly where a
    sequential one would; ``flight`` (when given) builds the crash
    payload shipped alongside, so the worker-side event ring survives.

    ``telemetry`` is an optional
    :class:`~repro.simulation.telemetry.WorkerTelemetry`; all its calls
    are passive recording (observation-only, R008).
    """
    try:
        conn.send(("report", sim.next_event_time(), [], sim.now, 0))
        while True:
            if telemetry is not None:
                t_wait = time.perf_counter()
            message = conn.recv()
            if telemetry is not None:
                telemetry.add_blocked(time.perf_counter() - t_wait)
            command = message[0]
            if command == "grant":
                _, bound, arrivals, max_events = message
                if telemetry is not None:
                    t_run = time.perf_counter()
                for at, dst, src, link_seq, packet in arrivals:
                    network.inject(at, dst, src, link_seq, packet)
                fired = sim.run_window(bound, max_events=max_events)
                outbox = network.drain_outbox()
                if telemetry is not None:
                    telemetry.record_window(len(arrivals), fired, len(outbox))
                    telemetry.add_compute(time.perf_counter() - t_run)
                    t_send = time.perf_counter()
                conn.send((
                    "report",
                    sim.next_event_time(),
                    outbox,
                    sim.now,
                    fired,
                ))
                if telemetry is not None:
                    telemetry.add_pipe(time.perf_counter() - t_send)
            elif command == "collect":
                payload = collect(message[1])
                runtime = None
                if telemetry is not None:
                    runtime = telemetry.dump()
                conn.send(("state", payload, runtime))
            elif command == "finish":
                return
            else:
                raise SimulationError(f"unknown shard command {command!r}")
    except BaseException as exc:  # ship the failure to the coordinator
        import traceback

        record = None
        if flight is not None:
            try:
                record = flight(exc)
            except Exception:
                record = None  # a broken flight dump must not mask exc
        try:
            conn.send(("error", exc, traceback.format_exc(), record))
        except (OSError, ValueError, TypeError, AttributeError):
            # exc unpicklable or pipe gone: ship the text, or give up and
            # let the parent see EOF (it raises SimulationError on that)
            try:
                conn.send(("error", None, traceback.format_exc(), record))
            except (OSError, ValueError, TypeError):
                return
        raise


class ShardCoordinator:
    """The parent side: grants safe windows and routes in-transit packets.

    Args:
        conns: one duplex connection per worker, worker ``i`` homing the
            servers mapped to shard ``i`` by ``shard_of``.
        lookahead: the window width ``L`` — must be positive (it equals
            the minimum network latency, checked by the eligibility gate).
        shard_of: destination server id → worker index.
        telemetry: optional
            :class:`~repro.simulation.telemetry.CoordinatorTelemetry`;
            records the grant timeline and cross-shard traffic.
    """

    def __init__(
        self,
        conns: Sequence[Any],
        lookahead: float,
        shard_of: Callable[[int], int],
        telemetry: Optional[Any] = None,
    ):
        if lookahead <= 0:
            raise SimulationError(
                f"conservative sync needs lookahead > 0, got {lookahead}"
            )
        self._conns = list(conns)
        self._lookahead = lookahead
        self._shard_of = shard_of
        self._telemetry = telemetry
        self._pending: List[List[OutboxEntry]] = [[] for _ in self._conns]
        self._next_times: List[float] = []
        self._now = 0.0
        self._fired_total = 0
        self._crash_dumps = 0
        #: Per-worker telemetry dumps gathered at the last :meth:`collect`.
        self.worker_telemetry: List[Optional[Dict[str, Any]]] = [
            None for _ in self._conns
        ]
        #: Artifact paths of worker flight records written on crashes.
        self.flight_records: List[str] = []
        for conn in self._conns:
            self._next_times.append(self._recv_report(conn)[0])

    @property
    def now(self) -> float:
        """Global simulated time: the latest event fired on any shard."""
        return self._now

    @property
    def processed_events(self) -> int:
        return self._fired_total

    @property
    def telemetry(self) -> Optional[Any]:
        return self._telemetry

    def _recv_report(self, conn):
        message = conn.recv()
        if message[0] == "error":
            self._raise_worker_error(message)
        if message[0] != "report":
            raise SimulationError(f"unexpected shard reply {message[0]!r}")
        return message[1:]

    def _raise_worker_error(self, message: tuple) -> None:
        """Re-raise a worker failure, writing its flight record first.

        The worker ships its event ring/state alongside the exception;
        writing it here preserves the post-mortem even though the worker
        process is about to die — and the re-raised error's message names
        the artifact, exactly like a sanitizer violation does.
        """
        exc, text = message[1], message[2]
        record = message[3] if len(message) > 3 else None
        path = self._write_flight_record(record)
        if path is not None:
            self.flight_records.append(path)
            note = f"[flight record: {path}]"
            text = f"{text}\n{note}"
            if (
                isinstance(exc, BaseException)
                and exc.args
                and isinstance(exc.args[0], str)
            ):
                exc.args = (f"{exc.args[0]} {note}",) + exc.args[1:]
        if isinstance(exc, BaseException):
            raise exc
        raise SimulationError(f"shard worker failed:\n{text}")

    def _write_flight_record(self, record: Any) -> Optional[str]:
        """Persist a shipped worker flight record; returns its path.

        The worker may have managed a full dump itself (``"path"``); when
        it could not — or when only the ring rows survived the pipe — the
        coordinator writes the ``events.jsonl`` artifact, in the same
        format the ``python -m repro.obs`` CLI reads. Best-effort: any
        failure degrades to "no record" rather than masking the error.
        """
        if not isinstance(record, dict):
            return None
        path = record.get("path")
        if path:
            return str(path)
        rows = record.get("rows")
        if not rows:
            return None
        base = os.environ.get("REPRO_OBS_DIR") or os.path.join(
            tempfile.gettempdir(), "repro-obs"
        )
        self._crash_dumps += 1
        directory = os.path.join(
            base, f"shard-crash-pid{os.getpid()}-{self._crash_dumps:03d}"
        )
        try:
            os.makedirs(directory, exist_ok=True)
            with open(os.path.join(directory, "events.jsonl"), "w") as stream:
                for row in rows:
                    stream.write(json.dumps(row) + "\n")
        except (OSError, TypeError, ValueError):
            return None
        return directory

    def _lbts(self) -> float:
        lbts = min(self._next_times)
        for entries in self._pending:
            for entry in entries:
                if entry[0] < lbts:
                    lbts = entry[0]
        return lbts

    def advance(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run windows until quiescence, ``until``, or the event budget.

        Mirrors :meth:`Simulator.run`: ``until`` is inclusive (the window
        cap is the next float above it), and the return value counts the
        events fired across all shards during this call.
        """
        cap = math.nextafter(until, math.inf) if until is not None else None
        fired_this_call = 0
        while True:
            lbts = self._lbts()
            if math.isinf(lbts):
                break
            if cap is not None and lbts >= cap:
                break
            if max_events is not None and fired_this_call >= max_events:
                break
            bound = lbts + self._lookahead
            if cap is not None and bound > cap:
                bound = cap
            budget = (
                None if max_events is None else max_events - fired_this_call
            )
            granted, self._pending = (
                self._pending, [[] for _ in self._conns]
            )
            for conn, arrivals in zip(self._conns, granted):
                conn.send(("grant", bound, arrivals, budget))
            if self._telemetry is not None:
                t_wait = time.perf_counter()
            fired_per_shard = [0] * len(self._conns)
            for index, conn in enumerate(self._conns):
                next_time, outbox, now, fired = self._recv_report(conn)
                self._next_times[index] = next_time
                if now > self._now:
                    self._now = now
                fired_this_call += fired
                fired_per_shard[index] = fired
                for entry in outbox:
                    dst_shard = self._shard_of(entry[1])
                    if self._telemetry is not None:
                        self._telemetry.record_route(index, dst_shard, entry)
                    self._pending[dst_shard].append(entry)
            if self._telemetry is not None:
                self._telemetry.add_wait(time.perf_counter() - t_wait)
                self._telemetry.record_window(lbts, bound, fired_per_shard)
        if until is not None and self._lbts() >= cap and until > self._now:
            # mirror Simulator.run(): the clock lands exactly on `until`
            # when no event beyond it stopped us early
            self._now = until
        self._fired_total += fired_this_call
        return fired_this_call

    @property
    def idle(self) -> bool:
        """True when every shard queue is empty and nothing is in transit."""
        return math.isinf(self._lbts())

    def collect(self, tag: Any = None) -> List[Any]:
        """Gather one opaque state payload from every worker, in shard
        order (used by the bus to merge metrics/traces/agent state).
        Worker telemetry dumps ride along into :attr:`worker_telemetry`."""
        for conn in self._conns:
            conn.send(("collect", tag))
        states = []
        for index, conn in enumerate(self._conns):
            message = conn.recv()
            if message[0] == "error":
                self._raise_worker_error(message)
            if message[0] != "state":
                raise SimulationError(
                    f"unexpected shard reply {message[0]!r}"
                )
            states.append(message[1])
            self.worker_telemetry[index] = (
                message[2] if len(message) > 2 else None
            )
        return states

    def finish(self) -> None:
        """Tell every worker to exit its serve loop (idempotent)."""
        for conn in self._conns:
            try:
                conn.send(("finish",))
            except (OSError, ValueError):
                pass

    def __repr__(self) -> str:
        return (
            f"ShardCoordinator(shards={len(self._conns)}, "
            f"now={self._now:.3f}, lookahead={self._lookahead})"
        )
