"""Conservative synchronization for the sharded kernel (docs/parallel.md).

The coordinator runs a windowed LBTS (lower bound on time stamp) barrier —
the classical null-message idea batched into rounds:

1. every worker reports its earliest pending event time;
2. ``LBTS = min`` over those reports and over all in-transit cross-shard
   arrivals;
3. every event fired in ``[LBTS, LBTS + L)`` — ``L`` being the lookahead,
   the minimum network latency — can only generate cross-shard arrivals at
   ``>= LBTS + L``, so the window ``[LBTS, LBTS + L)`` is safe to run on
   every shard concurrently without any arrival landing inside it;
4. outboxes are collected, routed to their destination shards, and the
   next round begins. Termination: ``LBTS == inf`` (all queues empty,
   nothing in transit).

Messages on the worker pipes are plain tuples:

- parent → worker: ``("grant", bound, arrivals, max_events)``,
  ``("collect", tag)``, ``("finish",)``;
- worker → parent: ``("report", next_time, outbox, now, fired)``,
  ``("state", payload)``, ``("error", exc, traceback_text)``.

This module is MOM-agnostic (layering rule R006): the worker loop drives
a :class:`~repro.simulation.kernel.Simulator` and a
:class:`~repro.simulation.shard.ShardNetwork`; everything bus-specific
reaches it through the opaque ``collect`` callable.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import SimulationError
from repro.simulation.kernel import Simulator
from repro.simulation.shard import OutboxEntry, ShardNetwork


def serve(conn, sim: Simulator, network: ShardNetwork,
          collect: Callable[[Any], Any]) -> None:
    """The worker side: answer grant/collect requests until finished.

    Sends one unsolicited initial report so the coordinator can compute
    the first LBTS. Any exception (protocol errors included) is shipped to
    the parent, which re-raises it — a sharded run fails exactly where a
    sequential one would.
    """
    try:
        conn.send(("report", sim.next_event_time(), [], sim.now, 0))
        while True:
            message = conn.recv()
            command = message[0]
            if command == "grant":
                _, bound, arrivals, max_events = message
                for time, dst, src, link_seq, packet in arrivals:
                    network.inject(time, dst, src, link_seq, packet)
                fired = sim.run_window(bound, max_events=max_events)
                conn.send((
                    "report",
                    sim.next_event_time(),
                    network.drain_outbox(),
                    sim.now,
                    fired,
                ))
            elif command == "collect":
                conn.send(("state", collect(message[1])))
            elif command == "finish":
                return
            else:
                raise SimulationError(f"unknown shard command {command!r}")
    except BaseException as exc:  # ship the failure to the coordinator
        import traceback

        try:
            conn.send(("error", exc, traceback.format_exc()))
        except (OSError, ValueError, TypeError, AttributeError):
            # exc unpicklable or pipe gone: ship the text, or give up and
            # let the parent see EOF (it raises SimulationError on that)
            try:
                conn.send(("error", None, traceback.format_exc()))
            except OSError:
                return
        raise


class ShardCoordinator:
    """The parent side: grants safe windows and routes in-transit packets.

    Args:
        conns: one duplex connection per worker, worker ``i`` homing the
            servers mapped to shard ``i`` by ``shard_of``.
        lookahead: the window width ``L`` — must be positive (it equals
            the minimum network latency, checked by the eligibility gate).
        shard_of: destination server id → worker index.
    """

    def __init__(
        self,
        conns: Sequence[Any],
        lookahead: float,
        shard_of: Callable[[int], int],
    ):
        if lookahead <= 0:
            raise SimulationError(
                f"conservative sync needs lookahead > 0, got {lookahead}"
            )
        self._conns = list(conns)
        self._lookahead = lookahead
        self._shard_of = shard_of
        self._pending: List[List[OutboxEntry]] = [[] for _ in self._conns]
        self._next_times: List[float] = []
        self._now = 0.0
        self._fired_total = 0
        for conn in self._conns:
            self._next_times.append(self._recv_report(conn)[0])

    @property
    def now(self) -> float:
        """Global simulated time: the latest event fired on any shard."""
        return self._now

    @property
    def processed_events(self) -> int:
        return self._fired_total

    def _recv_report(self, conn):
        message = conn.recv()
        if message[0] == "error":
            exc, text = message[1], message[2]
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(f"shard worker failed:\n{text}")
        if message[0] != "report":
            raise SimulationError(f"unexpected shard reply {message[0]!r}")
        return message[1:]

    def _lbts(self) -> float:
        lbts = min(self._next_times)
        for entries in self._pending:
            for entry in entries:
                if entry[0] < lbts:
                    lbts = entry[0]
        return lbts

    def advance(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run windows until quiescence, ``until``, or the event budget.

        Mirrors :meth:`Simulator.run`: ``until`` is inclusive (the window
        cap is the next float above it), and the return value counts the
        events fired across all shards during this call.
        """
        cap = math.nextafter(until, math.inf) if until is not None else None
        fired_this_call = 0
        while True:
            lbts = self._lbts()
            if math.isinf(lbts):
                break
            if cap is not None and lbts >= cap:
                break
            if max_events is not None and fired_this_call >= max_events:
                break
            bound = lbts + self._lookahead
            if cap is not None and bound > cap:
                bound = cap
            budget = (
                None if max_events is None else max_events - fired_this_call
            )
            granted, self._pending = (
                self._pending, [[] for _ in self._conns]
            )
            for conn, arrivals in zip(self._conns, granted):
                conn.send(("grant", bound, arrivals, budget))
            for index, conn in enumerate(self._conns):
                next_time, outbox, now, fired = self._recv_report(conn)
                self._next_times[index] = next_time
                if now > self._now:
                    self._now = now
                fired_this_call += fired
                for entry in outbox:
                    self._pending[self._shard_of(entry[1])].append(entry)
        if until is not None and self._lbts() >= cap and until > self._now:
            # mirror Simulator.run(): the clock lands exactly on `until`
            # when no event beyond it stopped us early
            self._now = until
        self._fired_total += fired_this_call
        return fired_this_call

    @property
    def idle(self) -> bool:
        """True when every shard queue is empty and nothing is in transit."""
        return math.isinf(self._lbts())

    def collect(self, tag: Any = None) -> List[Any]:
        """Gather one opaque state payload from every worker, in shard
        order (used by the bus to merge metrics/traces/agent state)."""
        for conn in self._conns:
            conn.send(("collect", tag))
        states = []
        for conn in self._conns:
            message = conn.recv()
            if message[0] == "error":
                exc, text = message[1], message[2]
                if isinstance(exc, BaseException):
                    raise exc
                raise SimulationError(f"shard worker failed:\n{text}")
            if message[0] != "state":
                raise SimulationError(
                    f"unexpected shard reply {message[0]!r}"
                )
            states.append(message[1])
        return states

    def finish(self) -> None:
        """Tell every worker to exit its serve loop (idempotent)."""
        for conn in self._conns:
            try:
                conn.send(("finish",))
            except (OSError, ValueError):
                pass

    def __repr__(self) -> str:
        return (
            f"ShardCoordinator(shards={len(self._conns)}, "
            f"now={self._now:.3f}, lookahead={self._lookahead})"
        )
