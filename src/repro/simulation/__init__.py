"""Deterministic discrete-event simulation substrate.

The paper's measurements ran on ten PCs and up to 150 JVMs; this package is
the substitute substrate (see DESIGN.md §2): a single-threaded event kernel
(:mod:`repro.simulation.kernel`), a message network with pluggable latency
and loss (:mod:`repro.simulation.network`), a reliable at-least-once
transport with duplicate suppression (:mod:`repro.simulation.transport`),
the calibrated cost model that converts protocol work into simulated
milliseconds (:mod:`repro.simulation.costs`), seeded randomness
(:mod:`repro.simulation.rng`) and metrics (:mod:`repro.simulation.metrics`).

Everything is deterministic given a seed: reruns reproduce identical event
orders, timings and traces.
"""

from repro.simulation.kernel import Simulator, Processor, EventHandle
from repro.simulation.rng import RngFactory
from repro.simulation.costs import CostModel
from repro.simulation.network import (
    Network,
    LatencyModel,
    ConstantLatency,
    UniformLatency,
    ExponentialLatency,
)
from repro.simulation.transport import ReliableTransport
from repro.simulation.metrics import MetricsRegistry, Counter, Samples

__all__ = [
    "Simulator",
    "Processor",
    "EventHandle",
    "RngFactory",
    "CostModel",
    "Network",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "ReliableTransport",
    "MetricsRegistry",
    "Counter",
    "Samples",
]
