"""The calibrated cost model: protocol work → simulated milliseconds.

§6.1 decomposes the message turn-around time into "a first [term] related
to transfer itself (serialization-deserialization, transfer time, agent
saving)" that is "nearly constant", plus a causality term (checking,
updating and saving the matrix clock) that scales with the clock size. The
model mirrors that decomposition:

- a fixed per-message cost at the sender and at the receiver;
- a per-cell cost for serializing / deserializing the piggybacked stamp
  (``stamp.wire_cells`` cells — s² for full-matrix stamps, the delta size
  for the Updates algorithm);
- a per-cell cost for the persistent image of the matrix clock — by
  default the *full* s×s matrix per transaction, matching §3's "high disk
  I/O activity to maintain a persistent image of the matrix on each
  server"; set ``persist_dirty_only=True`` to model a journaling store
  that writes only modified cells (an ablation knob);
- network propagation latency and small fixed costs for agent reactions
  and transaction ACKs.

Calibration (see EXPERIMENTS.md): the defaults place the flat-MOM remote
unicast at ~61 ms for 10 servers and ~190 ms for 50, bracketing the
paper's (61, 201); the same constants are used unchanged in every other
experiment.

The paper's own data pins the calibration remarkably well: Figure 8's
broadcast series fits ``t = a·n + b·n³`` with a ≈ 61 ms and b ≈ 0.027
ms/cell — i.e. a per-message cost of ``~28 ms + ~0.027·n² ms`` serialized
through server 0 — and the *same* per-message cost reproduces Figure 7's
unicast (2 messages per round trip: 56 + 0.054·n², passing through
(10, 61) and (50, 191)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.clocks.base import Stamp


@dataclass(frozen=True)
class CostModel:
    """Simulated-time constants, all in milliseconds (or ms per cell)."""

    send_fixed_ms: float = 13.0
    """Fixed sender-side work per message (envelope, syscalls, queueing)."""

    recv_fixed_ms: float = 13.0
    """Fixed receiver-side work per message."""

    ser_ms_per_cell: float = 0.006
    """Serializing one stamp cell at the sender."""

    deser_ms_per_cell: float = 0.006
    """Parsing + max-merging one stamp cell at the receiver."""

    io_ms_per_cell: float = 0.007
    """Writing one matrix cell to the persistent image."""

    latency_ms: float = 1.0
    """One-way network propagation (LAN-scale, per §6.1's testbed)."""

    agent_reaction_ms: float = 1.0
    """Executing one agent reaction in the engine."""

    ack_ms: float = 0.2
    """Processing a transaction ACK (queue removal)."""

    persist_dirty_only: bool = False
    """When True, persistence writes only dirty cells (journaling store)
    instead of the full matrix image per transaction (the paper's AAA
    behaviour, and the source of its quadratic unicast curve)."""

    def persist_cost(self, clock_size: int, dirty_cells: int) -> float:
        """Disk cost of checkpointing one domain clock after a transaction."""
        if self.persist_dirty_only:
            cells = dirty_cells
        else:
            cells = clock_size * clock_size
        return self.io_ms_per_cell * cells

    def send_cost(self, stamp: Stamp, clock_size: int, dirty_cells: int) -> float:
        """Sender-side CPU time for one outgoing message."""
        return (
            self.send_fixed_ms
            + self.ser_ms_per_cell * stamp.wire_cells
            + self.persist_cost(clock_size, dirty_cells)
        )

    def recv_cost(self, stamp: Stamp, clock_size: int, dirty_cells: int) -> float:
        """Receiver-side CPU time for one incoming, deliverable message."""
        return (
            self.recv_fixed_ms
            + self.deser_ms_per_cell * stamp.wire_cells
            + self.persist_cost(clock_size, dirty_cells)
        )

    def scaled(self, factor: float) -> "CostModel":
        """A copy with every *time* constant multiplied by ``factor``
        (useful for what-if studies; the structure is unchanged)."""
        return CostModel(
            send_fixed_ms=self.send_fixed_ms * factor,
            recv_fixed_ms=self.recv_fixed_ms * factor,
            ser_ms_per_cell=self.ser_ms_per_cell * factor,
            deser_ms_per_cell=self.deser_ms_per_cell * factor,
            io_ms_per_cell=self.io_ms_per_cell * factor,
            latency_ms=self.latency_ms * factor,
            agent_reaction_ms=self.agent_reaction_ms * factor,
            ack_ms=self.ack_ms * factor,
            persist_dirty_only=self.persist_dirty_only,
        )
