"""Shard-side primitives for the parallel kernel (docs/parallel.md).

A *shard* is one worker process running an ordinary :class:`Simulator`
over a subset of the servers. This module holds the pieces that live
*inside* a worker and stay MOM-agnostic (the layering rule R006 forbids
``repro.simulation`` from importing ``repro.mom``):

- :class:`ShardContext` — the worker's identity and server set, handed to
  the bus constructor;
- :class:`ShardNetwork` — a :class:`~repro.simulation.network.Network`
  whose packets to non-local destinations divert into an outbox instead
  of scheduling locally, plus the inverse ``inject`` used to schedule
  arrivals granted by the coordinator.

Because arrival events are keyed ``(time, band=2, dst, src, link_seq)``
with the link sequence assigned at *send* time (see
``repro.simulation.kernel``), an injected arrival carries exactly the key
the sequential kernel would have used — the foundation of the
bit-identical guarantee.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, FrozenSet, List, Optional, Tuple

from repro.simulation.kernel import Simulator
from repro.simulation.network import LatencyModel, Network

#: One cross-shard packet in transit:
#: ``(arrival_time, dst, src, link_seq, packet)``.
OutboxEntry = Tuple[float, int, int, int, Any]


@dataclass(frozen=True)
class ShardContext:
    """A worker's identity: which shard it is and which servers it homes."""

    shard_id: int
    local_servers: FrozenSet[int]

    def __post_init__(self):
        if not self.local_servers:
            raise ValueError(f"shard {self.shard_id} homes no servers")


class ShardNetwork(Network):
    """A network that teleports cross-shard packets through an outbox.

    Send-side bookkeeping (``packets_sent``, ``cells_transmitted``, loss
    and partition drops, the per-link sequence) happens in the base class
    exactly as in a sequential run; only the final arrival scheduling is
    split by destination locality.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        local: FrozenSet[int] = frozenset(),
    ):
        super().__init__(sim, latency=latency, loss_rate=loss_rate, rng=rng)
        self._local = frozenset(local)
        self.outbox: List[OutboxEntry] = []

    @property
    def local_servers(self) -> FrozenSet[int]:
        return self._local

    def _dispatch(
        self, time: float, src: int, dst: int, link_seq: int, packet: Any
    ) -> None:
        if dst in self._local:
            super()._dispatch(time, src, dst, link_seq, packet)
        else:
            self.outbox.append((time, dst, src, link_seq, packet))

    def inject(
        self, time: float, dst: int, src: int, link_seq: int, packet: Any
    ) -> None:
        """Schedule an arrival granted by the coordinator (sent on another
        shard) under its canonical band-2 key."""
        self._sim.schedule_arrival(
            time, dst, src, link_seq, self._arrive, src, dst, packet
        )

    def drain_outbox(self) -> List[OutboxEntry]:
        entries, self.outbox = self.outbox, []
        return entries
