"""Reliable transport: at-least-once retransmission + duplicate
suppression = exactly-once, unordered delivery.

The AAA message bus "guarantees the reliable, causal delivery of messages"
(§3); reliability below the causal layer is this transport's job. Packets
carry per-(src, dst) sequence numbers; the receiver acknowledges each one
and suppresses duplicates, the sender retransmits on a timer until acked.

Ordering is deliberately *not* provided: the causal channel above tolerates
out-of-order arrival (its hold-back queue exists for exactly that), and a
non-FIFO transport is the adversarial setting that actually exercises it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.errors import TransportError
from repro.simulation.kernel import EventHandle, Simulator
from repro.simulation.network import Network


@dataclass
class _Outstanding:
    """One unacked packet awaiting retransmission."""

    seq: int
    dst: int
    payload: Any
    cells: int
    attempts: int = 1
    timer: Optional[EventHandle] = None


@dataclass
class _DataPacket:
    seq: int
    payload: Any


@dataclass(frozen=True)
class _AckPacket:
    seq: int


class ReliableTransport:
    """One endpoint's reliable-transport state machine.

    Args:
        sim: shared simulator.
        network: shared lossy network.
        endpoint: this endpoint's network id.
        on_message: upcall ``fn(src, payload)`` on each fresh delivery.
        retransmit_ms: base retransmission timeout (doubles per attempt).
        max_attempts: give up (raise through the simulator) after this many
            sends of one packet.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        endpoint: int,
        on_message: Callable[[int, Any], None],
        retransmit_ms: float = 50.0,
        max_attempts: int = 30,
    ):
        if retransmit_ms <= 0:
            raise TransportError(
                f"retransmit timeout must be > 0, got {retransmit_ms}"
            )
        if max_attempts < 1:
            raise TransportError(f"max_attempts must be >= 1, got {max_attempts}")
        self._sim = sim
        self._network = network
        self._endpoint = endpoint
        self._on_message = on_message
        self._retransmit_ms = retransmit_ms
        self._max_attempts = max_attempts
        self._next_seq: Dict[int, int] = {}
        self._outstanding: Dict[Tuple[int, int], _Outstanding] = {}
        self._delivered: Dict[int, Set[int]] = {}
        self._stopped = False
        self.retransmissions = 0
        self.duplicates_suppressed = 0
        # observability hook (repro.obs, set via duck typing — this layer
        # cannot know the tracer's type); None = tracing off
        self._tracer: Optional[Any] = None
        network.attach(endpoint, self._on_packet)

    @property
    def endpoint(self) -> int:
        return self._endpoint

    @property
    def in_flight(self) -> int:
        """Unacked packets (diagnostics and quiescence checks)."""
        return len(self._outstanding)

    def send(self, dst: int, payload: Any, cells: int = 0) -> None:
        """Reliably send ``payload``; delivery order is unspecified."""
        if self._stopped:
            raise TransportError(f"transport {self._endpoint} is stopped")
        seq = self._next_seq.get(dst, 0)
        self._next_seq[dst] = seq + 1
        entry = _Outstanding(seq=seq, dst=dst, payload=payload, cells=cells)
        self._outstanding[(dst, seq)] = entry
        self._transmit(entry)

    def stop(self) -> None:
        """Crash: cancel timers, drop state, detach from the network."""
        self._stopped = True
        for entry in self._outstanding.values():
            if entry.timer is not None:
                entry.timer.cancel()
        self._outstanding.clear()
        self._network.detach(self._endpoint)

    def restart(self, on_message: Optional[Callable[[int, Any], None]] = None) -> None:
        """Recover after :meth:`stop`.

        Sequence numbers restart at a fresh epoch (past the highest used)
        so recovered sends are not mistaken for replays of lost packets;
        the duplicate-suppression sets are rebuilt empty — end-to-end
        dedup after a crash is the *channel*'s job, via its matrix clock.
        """
        if not self._stopped:
            raise TransportError("restart() without a prior stop()")
        self._stopped = False
        if on_message is not None:
            self._on_message = on_message
        self._delivered.clear()
        self._network.attach(self._endpoint, self._on_packet)

    def _transmit(self, entry: _Outstanding) -> None:
        self._network.transmit(
            self._endpoint, entry.dst, _DataPacket(entry.seq, entry.payload),
            cells=entry.cells,
        )
        timeout = self._retransmit_ms * (2 ** (entry.attempts - 1))
        entry.timer = self._sim.schedule_local(
            self._endpoint, timeout, self._maybe_retransmit, entry
        )

    def _maybe_retransmit(self, entry: _Outstanding) -> None:
        if self._stopped or (entry.dst, entry.seq) not in self._outstanding:
            return
        if entry.attempts >= self._max_attempts:
            raise TransportError(
                f"endpoint {self._endpoint}: packet seq={entry.seq} to "
                f"{entry.dst} undeliverable after {entry.attempts} attempts"
            )
        entry.attempts += 1
        self.retransmissions += 1
        if self._tracer is not None:
            self._tracer.transport_retransmit(
                self._endpoint, entry.dst, entry.seq, entry.attempts,
                entry.payload,
            )
        self._transmit(entry)

    def _on_packet(self, src: int, packet: Any) -> None:
        if self._stopped:
            return
        if isinstance(packet, _AckPacket):
            entry = self._outstanding.pop((src, packet.seq), None)
            if entry is not None and entry.timer is not None:
                entry.timer.cancel()
            return
        assert isinstance(packet, _DataPacket)
        # Always re-ack: the original ack may have been lost.
        self._network.transmit(self._endpoint, src, _AckPacket(packet.seq))
        seen = self._delivered.setdefault(src, set())
        if packet.seq in seen:
            self.duplicates_suppressed += 1
            return
        seen.add(packet.seq)
        self._on_message(src, packet.payload)

    def __repr__(self) -> str:
        return (
            f"ReliableTransport(endpoint={self._endpoint}, "
            f"in_flight={self.in_flight}, retx={self.retransmissions})"
        )
