"""Per-shard runtime telemetry for the sharded kernel (``REPRO_SHARDMON``).

The conservative sync of :mod:`repro.simulation.sync` runs dark by
default: nothing records how wide the granted LBTS windows were, how many
events each shard fired per window, how much traffic crossed the worker
pipes, or where the workers' wall-clock time went. This module is the
instrument — two passive recorder classes, one per side of the pipe:

- :class:`WorkerTelemetry` lives inside a shard worker and splits the
  worker's wall-clock into *compute* (running the granted window),
  *blocked-on-grant* (waiting in ``conn.recv``) and *pipe I/O* (sending
  reports), plus sim-side counts of grants, fired events, injected
  arrivals and drained outbox packets;
- :class:`CoordinatorTelemetry` lives in the parent and records the LBTS
  grant timeline (lbts, bound, events fired), granted-window widths,
  per-shard event counts, and cross-shard messages/bytes routed between
  workers.

The merged payload (:func:`merged`) keeps two strictly separated
sections: ``"sim"`` holds **deterministic** sim-time observables — byte
identical across repeated runs of the same scenario, band-checked by
``tools/bench_gate.py`` — while ``"wallclock"`` holds the
**non-deterministic** ``time.perf_counter`` measurements (including the
derived sync-overhead fraction). Keeping them apart is what lets
profiled runs stay bit-identical in every deterministic artifact.

Recording is observation-only: no simulated cost, no RNG draw, no metric
counter — a monitored run is bit-identical to a bare one. ``R002``
deliberately allows ``time.perf_counter`` (monotonic, never feeds back
into the simulation); the observation-purity closure (R008) covers every
method here because the module is registered as an observation layer.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Dict, List, Optional, Sequence

#: Schema tag of the merged payload.
FORMAT = "repro.shardmon/v1"

#: Grant-timeline rounds retained before truncation (long runs keep the
#: head; the aggregates always cover every round).
TIMELINE_CAP = 4096


def enabled() -> bool:
    """Shard telemetry is on by default; ``REPRO_SHARDMON=0`` disables."""
    return os.environ.get("REPRO_SHARDMON", "1") != "0"


class WorkerTelemetry:
    """One shard worker's runtime counters (lives inside the fork)."""

    __slots__ = (
        "shard_id",
        "grants",
        "events_fired",
        "arrivals_in",
        "packets_out",
        "wall_compute_s",
        "wall_blocked_s",
        "wall_pipe_s",
    )

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.grants = 0
        self.events_fired = 0
        self.arrivals_in = 0
        self.packets_out = 0
        self.wall_compute_s = 0.0
        self.wall_blocked_s = 0.0
        self.wall_pipe_s = 0.0

    def record_window(self, arrivals: int, fired: int, outbox: int) -> None:
        """One granted window ran: counts injected arrivals, events fired
        inside the window and outbox packets drained for routing."""
        self.grants += 1
        self.arrivals_in += arrivals
        self.events_fired += fired
        self.packets_out += outbox

    def add_compute(self, seconds: float) -> None:
        self.wall_compute_s += seconds

    def add_blocked(self, seconds: float) -> None:
        self.wall_blocked_s += seconds

    def add_pipe(self, seconds: float) -> None:
        self.wall_pipe_s += seconds

    def dump(self) -> Dict[str, Any]:
        """JSON-ready snapshot shipped to the parent at collect time."""
        return {
            "shard": self.shard_id,
            "sim": {
                "grants": self.grants,
                "events_fired": self.events_fired,
                "arrivals_in": self.arrivals_in,
                "packets_out": self.packets_out,
            },
            "wallclock": {
                "compute_s": self.wall_compute_s,
                "blocked_on_grant_s": self.wall_blocked_s,
                "pipe_io_s": self.wall_pipe_s,
            },
        }

    def __repr__(self) -> str:
        return (
            f"WorkerTelemetry(shard={self.shard_id}, grants={self.grants}, "
            f"events={self.events_fired})"
        )


class CoordinatorTelemetry:
    """The parent-side view: grant rounds and cross-shard routing."""

    __slots__ = (
        "workers",
        "lookahead",
        "rounds",
        "width_sum",
        "width_min",
        "width_max",
        "events_total",
        "events_per_window_min",
        "events_per_window_max",
        "events_per_shard",
        "cross_messages",
        "cross_bytes",
        "cross_pairs",
        "timeline",
        "timeline_truncated",
        "wall_wait_s",
    )

    def __init__(self, workers: int, lookahead: float) -> None:
        self.workers = workers
        self.lookahead = lookahead
        self.rounds = 0
        self.width_sum = 0.0
        self.width_min: Optional[float] = None
        self.width_max: Optional[float] = None
        self.events_total = 0
        self.events_per_window_min: Optional[int] = None
        self.events_per_window_max: Optional[int] = None
        self.events_per_shard = [0] * workers
        self.cross_messages = 0
        self.cross_bytes = 0
        self.cross_pairs: Dict[str, Dict[str, int]] = {}
        self.timeline: List[List[float]] = []
        self.timeline_truncated = False
        self.wall_wait_s = 0.0

    def record_window(
        self, lbts: float, bound: float, fired_per_shard: Sequence[int]
    ) -> None:
        """One LBTS round completed (all shard reports are in)."""
        width = bound - lbts
        fired = 0
        for shard, count in enumerate(fired_per_shard):
            self.events_per_shard[shard] += count
            fired += count
        self.rounds += 1
        self.width_sum += width
        if self.width_min is None or width < self.width_min:
            self.width_min = width
        if self.width_max is None or width > self.width_max:
            self.width_max = width
        self.events_total += fired
        if (
            self.events_per_window_min is None
            or fired < self.events_per_window_min
        ):
            self.events_per_window_min = fired
        if (
            self.events_per_window_max is None
            or fired > self.events_per_window_max
        ):
            self.events_per_window_max = fired
        if len(self.timeline) < TIMELINE_CAP:
            self.timeline.append([lbts, bound, float(fired)])
        else:
            self.timeline_truncated = True

    def record_route(self, src_shard: int, dst_shard: int, entry: Any) -> None:
        """One outbox entry routed from ``src_shard`` to ``dst_shard``.

        Byte counts use the pickled size of the entry — the exact payload
        the worker pipe carries for it.
        """
        size = len(pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL))
        self.cross_messages += 1
        self.cross_bytes += size
        key = f"{src_shard}->{dst_shard}"
        pair = self.cross_pairs.get(key)
        if pair is None:
            pair = {"messages": 0, "bytes": 0}
            self.cross_pairs[key] = pair
        pair["messages"] += 1
        pair["bytes"] += size

    def add_wait(self, seconds: float) -> None:
        self.wall_wait_s += seconds

    def dump(self) -> Dict[str, Any]:
        """JSON-ready snapshot of the coordinator-side observables."""
        return {
            "grants": self.rounds,
            "window_width_ms": {
                "count": self.rounds,
                "sum": self.width_sum,
                "min": self.width_min if self.width_min is not None else 0.0,
                "max": self.width_max if self.width_max is not None else 0.0,
            },
            "events_total": self.events_total,
            "events_per_window": {
                "min": self.events_per_window_min or 0,
                "max": self.events_per_window_max or 0,
                "mean": (
                    self.events_total / self.rounds if self.rounds else 0.0
                ),
            },
            "events_per_shard": list(self.events_per_shard),
            "cross_shard": {
                "messages": self.cross_messages,
                "bytes": self.cross_bytes,
                "pairs": {
                    key: dict(value)
                    for key, value in sorted(self.cross_pairs.items())
                },
            },
            "grant_timeline": [list(row) for row in self.timeline],
            "grant_timeline_truncated": self.timeline_truncated,
        }

    def __repr__(self) -> str:
        return (
            f"CoordinatorTelemetry(workers={self.workers}, "
            f"rounds={self.rounds}, cross={self.cross_messages})"
        )


def sync_overhead_fraction(worker_dumps: Sequence[Dict[str, Any]]) -> float:
    """``1 - compute / (compute + blocked + pipe)`` over all workers.

    The wall-clock share of worker time *not* spent running granted
    windows — the price of the conservative sync. 0.0 when nothing was
    measured (all-zero clocks on a degenerate run).
    """
    compute = blocked = pipe = 0.0
    for dump in worker_dumps:
        wall = dump.get("wallclock", {})
        compute += wall.get("compute_s", 0.0)
        blocked += wall.get("blocked_on_grant_s", 0.0)
        pipe += wall.get("pipe_io_s", 0.0)
    total = compute + blocked + pipe
    if total <= 0.0:
        return 0.0
    return 1.0 - compute / total


def merged(
    coordinator_dump: Dict[str, Any],
    worker_dumps: Sequence[Dict[str, Any]],
    workers: int,
    lookahead: float,
    coordinator_wait_s: float = 0.0,
) -> Dict[str, Any]:
    """The full shardmon payload: deterministic ``sim`` section plus the
    clearly separated non-deterministic ``wallclock`` section."""
    arrivals = [0] * workers
    packets_out = [0] * workers
    wall_rows = []
    for dump in worker_dumps:
        shard = dump.get("shard", 0)
        sim = dump.get("sim", {})
        if 0 <= shard < workers:
            arrivals[shard] = sim.get("arrivals_in", 0)
            packets_out[shard] = sim.get("packets_out", 0)
        wall = dump.get("wallclock", {})
        wall_rows.append(
            {
                "shard": shard,
                "compute_s": wall.get("compute_s", 0.0),
                "blocked_on_grant_s": wall.get("blocked_on_grant_s", 0.0),
                "pipe_io_s": wall.get("pipe_io_s", 0.0),
            }
        )
    return {
        "format": FORMAT,
        "workers": workers,
        "lookahead_ms": lookahead,
        "sim": {
            **coordinator_dump,
            "arrivals_per_shard": arrivals,
            "packets_out_per_shard": packets_out,
        },
        "wallclock": {
            "per_shard": wall_rows,
            "coordinator_wait_s": coordinator_wait_s,
            "sync_overhead_fraction": sync_overhead_fraction(worker_dumps),
        },
    }
