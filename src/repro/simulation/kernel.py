"""The discrete-event kernel: a clock and a priority queue of callbacks.

Classic design: events are ``(time, sequence)``-ordered; the sequence number
makes simultaneous events fire in scheduling order, which — together with
seeded RNGs — makes every run bit-for-bit reproducible.

:class:`Processor` models one server's single-threaded CPU (one JVM in the
paper's setup): submitted work executes back to back, so a burst of sends —
e.g. the broadcast of Figure 8 fanning out of server 0 — serializes exactly
as it did on the real machines.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


class EventHandle:
    """A scheduled callback; keep it to :meth:`cancel` the event."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, seq={self.seq}, {state})"


class Simulator:
    """The event loop. All simulated components share one instance."""

    def __init__(self):
        self._now = 0.0
        self._queue: List[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time, in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Events executed since construction (diagnostics)."""
        return self._processed

    def schedule(self, delay: float, fn: Callable, *args: Any) -> EventHandle:
        """Run ``fn(*args)`` ``delay`` ms from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}"
            )
        handle = EventHandle(time, next(self._seq), fn, args)
        heapq.heappush(self._queue, handle)
        return handle

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired. Returns the number of events processed.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire.
        """
        if self._running:
            raise SimulationError("Simulator.run() re-entered")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                head = self._queue[0]
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._queue)
                if head.cancelled:
                    continue
                self._now = head.time
                head.fn(*head.args)
                fired += 1
                self._processed += 1
            if until is not None and (
                not self._queue or self._queue[0].time > until
            ):
                self._now = max(self._now, until)
        finally:
            self._running = False
        return fired

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely; guard against runaway event storms."""
        fired = self.run(max_events=max_events)
        if self._queue and fired >= max_events:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return fired

    @property
    def pending(self) -> int:
        """Scheduled-but-unfired events (including cancelled ones)."""
        return len(self._queue)

    def __repr__(self) -> str:
        return f"Simulator(now={self._now:.3f}, pending={self.pending})"


class Processor:
    """A single-threaded CPU: submitted work runs sequentially.

    Work submitted while the processor is busy queues behind the current
    occupancy; the completion callback fires when the work *finishes*. Busy
    time is accumulated for utilization reporting.
    """

    __slots__ = (
        "_sim", "_busy_until", "_busy_total", "_halted",
        "_tracer", "_tracer_owner",
    )

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._busy_until = 0.0
        self._busy_total = 0.0
        self._halted = False
        # observability hook (repro.obs, set via duck typing — this layer
        # cannot know the tracer's type); None = tracing off
        self._tracer: Optional[Any] = None
        self._tracer_owner = -1

    @property
    def busy_until(self) -> float:
        return self._busy_until

    @property
    def busy_total(self) -> float:
        """Total occupied milliseconds (for utilization metrics)."""
        return self._busy_total

    def halt(self) -> None:
        """Refuse further work (server crash). Queued completions for work
        already started are the caller's business to ignore."""
        self._halted = True

    def resume(self) -> None:
        """Accept work again after :meth:`halt` (server recovery). Any
        occupancy from before the crash is discarded."""
        self._halted = False
        self._busy_until = self._sim.now

    def submit(self, duration: float, fn: Callable, *args: Any) -> EventHandle:
        """Occupy the CPU for ``duration`` ms, then call ``fn(*args)``.

        Raises:
            SimulationError: if the processor is halted or ``duration`` is
                negative.
        """
        if self._halted:
            raise SimulationError("processor is halted (server crashed)")
        if duration < 0:
            raise SimulationError(f"negative work duration: {duration}")
        start = max(self._sim.now, self._busy_until)
        self._busy_until = start + duration
        self._busy_total += duration
        if self._tracer is not None:
            self._tracer.cpu(self._tracer_owner, start, duration)
        return self._sim.schedule_at(self._busy_until, fn, *args)

    def __repr__(self) -> str:
        return (
            f"Processor(busy_until={self._busy_until:.3f}, "
            f"busy_total={self._busy_total:.3f})"
        )
