"""The discrete-event kernel: a clock and a priority queue of callbacks.

Events are ordered by a *partition-independent* key, so the same workload
produces the same execution order whether one kernel runs the whole
topology or several shard kernels each run a slice of it (see
``repro/simulation/shard.py`` and docs/parallel.md):

``(time, band, a, b, c)`` with three bands at equal time —

- **band 0 — setup**: scripted/bootstrap events, keyed by
  ``(owner, per-owner sequence)``. The legacy :meth:`Simulator.schedule` /
  :meth:`Simulator.schedule_at` entry points land here under the anonymous
  owner ``-1`` (fine for single-kernel callers: the per-owner counter then
  reproduces plain scheduling order).
- **band 1 — server-local**: CPU completions, protocol timers — keyed by
  ``(server, per-server sequence)``. Everything in this band touches the
  state of exactly one server, so the per-server counter advances
  identically no matter which kernel hosts the server.
- **band 2 — network arrival**: keyed by ``(dst, src, per-link sequence)``.
  The link sequence is assigned at *send* time by the network, so an
  arrival injected from a remote shard carries the same key the sequential
  kernel would have used.

Together with seeded, stream-keyed RNGs this makes every run bit-for-bit
reproducible — and makes the sharded execution provably order-identical to
the sequential one.

:class:`Processor` models one server's single-threaded CPU (one JVM in the
paper's setup): submitted work executes back to back, so a burst of sends —
e.g. the broadcast of Figure 8 fanning out of server 0 — serializes exactly
as it did on the real machines.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

#: Event bands: all setup events at time t fire before all server-local
#: events at t, which fire before all network arrivals at t.
BAND_SETUP = 0
BAND_LOCAL = 1
BAND_ARRIVAL = 2

EventKey = Tuple[float, int, int, int, int]


class EventHandle:
    """A scheduled callback; keep it to :meth:`cancel` the event."""

    __slots__ = ("key", "fn", "args", "cancelled")

    def __init__(self, key: EventKey, fn: Callable, args: tuple):
        self.key = key
        self.fn = fn
        self.args = args
        self.cancelled = False

    @property
    def time(self) -> float:
        return self.key[0]

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return self.key < other.key

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.key[0]:.3f}, key={self.key[1:]}, {state})"


class Simulator:
    """The event loop. All simulated components of one shard share one
    instance (the sequential path is simply the one-shard special case)."""

    def __init__(self):
        self._now = 0.0
        self._queue: List[EventHandle] = []
        self._setup_seq: Dict[int, int] = {}
        self._local_seq: Dict[int, int] = {}
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time, in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Events executed since construction (diagnostics)."""
        return self._processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _push(self, key: EventKey, fn: Callable, args: tuple) -> EventHandle:
        if key[0] < self._now:
            raise SimulationError(
                f"cannot schedule at {key[0]} before now={self._now}"
            )
        handle = EventHandle(key, fn, args)
        heapq.heappush(self._queue, handle)
        return handle

    def schedule(self, delay: float, fn: Callable, *args: Any) -> EventHandle:
        """Run ``fn(*args)`` ``delay`` ms from now (``delay >= 0``).

        Band-0 under the anonymous owner; shard-safe code paths use the
        owner-explicit entry points below instead.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        return self.schedule_setup(time, -1, fn, *args)

    def schedule_setup(
        self, time: float, owner: int, fn: Callable, *args: Any
    ) -> EventHandle:
        """Band-0 event attributed to ``owner`` (a server id, or -1)."""
        seq = self._setup_seq.get(owner, 0)
        self._setup_seq[owner] = seq + 1
        return self._push((time, BAND_SETUP, owner, seq, 0), fn, args)

    def schedule_local(
        self, owner: int, delay: float, fn: Callable, *args: Any
    ) -> EventHandle:
        """Band-1 event on ``owner``'s timeline, ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_local_at(owner, self._now + delay, fn, *args)

    def schedule_local_at(
        self, owner: int, time: float, fn: Callable, *args: Any
    ) -> EventHandle:
        """Band-1 event on ``owner``'s timeline at absolute time ``time``."""
        seq = self._local_seq.get(owner, 0)
        self._local_seq[owner] = seq + 1
        return self._push((time, BAND_LOCAL, owner, seq, 0), fn, args)

    def schedule_arrival(
        self,
        time: float,
        dst: int,
        src: int,
        link_seq: int,
        fn: Callable,
        *args: Any,
    ) -> EventHandle:
        """Band-2 network arrival at ``dst`` from ``src``.

        ``link_seq`` is the sender-assigned per-``(src, dst)`` sequence; the
        resulting key is computable on any shard, which is what lets a
        remote shard inject the arrival with the exact key the sequential
        kernel would have produced.
        """
        return self._push((time, BAND_ARRIVAL, dst, src, link_seq), fn, args)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired. Returns the number of events processed.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire.
        """
        if self._running:
            raise SimulationError("Simulator.run() re-entered")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                head = self._queue[0]
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._queue)
                if head.cancelled:
                    continue
                self._now = head.time
                head.fn(*head.args)
                fired += 1
                self._processed += 1
            if until is not None and (
                not self._queue or self._queue[0].time > until
            ):
                self._now = max(self._now, until)
        finally:
            self._running = False
        return fired

    def run_window(
        self, bound: float, max_events: Optional[int] = None
    ) -> int:
        """Process every event with time *strictly below* ``bound``.

        The conservative-sync primitive: a shard granted the window
        ``[now, bound)`` may fire everything before ``bound`` without risk
        of a remote arrival landing inside the window (docs/parallel.md).
        Unlike :meth:`run`, the clock is left at the last fired event so
        later-injected arrivals at ``t >= bound`` still schedule cleanly.
        """
        if self._running:
            raise SimulationError("Simulator.run() re-entered")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                head = self._queue[0]
                if head.time >= bound:
                    break
                heapq.heappop(self._queue)
                if head.cancelled:
                    continue
                self._now = head.time
                head.fn(*head.args)
                fired += 1
                self._processed += 1
        finally:
            self._running = False
        return fired

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely; guard against runaway event storms."""
        fired = self.run(max_events=max_events)
        if self._queue and fired >= max_events:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return fired

    def next_event_time(self) -> float:
        """Earliest pending (non-cancelled) event time; ``inf`` when idle.

        The shard coordinator's LBTS input."""
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
        return queue[0].time if queue else math.inf

    @property
    def pending(self) -> int:
        """Scheduled-but-unfired events (including cancelled ones)."""
        return len(self._queue)

    @property
    def settled(self) -> bool:
        """True when no pending event is scheduled at (or before) ``now``
        — i.e. the current instant has fully fired. ``run(until=T)``
        always leaves the clock settled at ``T``, which is what makes a
        mid-run :meth:`~repro.mom.bus.MessageBus.protocol_snapshot`
        well-defined (and replayable from a trace dump)."""
        return self.next_event_time() > self._now

    def __repr__(self) -> str:
        return f"Simulator(now={self._now:.3f}, pending={self.pending})"


class Processor:
    """A single-threaded CPU: submitted work runs sequentially.

    Work submitted while the processor is busy queues behind the current
    occupancy; the completion callback fires when the work *finishes*. Busy
    time is accumulated for utilization reporting.

    ``owner`` is the server id whose timeline (band-1 key space) the
    completions are attributed to; the default anonymous owner keeps
    single-kernel callers (tests, baselines) working unchanged.
    """

    __slots__ = (
        "_sim", "_owner", "_busy_until", "_busy_total", "_halted",
        "_tracer", "_tracer_owner",
    )

    def __init__(self, sim: Simulator, owner: int = -1):
        self._sim = sim
        self._owner = owner
        self._busy_until = 0.0
        self._busy_total = 0.0
        self._halted = False
        # observability hook (repro.obs, set via duck typing — this layer
        # cannot know the tracer's type); None = tracing off
        self._tracer: Optional[Any] = None
        self._tracer_owner = -1

    @property
    def busy_until(self) -> float:
        return self._busy_until

    @property
    def busy_total(self) -> float:
        """Total occupied milliseconds (for utilization metrics)."""
        return self._busy_total

    def halt(self) -> None:
        """Refuse further work (server crash). Queued completions for work
        already started are the caller's business to ignore."""
        self._halted = True

    def resume(self) -> None:
        """Accept work again after :meth:`halt` (server recovery). Any
        occupancy from before the crash is discarded."""
        self._halted = False
        self._busy_until = self._sim.now

    def submit(self, duration: float, fn: Callable, *args: Any) -> EventHandle:
        """Occupy the CPU for ``duration`` ms, then call ``fn(*args)``.

        Raises:
            SimulationError: if the processor is halted or ``duration`` is
                negative.
        """
        if self._halted:
            raise SimulationError("processor is halted (server crashed)")
        if duration < 0:
            raise SimulationError(f"negative work duration: {duration}")
        start = max(self._sim.now, self._busy_until)
        self._busy_until = start + duration
        self._busy_total += duration
        if self._tracer is not None:
            self._tracer.cpu(self._tracer_owner, start, duration)
        return self._sim.schedule_local_at(
            self._owner, self._busy_until, fn, *args
        )

    def __repr__(self) -> str:
        return (
            f"Processor(busy_until={self._busy_until:.3f}, "
            f"busy_total={self._busy_total:.3f})"
        )
