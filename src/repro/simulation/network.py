"""The simulated network: point-to-point packet delivery with pluggable
latency, random loss and partitions.

The network knows nothing about the MOM: it moves opaque packets between
numbered endpoints after a sampled delay, possibly dropping some. Loss and
partitions exist to exercise the reliable transport and the channel's
transactional recovery; the performance experiments run loss-free, like
the paper's switched-Ethernet testbed.

For the sharded kernel (docs/parallel.md) the network is *the* partition
boundary: every cross-server interaction rides a packet, so homing servers
to shards and teleporting packets between shard kernels is sufficient to
distribute the whole simulation. Two pieces of metadata support that:

- every latency model advertises ``min_ms`` (the conservative-sync
  lookahead) and ``deterministic`` (whether sampling consumes the RNG —
  only deterministic models are eligible for parallel runs, because the
  per-shard RNG clones would otherwise be drawn in partition-dependent
  order);
- each transmitted packet is assigned a per-``(src, dst)`` link sequence
  at send time, which keys the arrival event identically on every shard
  layout (band 2 in ``repro.simulation.kernel``).
"""

from __future__ import annotations

import abc
import random
from typing import Any, Callable, Dict, FrozenSet, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.simulation.kernel import Simulator


class LatencyModel(abc.ABC):
    """Samples one-way propagation delays, in milliseconds.

    Attributes:
        min_ms: a lower bound on every sample — the shard lookahead.
        deterministic: True iff :meth:`sample` never touches the RNG.
    """

    min_ms: float = 0.0
    deterministic: bool = False

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw the delay for one packet."""


class ConstantLatency(LatencyModel):
    """Fixed delay — the default; keeps experiments noise-free."""

    deterministic = True

    def __init__(self, ms: float):
        if ms < 0:
            raise SimulationError(f"latency must be >= 0, got {ms}")
        self.ms = ms
        self.min_ms = ms

    def sample(self, rng: random.Random) -> float:
        return self.ms

    def __repr__(self) -> str:
        return f"ConstantLatency({self.ms} ms)"


class UniformLatency(LatencyModel):
    """Uniform jitter in ``[low, high]`` — enough to reorder packets."""

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise SimulationError(f"invalid latency range [{low}, {high}]")
        self.low = low
        self.high = high
        self.min_ms = low

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency([{self.low}, {self.high}] ms)"


class ExponentialLatency(LatencyModel):
    """Heavy-ish tail around ``mean`` with a floor — aggressive reordering,
    the adversarial setting for the causal-delivery property tests."""

    def __init__(self, mean: float, floor: float = 0.05):
        if mean <= 0 or floor < 0:
            raise SimulationError(
                f"invalid exponential latency (mean={mean}, floor={floor})"
            )
        self.mean = mean
        self.floor = floor
        self.min_ms = floor

    def sample(self, rng: random.Random) -> float:
        return self.floor + rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"ExponentialLatency(mean={self.mean} ms)"


class Network:
    """Moves packets between endpoints; endpoints register a delivery
    callback ``fn(src, packet)``."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(f"loss rate must be in [0, 1), got {loss_rate}")
        self._sim = sim
        self._latency = latency or ConstantLatency(1.0)
        self._loss_rate = loss_rate
        self._rng = rng or random.Random(0)
        self._endpoints: Dict[int, Callable[[int, Any], None]] = {}
        self._partitions: Set[FrozenSet[int]] = set()
        self._link_seq: Dict[Tuple[int, int], int] = {}
        self.packets_sent = 0
        self.packets_dropped = 0
        self.cells_transmitted = 0

    @property
    def latency(self) -> LatencyModel:
        return self._latency

    def attach(self, endpoint: int, on_packet: Callable[[int, Any], None]) -> None:
        """Register ``endpoint``'s delivery callback."""
        if endpoint in self._endpoints:
            raise SimulationError(f"endpoint {endpoint} already attached")
        self._endpoints[endpoint] = on_packet

    def detach(self, endpoint: int) -> None:
        """Unregister an endpoint (crashed server); in-flight packets to it
        are dropped on arrival."""
        self._endpoints.pop(endpoint, None)

    def partition(self, first: int, second: int) -> None:
        """Silently drop all traffic between two endpoints until healed."""
        self._partitions.add(frozenset((first, second)))

    def heal(self, first: int, second: int) -> None:
        """Remove a partition (idempotent)."""
        self._partitions.discard(frozenset((first, second)))

    def heal_all(self) -> None:
        self._partitions.clear()

    def transmit(self, src: int, dst: int, packet: Any, cells: int = 0) -> None:
        """Send a packet; it arrives after a sampled latency unless lost.

        ``cells`` is the stamp size riding on the packet, accumulated into
        :attr:`cells_transmitted` for the wire-footprint accounting the
        scalability claims are about.
        """
        if src == dst:
            raise SimulationError("network does not loop packets back")
        self.packets_sent += 1
        self.cells_transmitted += cells
        if frozenset((src, dst)) in self._partitions:
            self.packets_dropped += 1
            return
        if self._loss_rate and self._rng.random() < self._loss_rate:
            self.packets_dropped += 1
            return
        delay = self._latency.sample(self._rng)
        link = (src, dst)
        seq = self._link_seq.get(link, 0)
        self._link_seq[link] = seq + 1
        self._dispatch(self._sim.now + delay, src, dst, seq, packet)

    def _dispatch(
        self, time: float, src: int, dst: int, link_seq: int, packet: Any
    ) -> None:
        """Schedule the arrival. The shard network overrides this to divert
        packets whose destination lives on another worker."""
        self._sim.schedule_arrival(
            time, dst, src, link_seq, self._arrive, src, dst, packet
        )

    def _arrive(self, src: int, dst: int, packet: Any) -> None:
        handler = self._endpoints.get(dst)
        if handler is None:
            # Destination crashed while the packet was in flight.
            self.packets_dropped += 1
            return
        handler(src, packet)

    def __repr__(self) -> str:
        return (
            f"Network(endpoints={len(self._endpoints)}, "
            f"sent={self.packets_sent}, dropped={self.packets_dropped})"
        )
