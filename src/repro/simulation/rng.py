"""Seeded randomness with named independent streams.

Every stochastic component (network latency, loss, failure injection,
workload think times) draws from its own named stream derived from the
experiment seed, so adding a new consumer of randomness never perturbs the
draws of existing ones — a standard trick for keeping simulation
experiments comparable across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngFactory:
    """Derives independent ``random.Random`` streams from one master seed."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use, then shared).

        The stream seed is a SHA-256 of ``(master seed, name)``, so streams
        are de-correlated and stable across platforms and Python versions
        (unlike ``hash()``, which is salted per process).
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def __repr__(self) -> str:
        return f"RngFactory(seed={self._seed}, streams={sorted(self._streams)})"
