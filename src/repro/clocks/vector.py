"""Vector clocks and the causal-broadcast baseline.

Vector clocks (§1, [14][21]) characterize causal precedence exactly: event
*a* causally precedes *b* iff ``V(a) < V(b)`` componentwise. The related-work
solutions the paper compares against (§2: hierarchical clusters [13], the
Daisy architecture [17]) are built on vector clocks and *causal broadcast*;
:class:`CausalBroadcastClock` implements the Birman–Schiper–Stephenson
delivery rule those systems rely on, so our benchmarks can put a faithful
baseline next to the matrix-clock MOM.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ClockError


def _check_same_size(a: Sequence[int], b: Sequence[int]) -> None:
    if len(a) != len(b):
        raise ClockError(f"vector size mismatch: {len(a)} vs {len(b)}")


@dataclass(frozen=True)
class VectorStamp:
    """An immutable vector timestamp together with its sender.

    ``wire_cells`` mirrors the matrix stamps' accounting: a vector stamp
    always serializes all *n* entries.
    """

    sender: int
    entries: Tuple[int, ...]

    @property
    def wire_cells(self) -> int:
        """Entries serialized on the wire (always the full vector)."""
        return len(self.entries)

    def __getitem__(self, index: int) -> int:
        return self.entries[index]

    def __len__(self) -> int:
        return len(self.entries)

    def dominates(self, other: "VectorStamp") -> bool:
        """True iff ``self >= other`` componentwise."""
        _check_same_size(self.entries, other.entries)
        return all(s >= o for s, o in zip(self.entries, other.entries))

    def strictly_precedes(self, other: "VectorStamp") -> bool:
        """The exact causal-precedence test: ``self < other``."""
        _check_same_size(self.entries, other.entries)
        return (
            all(s <= o for s, o in zip(self.entries, other.entries))
            and self.entries != other.entries
        )

    def concurrent_with(self, other: "VectorStamp") -> bool:
        """True iff neither stamp precedes the other."""
        return not self.strictly_precedes(other) and not other.strictly_precedes(self)


class VectorClock:
    """A vector clock owned by process ``owner`` in an n-process system."""

    __slots__ = ("_owner", "_entries")

    def __init__(self, size: int, owner: int):
        if size <= 0:
            raise ClockError(f"vector clock size must be positive, got {size}")
        if not 0 <= owner < size:
            raise ClockError(f"owner {owner} out of range for size {size}")
        self._owner = owner
        self._entries = array("q", bytes(8 * size))

    @property
    def owner(self) -> int:
        return self._owner

    @property
    def size(self) -> int:
        return len(self._entries)

    def read(self) -> VectorStamp:
        """Snapshot the current vector without advancing it."""
        return VectorStamp(self._owner, tuple(self._entries))

    def tick(self) -> VectorStamp:
        """Advance the local component (local or send event)."""
        self._entries[self._owner] += 1
        return self.read()

    def stamp_send(self) -> VectorStamp:
        """Advance and read, i.e. the stamp to attach to an outgoing message."""
        return self.tick()

    def observe(self, stamp: VectorStamp) -> VectorStamp:
        """Merge a received stamp: componentwise max, then local tick."""
        _check_same_size(self._entries, stamp.entries)
        for i, value in enumerate(stamp.entries):
            if value > self._entries[i]:
                self._entries[i] = value
        return self.tick()

    def __repr__(self) -> str:
        return f"VectorClock(owner={self._owner}, entries={list(self._entries)})"


class CausalBroadcastClock:
    """Birman–Schiper–Stephenson causal broadcast delivery.

    Every process broadcasts to the whole group. The clock tracks, per
    process, how many of its broadcasts have been *delivered* locally. A
    message from ``s`` stamped ``V`` is deliverable at ``r`` iff:

    - ``V[s] == delivered[s] + 1`` (next broadcast from s, FIFO), and
    - ``V[k] <= delivered[k]`` for all ``k != s`` (everything the sender had
      seen has been delivered here too).

    This is the engine behind the vector-clock related-work baselines (§2);
    its scalability problem — every message must reach every process — is
    exactly what the paper's domain decomposition avoids.
    """

    __slots__ = ("_owner", "_delivered", "_sent")

    def __init__(self, size: int, owner: int):
        if size <= 0:
            raise ClockError(f"group size must be positive, got {size}")
        if not 0 <= owner < size:
            raise ClockError(f"owner {owner} out of range for size {size}")
        self._owner = owner
        self._delivered = array("q", bytes(8 * size))
        self._sent = 0

    @property
    def owner(self) -> int:
        return self._owner

    @property
    def size(self) -> int:
        return len(self._delivered)

    def stamp_broadcast(self) -> VectorStamp:
        """Stamp an outgoing broadcast.

        The stamp carries the delivered-vector with the owner's component
        set to the new broadcast sequence number. The local broadcast is
        *not* self-delivered here; feed the stamp back through
        :meth:`can_deliver`/:meth:`deliver` like any other copy.
        """
        self._sent += 1
        entries = list(self._delivered)
        entries[self._owner] = self._sent
        return VectorStamp(self._owner, tuple(entries))

    def can_deliver(self, stamp: VectorStamp) -> bool:
        """The BSS deliverability test described in the class docstring."""
        _check_same_size(self._delivered, stamp.entries)
        sender = stamp.sender
        if stamp.entries[sender] != self._delivered[sender] + 1:
            return False
        return all(
            stamp.entries[k] <= self._delivered[k]
            for k in range(len(self._delivered))
            if k != sender
        )

    def deliver(self, stamp: VectorStamp) -> None:
        """Mark a deliverable broadcast as delivered."""
        if not self.can_deliver(stamp):
            raise ClockError(
                f"stamp {stamp} is not deliverable at process {self._owner}"
            )
        self._delivered[stamp.sender] += 1

    def delivered_count(self, process: int) -> int:
        """How many broadcasts from ``process`` have been delivered here."""
        return self._delivered[process]

    def __repr__(self) -> str:
        return (
            f"CausalBroadcastClock(owner={self._owner}, "
            f"delivered={list(self._delivered)}, sent={self._sent})"
        )
