"""Reference (unoptimized) clock implementations, kept verbatim.

These are the original pure-Python-object implementations of the classic
full-matrix algorithm (§3) and the Appendix-A Updates algorithm, exactly
as they shipped before the flat-buffer hot-path rewrite of
:mod:`repro.clocks.matrix` and :mod:`repro.clocks.updates`.

They exist for one purpose: **differential testing**. The optimized clocks
must agree with these step for step — same ``can_deliver`` /
``is_duplicate`` decisions, same delivered state, same ``dirty_cells``
accounting, same ``wire_cells`` on every stamp, same ``snapshot()``
payloads — across arbitrary send/deliver/crash-restore interleavings
(``tests/test_differential_clocks.py``). Nothing in the runtime system
imports this module; do not "optimize" it.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.clocks.base import CausalClock, Stamp
from repro.errors import ClockError


class ReferenceMatrixStamp(Stamp):
    """A full s×s matrix timestamp (tuple-of-tuples wire format)."""

    __slots__ = ("_sender", "_dest", "_rows")

    def __init__(self, sender: int, dest: int, rows: Tuple[Tuple[int, ...], ...]):
        self._sender = sender
        self._dest = dest
        self._rows = rows

    @property
    def sender(self) -> int:
        return self._sender

    @property
    def dest(self) -> int:
        return self._dest

    @property
    def wire_cells(self) -> int:
        size = len(self._rows)
        return size * size

    def entry(self, row: int, col: int) -> int:
        return self._rows[row][col]

    @property
    def size(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return (
            f"ReferenceMatrixStamp(sender={self._sender}, dest={self._dest}, "
            f"size={len(self._rows)})"
        )


class ReferenceMatrixClock(CausalClock):
    """The seed full-matrix clock: nested lists, full deep copies."""

    # R023: differential-testing oracle only — never booted through the
    # core registry, so it has no registered CausalCore.
    protocol_exempt = "reference oracle for differential tests"

    __slots__ = ("_size", "_owner", "_matrix", "_dirty")

    def __init__(self, size: int, owner: int):
        if size <= 0:
            raise ClockError(f"matrix clock size must be positive, got {size}")
        if not 0 <= owner < size:
            raise ClockError(f"owner {owner} out of range for size {size}")
        self._size = size
        self._owner = owner
        self._matrix: List[List[int]] = [[0] * size for _ in range(size)]
        self._dirty = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def owner(self) -> int:
        return self._owner

    def cell(self, row: int, col: int) -> int:
        return self._matrix[row][col]

    def _check_peer(self, index: int, what: str) -> None:
        if not 0 <= index < self._size:
            raise ClockError(
                f"{what} index {index} out of range for domain of size {self._size}"
            )

    def prepare_send(self, dest: int) -> ReferenceMatrixStamp:
        self._check_peer(dest, "destination")
        if dest == self._owner:
            raise ClockError("a server does not stamp messages to itself")
        self._matrix[self._owner][dest] += 1
        self._dirty += 1
        rows = tuple(tuple(row) for row in self._matrix)
        return ReferenceMatrixStamp(self._owner, dest, rows)

    def can_deliver(self, stamp: Stamp) -> bool:
        if not isinstance(stamp, ReferenceMatrixStamp):
            raise ClockError(
                f"expected ReferenceMatrixStamp, got {type(stamp).__name__}"
            )
        if stamp.size != self._size:
            raise ClockError(
                f"stamp size {stamp.size} does not match clock size {self._size}"
            )
        me = self._owner
        sender = stamp.sender
        self._check_peer(sender, "sender")
        if stamp.entry(sender, me) != self._matrix[sender][me] + 1:
            return False
        return all(
            stamp.entry(k, me) <= self._matrix[k][me]
            for k in range(self._size)
            if k != sender
        )

    def is_duplicate(self, stamp: Stamp) -> bool:
        if not isinstance(stamp, ReferenceMatrixStamp):
            raise ClockError(
                f"expected ReferenceMatrixStamp, got {type(stamp).__name__}"
            )
        self._check_peer(stamp.sender, "sender")
        return (
            stamp.entry(stamp.sender, self._owner)
            <= self._matrix[stamp.sender][self._owner]
        )

    def deliver(self, stamp: Stamp) -> None:
        if not self.can_deliver(stamp):
            raise ClockError(
                f"stamp {stamp} not deliverable at server {self._owner}; "
                "call can_deliver first and hold the message back"
            )
        for i in range(self._size):
            row = self._matrix[i]
            stamped = stamp._rows[i]
            for j in range(self._size):
                value = stamped[j]
                if value > row[j]:
                    row[j] = value
                    self._dirty += 1

    def dirty_cells(self) -> int:
        return self._dirty

    def clear_dirty(self) -> None:
        self._dirty = 0

    def snapshot(self) -> List[List[int]]:
        return [row[:] for row in self._matrix]

    def restore(self, snapshot: List[List[int]]) -> None:
        if len(snapshot) != self._size or any(
            len(row) != self._size for row in snapshot
        ):
            raise ClockError("snapshot shape does not match clock size")
        self._matrix = [list(row) for row in snapshot]
        self._dirty = 0

    def __repr__(self) -> str:
        return f"ReferenceMatrixClock(size={self._size}, owner={self._owner})"


@dataclass(frozen=True)
class ReferenceCellUpdate:
    """One shipped matrix cell: ``Mat[row][col] = value`` at the sender."""

    row: int
    col: int
    value: int


class ReferenceUpdateStamp(Stamp):
    """A delta stamp: only the cells modified since the last send to
    the same destination."""

    __slots__ = ("_sender", "_dest", "_updates", "_index")

    def __init__(
        self, sender: int, dest: int, updates: Tuple[ReferenceCellUpdate, ...]
    ):
        self._sender = sender
        self._dest = dest
        self._updates = updates
        self._index: Dict[Tuple[int, int], int] = {
            (u.row, u.col): u.value for u in updates
        }

    @property
    def sender(self) -> int:
        return self._sender

    @property
    def dest(self) -> int:
        return self._dest

    @property
    def updates(self) -> Tuple[ReferenceCellUpdate, ...]:
        return self._updates

    @property
    def wire_cells(self) -> int:
        return len(self._updates)

    def entry(self, row: int, col: int):
        return self._index.get((row, col))

    def __repr__(self) -> str:
        return (
            f"ReferenceUpdateStamp(sender={self._sender}, dest={self._dest}, "
            f"cells={len(self._updates)})"
        )


class ReferenceUpdatesClock(CausalClock):
    """The seed Appendix-A clock: nested lists, O(s²) delta extraction."""

    # R023: differential-testing oracle only — never booted through the
    # core registry, so it has no registered CausalCore.
    protocol_exempt = "reference oracle for differential tests"

    __slots__ = (
        "_size",
        "_owner",
        "_value",
        "_cstate",
        "_origin",
        "_sent_state",
        "_state",
        "_dirty",
    )

    def __init__(self, size: int, owner: int):
        if size <= 0:
            raise ClockError(f"matrix clock size must be positive, got {size}")
        if not 0 <= owner < size:
            raise ClockError(f"owner {owner} out of range for size {size}")
        self._size = size
        self._owner = owner
        self._value: List[List[int]] = [[0] * size for _ in range(size)]
        self._cstate: List[List[int]] = [[0] * size for _ in range(size)]
        self._origin: List[List[int]] = [[owner] * size for _ in range(size)]
        self._sent_state: List[int] = [0] * size
        self._state = 0
        self._dirty = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def owner(self) -> int:
        return self._owner

    def cell(self, row: int, col: int) -> int:
        return self._value[row][col]

    def _check_peer(self, index: int, what: str) -> None:
        if not 0 <= index < self._size:
            raise ClockError(
                f"{what} index {index} out of range for domain of size {self._size}"
            )

    def prepare_send(self, dest: int) -> ReferenceUpdateStamp:
        self._check_peer(dest, "destination")
        if dest == self._owner:
            raise ClockError("a server does not stamp messages to itself")
        me = self._owner
        self._state += 1
        self._value[me][dest] += 1
        self._cstate[me][dest] = self._state
        self._origin[me][dest] = me
        self._dirty += 1

        high_water = self._sent_state[dest]
        updates = tuple(
            ReferenceCellUpdate(k, l, self._value[k][l])
            for k in range(self._size)
            for l in range(self._size)
            if self._cstate[k][l] > high_water and self._origin[k][l] != dest
        )
        self._sent_state[dest] = self._state
        return ReferenceUpdateStamp(me, dest, updates)

    def can_deliver(self, stamp: Stamp) -> bool:
        if not isinstance(stamp, ReferenceUpdateStamp):
            raise ClockError(
                f"expected ReferenceUpdateStamp, got {type(stamp).__name__}"
            )
        me = self._owner
        sender = stamp.sender
        self._check_peer(sender, "sender")
        shipped = stamp.entry(sender, me)
        if shipped is None:
            raise ClockError(
                f"malformed delta stamp from {sender}: missing its own "
                f"({sender}, {me}) send-count cell"
            )
        if shipped != self._value[sender][me] + 1:
            return False
        return all(
            update.value <= self._value[update.row][me]
            for update in stamp.updates
            if update.col == me and update.row != sender
        )

    def is_duplicate(self, stamp: Stamp) -> bool:
        if not isinstance(stamp, ReferenceUpdateStamp):
            raise ClockError(
                f"expected ReferenceUpdateStamp, got {type(stamp).__name__}"
            )
        self._check_peer(stamp.sender, "sender")
        shipped = stamp.entry(stamp.sender, self._owner)
        if shipped is None:
            raise ClockError(
                f"malformed delta stamp from {stamp.sender}: missing its own "
                f"send-count cell"
            )
        return shipped <= self._value[stamp.sender][self._owner]

    def deliver(self, stamp: Stamp) -> None:
        if not self.can_deliver(stamp):
            raise ClockError(
                f"stamp {stamp} not deliverable at server {self._owner}; "
                "call can_deliver first and hold the message back"
            )
        assert isinstance(stamp, ReferenceUpdateStamp)
        self._state += 1
        for update in stamp.updates:
            if update.value > self._value[update.row][update.col]:
                self._value[update.row][update.col] = update.value
                self._cstate[update.row][update.col] = self._state
                self._origin[update.row][update.col] = stamp.sender
                self._dirty += 1

    def dirty_cells(self) -> int:
        return self._dirty

    def clear_dirty(self) -> None:
        self._dirty = 0

    def snapshot(self) -> dict:
        return {
            "value": copy.deepcopy(self._value),
            "cstate": copy.deepcopy(self._cstate),
            "origin": copy.deepcopy(self._origin),
            "sent_state": list(self._sent_state),
            "state": self._state,
        }

    def restore(self, snapshot: dict) -> None:
        value = snapshot["value"]
        if len(value) != self._size or any(len(row) != self._size for row in value):
            raise ClockError("snapshot shape does not match clock size")
        self._value = copy.deepcopy(value)
        self._cstate = copy.deepcopy(snapshot["cstate"])
        self._origin = copy.deepcopy(snapshot["origin"])
        self._sent_state = list(snapshot["sent_state"])
        self._state = snapshot["state"]
        self._dirty = 0

    def __repr__(self) -> str:
        return (
            f"ReferenceUpdatesClock(size={self._size}, owner={self._owner}, "
            f"state={self._state})"
        )
