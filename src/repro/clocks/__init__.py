"""Logical clocks: Lamport, vector, and matrix clocks.

This package implements the clock hierarchy the paper builds on (§1, §3):

- :mod:`repro.clocks.lamport` — scalar Lamport clocks [Lamport 1978], the
  weakest logical time; kept as a baseline and for total-order tiebreaks.
- :mod:`repro.clocks.vector` — vector clocks, which characterize causal
  precedence exactly, plus the Birman–Schiper–Stephenson causal-broadcast
  delivery test used by the related-work baselines (§2).
- :mod:`repro.clocks.matrix` — matrix clocks in the Wuu–Bernstein style the
  AAA MOM uses: cell ``M[i][j]`` counts messages sent by server *i* to
  server *j*, and the Raynal–Schiper–Toueg condition decides when a stamped
  message is deliverable. Stamps carry the full s×s matrix.
- :mod:`repro.clocks.updates` — the **Updates** optimization of Appendix A:
  identical delivery semantics, but stamps carry only the matrix cells
  modified since the previous send to the same destination.

All clock implementations share the :class:`~repro.clocks.base.CausalClock`
interface so the MOM channel is generic over the stamping strategy.
"""

from repro.clocks.base import CausalClock, Stamp
from repro.clocks.lamport import LamportClock
from repro.clocks.vector import VectorClock, CausalBroadcastClock, VectorStamp
from repro.clocks.matrix import MatrixClock, MatrixStamp
from repro.clocks.updates import UpdatesClock, UpdateStamp, CellUpdate

__all__ = [
    "CausalClock",
    "Stamp",
    "LamportClock",
    "VectorClock",
    "CausalBroadcastClock",
    "VectorStamp",
    "MatrixClock",
    "MatrixStamp",
    "UpdatesClock",
    "UpdateStamp",
    "CellUpdate",
]
