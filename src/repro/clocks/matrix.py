"""Matrix clocks with full-matrix stamps — the classic AAA algorithm (§3).

Cell ``M[i][j]`` on a server counts, to that server's knowledge, how many
messages server *i* has sent to server *j*. The owner's own row is always
exact for its own sends; other rows reflect transitively learned knowledge
("what A knows about what B knows about C", §1).

A message from *s* to *r* is stamped with the sender's full matrix (after
bumping ``M[s][r]``). The receiver applies the Raynal–Schiper–Toueg test:

- ``W[s][r] == M[r-local][s][r] + 1`` — the message is the next expected
  from *s* (per-sender FIFO towards *r*), and
- ``W[k][r] <= M[r-local][k][r]`` for every ``k != s`` — every message the
  sender knew to be en route to *r* has already been delivered at *r*.

Together these guarantee causal delivery within the group covered by the
clock; in the paper's architecture that group is one *domain of causality*
(§4.1), so the clock size is s² for a domain of s servers — the quantity the
whole paper is about shrinking.
"""

from __future__ import annotations

import copy
from typing import List, Tuple

from repro.clocks.base import CausalClock, Stamp
from repro.errors import ClockError


class MatrixStamp(Stamp):
    """A full s×s matrix timestamp (the un-optimized wire format).

    ``wire_cells`` is s² regardless of how many cells changed — this is the
    O(n²) message-size term of §3 that motivates both the Updates algorithm
    (Appendix A) and the domain decomposition.
    """

    __slots__ = ("_sender", "_dest", "_rows")

    def __init__(self, sender: int, dest: int, rows: Tuple[Tuple[int, ...], ...]):
        self._sender = sender
        self._dest = dest
        self._rows = rows

    @property
    def sender(self) -> int:
        return self._sender

    @property
    def dest(self) -> int:
        """Domain-local index of the destination server."""
        return self._dest

    @property
    def wire_cells(self) -> int:
        size = len(self._rows)
        return size * size

    def entry(self, row: int, col: int) -> int:
        return self._rows[row][col]

    @property
    def size(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return (
            f"MatrixStamp(sender={self._sender}, dest={self._dest}, "
            f"size={len(self._rows)})"
        )


class MatrixClock(CausalClock):
    """One server's matrix clock for one domain (full-stamp variant)."""

    __slots__ = ("_size", "_owner", "_matrix", "_dirty")

    def __init__(self, size: int, owner: int):
        if size <= 0:
            raise ClockError(f"matrix clock size must be positive, got {size}")
        if not 0 <= owner < size:
            raise ClockError(f"owner {owner} out of range for size {size}")
        self._size = size
        self._owner = owner
        self._matrix: List[List[int]] = [[0] * size for _ in range(size)]
        self._dirty = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def owner(self) -> int:
        return self._owner

    def cell(self, row: int, col: int) -> int:
        return self._matrix[row][col]

    def _check_peer(self, index: int, what: str) -> None:
        if not 0 <= index < self._size:
            raise ClockError(
                f"{what} index {index} out of range for domain of size {self._size}"
            )

    def prepare_send(self, dest: int) -> MatrixStamp:
        """Record a send to ``dest`` and return the full-matrix stamp."""
        self._check_peer(dest, "destination")
        if dest == self._owner:
            raise ClockError("a server does not stamp messages to itself")
        self._matrix[self._owner][dest] += 1
        self._dirty += 1
        rows = tuple(tuple(row) for row in self._matrix)
        return MatrixStamp(self._owner, dest, rows)

    def can_deliver(self, stamp: Stamp) -> bool:
        if not isinstance(stamp, MatrixStamp):
            raise ClockError(f"expected MatrixStamp, got {type(stamp).__name__}")
        if stamp.size != self._size:
            raise ClockError(
                f"stamp size {stamp.size} does not match clock size {self._size}"
            )
        me = self._owner
        sender = stamp.sender
        self._check_peer(sender, "sender")
        if stamp.entry(sender, me) != self._matrix[sender][me] + 1:
            return False
        return all(
            stamp.entry(k, me) <= self._matrix[k][me]
            for k in range(self._size)
            if k != sender
        )

    def is_duplicate(self, stamp: Stamp) -> bool:
        if not isinstance(stamp, MatrixStamp):
            raise ClockError(f"expected MatrixStamp, got {type(stamp).__name__}")
        self._check_peer(stamp.sender, "sender")
        return (
            stamp.entry(stamp.sender, self._owner)
            <= self._matrix[stamp.sender][self._owner]
        )

    def deliver(self, stamp: Stamp) -> None:
        """Merge a deliverable stamp: ``M := max(M, W)`` cellwise."""
        if not self.can_deliver(stamp):
            raise ClockError(
                f"stamp {stamp} not deliverable at server {self._owner}; "
                "call can_deliver first and hold the message back"
            )
        for i in range(self._size):
            row = self._matrix[i]
            stamped = stamp._rows[i]
            for j in range(self._size):
                value = stamped[j]
                if value > row[j]:
                    row[j] = value
                    self._dirty += 1

    def dirty_cells(self) -> int:
        return self._dirty

    def clear_dirty(self) -> None:
        self._dirty = 0

    def snapshot(self) -> List[List[int]]:
        return [row[:] for row in self._matrix]

    def restore(self, snapshot: List[List[int]]) -> None:
        if len(snapshot) != self._size or any(
            len(row) != self._size for row in snapshot
        ):
            raise ClockError("snapshot shape does not match clock size")
        self._matrix = [list(row) for row in snapshot]
        self._dirty = 0

    def __repr__(self) -> str:
        return f"MatrixClock(size={self._size}, owner={self._owner})"
