"""Matrix clocks with full-matrix stamps — the classic AAA algorithm (§3).

Cell ``M[i][j]`` on a server counts, to that server's knowledge, how many
messages server *i* has sent to server *j*. The owner's own row is always
exact for its own sends; other rows reflect transitively learned knowledge
("what A knows about what B knows about C", §1).

A message from *s* to *r* is stamped with the sender's full matrix (after
bumping ``M[s][r]``). The receiver applies the Raynal–Schiper–Toueg test:

- ``W[s][r] == M[r-local][s][r] + 1`` — the message is the next expected
  from *s* (per-sender FIFO towards *r*), and
- ``W[k][r] <= M[r-local][k][r]`` for every ``k != s`` — every message the
  sender knew to be en route to *r* has already been delivered at *r*.

Together these guarantee causal delivery within the group covered by the
clock; in the paper's architecture that group is one *domain of causality*
(§4.1), so the clock size is s² for a domain of s servers — the quantity the
whole paper is about shrinking.

Hot-path representation. The matrix lives in one row-major ``array('q')``
(cell ``(i, j)`` at index ``i * size + j``) instead of nested Python lists,
and three wall-clock optimizations ride on it — none of which changes a
single protocol decision, stamp content, or dirty-cell count (the
differential tests in ``tests/test_differential_clocks.py`` pin this):

- **Copy-on-write stamps.** ``prepare_send`` hands the stamp the live
  buffer and marks the clock *shared*; the next mutation copies the buffer
  first. A send costs O(1) instead of materializing s² tuples, yet stamps
  stay frozen across retransmissions exactly as the recovery protocol
  requires.
- **Change-log window merges.** Every cell mutation is appended to a log;
  a stamp captures the log and its length at stamp time. A receiver
  remembers, per sender, the log position it last merged; delivering the
  next stamp from that sender only replays the log window in between —
  O(cells that actually changed). Cells outside the window are provably
  already dominated: per-sender FIFO delivery (guaranteed by the RST test)
  means the previous stamp from this sender was merged first, and matrix
  cells only ever grow. Any log discontinuity (first contact, restore,
  log trim) falls back to the always-correct full-buffer merge.
- **Journaled persistence images.** The clock tracks which cells changed
  since the last ``sync_image`` call and patches them into a retained
  image instead of re-copying the whole matrix; ``restore`` invalidates
  the journal so the next sync rebuilds from scratch.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Tuple, Union

from repro.clocks.base import CausalClock, Stamp
from repro.errors import ClockError

# A clock's change log is trimmed once it exceeds max(_LOG_MIN, 4 * s²)
# entries; outstanding stamps keep the old list object alive, and the
# identity change makes every receiver fall back to one full merge.
_LOG_MIN = 64


class MatrixImage:
    """A persistence image: the raw flat buffer plus the clock size.

    Produced by :meth:`MatrixClock.sync_image` and accepted by
    :meth:`MatrixClock.restore`. Deep-copiable (the store's ``load`` path).
    """

    __slots__ = ("size", "buf")

    def __init__(self, size: int, buf: array) -> None:
        self.size = size
        self.buf = buf

    def __deepcopy__(self, memo: object) -> "MatrixImage":
        return MatrixImage(self.size, array("q", self.buf))

    def __repr__(self) -> str:
        return f"MatrixImage(size={self.size})"


class MatrixStamp(Stamp):
    """A full s×s matrix timestamp (the un-optimized wire format).

    ``wire_cells`` is s² regardless of how many cells changed — this is the
    O(n²) message-size term of §3 that motivates both the Updates algorithm
    (Appendix A) and the domain decomposition.

    The stamp shares the sender clock's buffer copy-on-write: the clock
    never mutates a buffer a stamp can see. ``_log``/``_log_len`` capture
    the sender's change log at stamp time for the receiver's window merge.
    """

    __slots__ = (
        "_sender", "_dest", "_size", "_buf", "_log", "_log_len", "_log_epoch"
    )

    def __init__(
        self,
        sender: int,
        dest: int,
        size: int,
        buf: array,
        log: Optional[list] = None,
        log_len: int = 0,
        log_epoch: int = -1,
    ) -> None:
        self._sender = sender
        self._dest = dest
        self._size = size
        self._buf = buf
        self._log = log
        self._log_len = log_len
        self._log_epoch = log_epoch

    @property
    def sender(self) -> int:
        return self._sender

    @property
    def dest(self) -> int:
        """Domain-local index of the destination server."""
        return self._dest

    @property
    def wire_cells(self) -> int:
        return self._size * self._size

    def entry(self, row: int, col: int) -> int:
        return self._buf[row * self._size + col]

    @property
    def size(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return (
            f"MatrixStamp(sender={self._sender}, dest={self._dest}, "
            f"size={self._size})"
        )


class MatrixClock(CausalClock):
    """One server's matrix clock for one domain (full-stamp variant)."""

    __slots__ = (
        "_size",
        "_owner",
        "_buf",
        "_shared",
        "_log",
        "_log_epoch",
        "_merged",
        "_dirty",
        "_journal",
        "_journal_full",
        "_image",
        "stat_window_merges",
        "stat_full_merges",
    )

    def __init__(self, size: int, owner: int) -> None:
        if size <= 0:
            raise ClockError(f"matrix clock size must be positive, got {size}")
        if not 0 <= owner < size:
            raise ClockError(f"owner {owner} out of range for size {size}")
        self._size = size
        self._owner = owner
        self._buf = array("q", bytes(8 * size * size))
        self._shared = False
        # Append-only (cell_index, new_value) mutation log; replaced (new
        # list, epoch bumped) on trim or restore, which receivers detect
        # by epoch mismatch and answer with a full merge. The epoch (not
        # object identity) travels with each stamp, so the detection works
        # across process boundaries where stamps arrive pickled.
        self._log: list = []
        self._log_epoch = 0
        # Per-sender merge positions: sender -> (log epoch, merged length).
        self._merged: dict = {}
        self._dirty = 0
        self._journal: set = set()
        self._journal_full = True  # first sync_image copies everything
        self._image: Optional[MatrixImage] = None
        # merge-strategy tallies (read by repro.metrics' collector; plain
        # ints so the clock stays free of upward dependencies)
        self.stat_window_merges = 0
        self.stat_full_merges = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def owner(self) -> int:
        return self._owner

    def cell(self, row: int, col: int) -> int:
        return self._buf[row * self._size + col]

    def _check_peer(self, index: int, what: str) -> None:
        if not 0 <= index < self._size:
            raise ClockError(
                f"{what} index {index} out of range for domain of size {self._size}"
            )

    def _own_buf(self) -> array:
        """Copy-on-write: detach from any outstanding stamp before mutating."""
        if self._shared:
            self._buf = array("q", self._buf)
            self._shared = False
        return self._buf

    def _trim_log(self) -> None:
        if len(self._log) > max(_LOG_MIN, 4 * self._size * self._size):
            self._log = []
            self._log_epoch += 1

    def prepare_send(self, dest: int) -> MatrixStamp:
        """Record a send to ``dest`` and return the full-matrix stamp."""
        self._check_peer(dest, "destination")
        if dest == self._owner:
            raise ClockError("a server does not stamp messages to itself")
        self._trim_log()
        buf = self._own_buf()
        idx = self._owner * self._size + dest
        value = buf[idx] + 1
        buf[idx] = value
        self._log.append((idx, value))
        self._journal.add(idx)
        self._dirty += 1
        self._shared = True
        return MatrixStamp(
            self._owner, dest, self._size, buf, self._log, len(self._log),
            self._log_epoch,
        )

    def can_deliver(self, stamp: Stamp) -> bool:
        if not isinstance(stamp, MatrixStamp):
            raise ClockError(f"expected MatrixStamp, got {type(stamp).__name__}")
        if stamp.size != self._size:
            raise ClockError(
                f"stamp size {stamp.size} does not match clock size {self._size}"
            )
        me = self._owner
        sender = stamp.sender
        self._check_peer(sender, "sender")
        size = self._size
        buf = self._buf
        sbuf = stamp._buf
        if sbuf[sender * size + me] != buf[sender * size + me] + 1:
            return False
        for k in range(size):
            if k != sender and sbuf[k * size + me] > buf[k * size + me]:
                return False
        return True

    def is_duplicate(self, stamp: Stamp) -> bool:
        if not isinstance(stamp, MatrixStamp):
            raise ClockError(f"expected MatrixStamp, got {type(stamp).__name__}")
        self._check_peer(stamp.sender, "sender")
        idx = stamp.sender * self._size + self._owner
        return stamp._buf[idx] <= self._buf[idx]

    def deliver(self, stamp: Stamp) -> None:
        """Merge a deliverable stamp: ``M := max(M, W)`` cellwise."""
        if not self.can_deliver(stamp):
            raise ClockError(
                f"stamp {stamp} not deliverable at server {self._owner}; "
                "call can_deliver first and hold the message back"
            )
        sender = stamp.sender
        last = self._merged.get(sender)
        window: Optional[dict] = None
        if (
            last is not None
            and stamp._log is not None
            and last[0] == stamp._log_epoch
            and last[1] <= stamp._log_len
        ):
            # Window merge: only cells the sender changed between its
            # previous stamp to anyone and this one. Dedupe to the last
            # value per cell so a twice-bumped cell counts dirty once,
            # exactly like the cellwise full merge would.
            window = dict(stamp._log[last[1] : stamp._log_len])
        self._trim_log()
        buf = self._own_buf()
        log = self._log
        journal = self._journal
        dirty = 0
        if window is not None:
            self.stat_window_merges += 1
        else:
            self.stat_full_merges += 1
        if window is not None:
            for idx, value in window.items():
                if value > buf[idx]:
                    buf[idx] = value
                    log.append((idx, value))
                    journal.add(idx)
                    dirty += 1
        else:
            sbuf = stamp._buf
            for idx in range(self._size * self._size):
                value = sbuf[idx]
                if value > buf[idx]:
                    buf[idx] = value
                    log.append((idx, value))
                    journal.add(idx)
                    dirty += 1
        self._dirty += dirty
        if stamp._log is not None:
            self._merged[sender] = (stamp._log_epoch, stamp._log_len)

    def dirty_cells(self) -> int:
        return self._dirty

    def clear_dirty(self) -> None:
        self._dirty = 0

    def snapshot(self) -> List[List[int]]:
        size = self._size
        buf = self._buf
        return [list(buf[row * size : (row + 1) * size]) for row in range(size)]

    def sync_image(self) -> MatrixImage:
        """Return the persistence image, patched with journaled cells.

        The caller (the channel) hands the returned object to the store as
        an owned value; the clock retains it and patches only the cells
        that changed since the previous call, so persisting after a
        delivery costs O(changed cells) wall-clock. The simulated-time
        cost of the write is still charged by the cost model, unchanged.
        """
        image = self._image
        if image is None or self._journal_full:
            image = MatrixImage(self._size, array("q", self._buf))
            self._image = image
            self._journal_full = False
        else:
            buf = self._buf
            ibuf = image.buf
            for idx in self._journal:
                ibuf[idx] = buf[idx]
        self._journal.clear()
        return image

    def restore(
        self, snapshot: Union[MatrixImage, List[List[int]]]
    ) -> None:
        if isinstance(snapshot, MatrixImage):
            if snapshot.size != self._size:
                raise ClockError("snapshot shape does not match clock size")
            self._buf = array("q", snapshot.buf)
        else:
            if len(snapshot) != self._size or any(
                len(row) != self._size for row in snapshot
            ):
                raise ClockError("snapshot shape does not match clock size")
            flat: List[int] = []
            for row in snapshot:
                flat.extend(row)
            self._buf = array("q", flat)
        self._shared = False
        self._log = []
        self._log_epoch += 1
        self._merged.clear()
        self._dirty = 0
        self._journal.clear()
        self._journal_full = True
        self._image = None

    def grow(self, new_size: int) -> "MatrixClock":
        """A fresh clock covering ``new_size`` servers with all recorded
        knowledge preserved (the domain-resize hook behind
        :meth:`repro.protocol.cores.MatrixCore.resize`).

        The known s×s block is copied into the top-left of the grown
        matrix; new rows/columns start at zero — no message involving a
        new member has been seen, which is exactly what zero counts mean.
        Growth is a quiescent-domain operation: stamps minted by the old
        clock are not accepted by the grown one (the RST test is
        shape-checked), so callers drain in-flight traffic first.
        """
        if new_size < self._size:
            raise ClockError(
                f"cannot shrink a matrix clock from {self._size} to {new_size}"
            )
        grown = MatrixClock(new_size, self._owner)
        old = self._size
        buf = self._buf
        gbuf = grown._buf
        for row in range(old):
            base = row * old
            gbase = row * new_size
            for col in range(old):
                gbuf[gbase + col] = buf[base + col]
        return grown

    def __repr__(self) -> str:
        return f"MatrixClock(size={self._size}, owner={self._owner})"
