"""Common interface for the causal clocks used by the MOM channel.

The channel (:mod:`repro.mom.channel`) is written against this interface, so
the classic full-matrix algorithm and the Appendix-A Updates algorithm are
interchangeable per domain — which is what makes the stamp-size ablation
(``benchmarks/test_updates_ablation.py``) a one-line configuration change.
"""

from __future__ import annotations

import abc
from typing import Any


class Stamp(abc.ABC):
    """A causal timestamp piggybacked on one message (§5, "piggybacks
    messages with a matrix timestamp").

    Concrete stamps know their own wire footprint so the simulator can
    charge serialization and transmission costs without actually encoding
    bytes.
    """

    __slots__ = ()

    @property
    @abc.abstractmethod
    def sender(self) -> int:
        """Domain-local index of the sending server."""

    @property
    @abc.abstractmethod
    def dest(self) -> int:
        """Domain-local index of the destination server.

        The channel keys its hold-back buckets on ``(sender, entry(sender,
        dest))`` — the FIFO sequence number towards the destination — so
        every stamp implementation must expose its destination."""

    @property
    @abc.abstractmethod
    def wire_cells(self) -> int:
        """Number of clock cells serialized on the wire for this stamp.

        The paper's scalability argument is about exactly this quantity:
        O(s²) for full-matrix stamps in a domain of s servers, and the
        number of modified cells for the Updates algorithm.
        """

    @abc.abstractmethod
    def entry(self, row: int, col: int) -> Any:
        """Best-effort read of one matrix cell carried by the stamp.

        Used by diagnostics and tests; the delivery test itself lives in the
        clock, not the stamp.
        """


class CausalClock(abc.ABC):
    """Per-domain causal ordering state held by one server's channel.

    The protocol contract (matching §5's Sender/Receiver pseudocode):

    1. the sender calls :meth:`prepare_send` to record the send and obtain
       the stamp to piggyback;
    2. the receiver calls :meth:`can_deliver`; while it returns ``False``
       the message waits in the hold-back queue;
    3. once deliverable, the receiver calls :meth:`deliver` exactly once,
       merging the stamp into its local clock;
    4. both sides call :meth:`dirty_cells` / :meth:`clear_dirty` so the
       persistence layer can charge disk writes for modified cells only.
    """

    __slots__ = ()

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of servers in the domain this clock covers."""

    @property
    @abc.abstractmethod
    def owner(self) -> int:
        """Domain-local index of the server holding this clock."""

    @abc.abstractmethod
    def prepare_send(self, dest: int) -> Stamp:
        """Record a send from :attr:`owner` to ``dest`` and return the stamp."""

    @abc.abstractmethod
    def can_deliver(self, stamp: Stamp) -> bool:
        """Raynal–Schiper–Toueg deliverability test at :attr:`owner`.

        True iff the stamped message is the next one expected from its
        sender (``W[s][me] == M[s][me] + 1``) and every message the sender
        knew to be destined to us had already been delivered
        (``W[k][me] <= M[k][me]`` for every other ``k``).
        """

    @abc.abstractmethod
    def deliver(self, stamp: Stamp) -> None:
        """Merge a deliverable stamp into the local clock (``M := max(M, W)``)."""

    @abc.abstractmethod
    def is_duplicate(self, stamp: Stamp) -> bool:
        """Has the stamped message already been delivered here?

        True iff the stamp's own send-count cell is not ahead of the local
        clock (``W[s][me] <= M[s][me]``). This is how the channel suppresses
        retransmissions after a crash: the matrix clock doubles as the
        exactly-once filter, no extra bookkeeping needed.
        """

    @abc.abstractmethod
    def cell(self, row: int, col: int) -> int:
        """Current value of matrix cell ``(row, col)``."""

    @abc.abstractmethod
    def dirty_cells(self) -> int:
        """Cells modified since the last :meth:`clear_dirty` (for disk-cost
        accounting by the persistence layer)."""

    @abc.abstractmethod
    def clear_dirty(self) -> None:
        """Reset the dirty-cell counter after a persistent checkpoint."""

    @abc.abstractmethod
    def snapshot(self) -> Any:
        """Opaque, deep-copied state for crash/recovery persistence."""

    @abc.abstractmethod
    def restore(self, snapshot: Any) -> None:
        """Reload state saved by :meth:`snapshot` (crash recovery).

        Implementations must also accept whatever :meth:`sync_image`
        returns — the channel persists images, not snapshots.
        """

    def sync_image(self) -> Any:
        """State to persist for crash recovery, incrementally if possible.

        The channel stores the returned object as an *owned* value and
        hands it back to :meth:`restore` on recovery. Clocks that track a
        write journal (:class:`~repro.clocks.matrix.MatrixClock`,
        :class:`~repro.clocks.updates.UpdatesClock`) retain the image
        between calls and patch only the cells that changed, making a
        persist O(changed cells) wall-clock instead of O(s²). The contract
        for overriders: the returned object must always equal a fresh
        :meth:`snapshot` semantically, and any mutation of a previously
        returned image must happen inside this call (the store's content
        is read only between persists, never during one).

        The default is the safe fallback — a full :meth:`snapshot`.
        Simulated-time disk costs are unaffected either way; the cost
        model charges them from ``cells``/``dirty_cells`` accounting.
        """
        return self.snapshot()
