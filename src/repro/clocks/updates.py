"""The **Updates** optimized matrix-clock algorithm (Appendix A).

Instead of shipping the full s×s matrix on every message, each server keeps,
per matrix cell, the local *modification state* (a per-server counter of
clock modifications) and, per destination, the state value at the previous
send to that destination. A stamp then carries only the cells modified since
the previous send to the same destination — minus the cells whose current
value was learned *from* that destination, which it necessarily already
knows (the ``Mat[k,l].node ≠ j`` filter of Appendix A).

Wire format aside, delivery semantics are identical to the classic
full-matrix algorithm: the Raynal–Schiper–Toueg test decides deliverability
and delivery max-merges the shipped cells. Two facts make the test sound on
deltas:

- the cell ``(sender, me)`` is always in the delta (it is bumped by the very
  send being stamped), so the FIFO condition is directly checkable;
- any cell *absent* from the delta was already shipped to us by an earlier
  message from the same sender (or learned from us); the FIFO condition
  guarantees those earlier messages were delivered first, so our local
  matrix already dominates the absent cells and the ``W[k][me] <= M[k][me]``
  comparisons only need to run over delta cells.

The paper notes (§3) that even with this optimization the message size is
still O(s²) *in the worst case* — e.g. a server that was silent for a long
time ships almost everything it learned meanwhile — which is why domains are
needed on top of it; §4.1 combines both.

Hot-path representation. ``value``/``cstate``/``origin`` live in flat
row-major ``array('q')`` buffers, and ``prepare_send`` no longer scans all
s² cells per send: modifications are appended to ``_changes``, a list of
``(state, cell_index)`` pairs kept sorted by state (each modification uses
a strictly larger state, and within one delivery cells arrive in ascending
index order). The delta for a destination with high-water mark *h* is the
suffix of entries with ``state > h`` — exactly the cells whose current
``cstate`` exceeds *h*, because a cell's latest modification is always its
rightmost appearance. The suffix is deduplicated, sorted by cell index
(reproducing the seed's row-major emission order bit for bit), and filtered
by the no-echo rule. When the list outgrows ``4·s²`` entries it is rebuilt
from the ``cstate`` buffer (one entry per modified cell), which preserves
all suffix queries and bounds memory at O(s²). The stamp wire content is
byte-identical to the seed implementation for every schedule — the
differential tests in ``tests/test_differential_clocks.py`` pin this.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.clocks.base import CausalClock, Stamp
from repro.errors import ClockError

_CHANGES_MIN = 64


@dataclass(frozen=True)
class CellUpdate:
    """One shipped matrix cell: ``Mat[row][col] = value`` at the sender."""

    row: int
    col: int
    value: int


class UpdatesImage:
    """A persistence image of the full Appendix-A state, flat buffers.

    Produced by :meth:`UpdatesClock.sync_image` and accepted by
    :meth:`UpdatesClock.restore`. Deep-copiable (the store's ``load`` path).
    """

    __slots__ = ("size", "value", "cstate", "origin", "sent_state", "state")

    def __init__(
        self,
        size: int,
        value: array,
        cstate: array,
        origin: array,
        sent_state: array,
        state: int,
    ) -> None:
        self.size = size
        self.value = value
        self.cstate = cstate
        self.origin = origin
        self.sent_state = sent_state
        self.state = state

    def __deepcopy__(self, memo: object) -> "UpdatesImage":
        return UpdatesImage(
            self.size,
            array("q", self.value),
            array("q", self.cstate),
            array("q", self.origin),
            array("q", self.sent_state),
            self.state,
        )

    def __repr__(self) -> str:
        return f"UpdatesImage(size={self.size}, state={self.state})"


class UpdateStamp(Stamp):
    """A delta stamp: only the cells modified since the last send to
    the same destination."""

    __slots__ = ("_sender", "_dest", "_updates", "_index")

    def __init__(self, sender: int, dest: int, updates: Tuple[CellUpdate, ...]) -> None:
        self._sender = sender
        self._dest = dest
        self._updates = updates
        self._index: Optional[Dict[Tuple[int, int], int]] = None

    @property
    def sender(self) -> int:
        return self._sender

    @property
    def dest(self) -> int:
        """Domain-local index of the destination server."""
        return self._dest

    @property
    def updates(self) -> Tuple[CellUpdate, ...]:
        return self._updates

    @property
    def wire_cells(self) -> int:
        """Cells actually serialized — the quantity the optimization shrinks."""
        return len(self._updates)

    def entry(self, row: int, col: int) -> Optional[int]:
        """Value shipped for cell ``(row, col)``, or ``None`` if not shipped."""
        index = self._index
        if index is None:
            index = {(u.row, u.col): u.value for u in self._updates}
            self._index = index
        return index.get((row, col))

    def __repr__(self) -> str:
        return (
            f"UpdateStamp(sender={self._sender}, dest={self._dest}, "
            f"cells={len(self._updates)})"
        )


class UpdatesClock(CausalClock):
    """Matrix clock with Appendix-A delta propagation.

    State per Appendix A:

    - ``State`` — the local modification counter (``self._state``);
    - ``Mat[k][l] = (value, state, node)`` — cell value, the local ``State``
      at its last modification, and the peer the value was learned from
      (``owner`` itself for cells it bumped);
    - ``Node[j].state`` — the local ``State`` at the previous send to ``j``
      (``self._sent_state``), the per-destination high-water mark.
    """

    __slots__ = (
        "_size",
        "_owner",
        "_value",
        "_cstate",
        "_origin",
        "_sent_state",
        "_state",
        "_changes",
        "_dirty",
        "_journal",
        "_journal_sent",
        "_journal_full",
        "_image",
        "stat_window_merges",
        "stat_full_merges",
    )

    def __init__(self, size: int, owner: int) -> None:
        if size <= 0:
            raise ClockError(f"matrix clock size must be positive, got {size}")
        if not 0 <= owner < size:
            raise ClockError(f"owner {owner} out of range for size {size}")
        self._size = size
        self._owner = owner
        cells = size * size
        self._value = array("q", bytes(8 * cells))
        self._cstate = array("q", bytes(8 * cells))
        self._origin = array("q", [owner] * cells)
        self._sent_state = array("q", bytes(8 * size))
        self._state = 0
        # (state, cell_index) per modification, sorted ascending; the
        # suffix with state > h is exactly the set of cells whose cstate
        # exceeds h. Rebuilt (deduplicated) from _cstate when oversized.
        self._changes: List[Tuple[int, int]] = []
        self._dirty = 0
        self._journal: set = set()
        self._journal_sent: set = set()
        self._journal_full = True
        self._image: Optional[UpdatesImage] = None
        # merge-strategy tallies (read by repro.metrics' collector): every
        # Appendix-A delivery replays only shipped cells, i.e. window-like
        self.stat_window_merges = 0
        self.stat_full_merges = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def owner(self) -> int:
        return self._owner

    def cell(self, row: int, col: int) -> int:
        return self._value[row * self._size + col]

    def _check_peer(self, index: int, what: str) -> None:
        if not 0 <= index < self._size:
            raise ClockError(
                f"{what} index {index} out of range for domain of size {self._size}"
            )

    def _compact_changes(self) -> None:
        cells = self._size * self._size
        if len(self._changes) <= max(_CHANGES_MIN, 4 * cells):
            return
        cstate = self._cstate
        self._changes = sorted(
            (cstate[idx], idx) for idx in range(cells) if cstate[idx] > 0
        )

    def prepare_send(self, dest: int) -> UpdateStamp:
        """Record a send to ``dest`` and build the delta stamp.

        Appendix A, "Sending from Si to Sj": bump ``Mat[i][j]``, then ship
        every cell with ``state > Node[j].state`` whose value was not
        learned from ``j``, and advance ``Node[j].state``.
        """
        self._check_peer(dest, "destination")
        if dest == self._owner:
            raise ClockError("a server does not stamp messages to itself")
        me = self._owner
        size = self._size
        self._compact_changes()
        self._state += 1
        state = self._state
        idx = me * size + dest
        self._value[idx] += 1
        self._cstate[idx] = state
        self._origin[idx] = me
        self._changes.append((state, idx))
        self._journal.add(idx)
        self._dirty += 1

        high_water = self._sent_state[dest]
        # All entries with state > high_water; (high_water, size*size) sorts
        # after every real (high_water, idx) pair since idx < size*size.
        pos = bisect_right(self._changes, (high_water, size * size))
        touched = sorted({idx for _, idx in self._changes[pos:]})
        value = self._value
        origin = self._origin
        updates = tuple(
            CellUpdate(idx // size, idx % size, value[idx])
            for idx in touched
            if origin[idx] != dest
        )
        self._sent_state[dest] = state
        self._journal_sent.add(dest)
        return UpdateStamp(me, dest, updates)

    def can_deliver(self, stamp: Stamp) -> bool:
        """RST test evaluated on the delta (see module docstring for why
        delta cells suffice)."""
        if not isinstance(stamp, UpdateStamp):
            raise ClockError(f"expected UpdateStamp, got {type(stamp).__name__}")
        me = self._owner
        sender = stamp.sender
        self._check_peer(sender, "sender")
        shipped = stamp.entry(sender, me)
        if shipped is None:
            raise ClockError(
                f"malformed delta stamp from {sender}: missing its own "
                f"({sender}, {me}) send-count cell"
            )
        size = self._size
        value = self._value
        if shipped != value[sender * size + me] + 1:
            return False
        return all(
            update.value <= value[update.row * size + me]
            for update in stamp.updates
            if update.col == me and update.row != sender
        )

    def is_duplicate(self, stamp: Stamp) -> bool:
        if not isinstance(stamp, UpdateStamp):
            raise ClockError(f"expected UpdateStamp, got {type(stamp).__name__}")
        self._check_peer(stamp.sender, "sender")
        shipped = stamp.entry(stamp.sender, self._owner)
        if shipped is None:
            raise ClockError(
                f"malformed delta stamp from {stamp.sender}: missing its own "
                f"send-count cell"
            )
        return shipped <= self._value[stamp.sender * self._size + self._owner]

    def deliver(self, stamp: Stamp) -> None:
        """Apply a deliverable delta: max-merge every shipped cell.

        Appendix A, "Receiving on Si from Sj": cells that grow are
        re-stamped with the receiver's own ``State`` (so they propagate
        onward) and tagged as learned from the sender (so they are not
        echoed straight back).
        """
        if not self.can_deliver(stamp):
            raise ClockError(
                f"stamp {stamp} not deliverable at server {self._owner}; "
                "call can_deliver first and hold the message back"
            )
        assert isinstance(stamp, UpdateStamp)
        self._compact_changes()
        size = self._size
        sender = stamp.sender
        value = self._value
        cstate = self._cstate
        origin = self._origin
        changes = self._changes
        journal = self._journal
        self._state += 1
        state = self._state
        self.stat_window_merges += 1
        # stamp.updates is in ascending cell-index order, so these appends
        # keep _changes sorted.
        for update in stamp.updates:
            idx = update.row * size + update.col
            if update.value > value[idx]:
                value[idx] = update.value
                cstate[idx] = state
                origin[idx] = sender
                changes.append((state, idx))
                journal.add(idx)
                self._dirty += 1

    def dirty_cells(self) -> int:
        return self._dirty

    def clear_dirty(self) -> None:
        self._dirty = 0

    def snapshot(self) -> dict:
        size = self._size

        def rows(buf: array) -> List[List[int]]:
            return [list(buf[r * size : (r + 1) * size]) for r in range(size)]

        return {
            "value": rows(self._value),
            "cstate": rows(self._cstate),
            "origin": rows(self._origin),
            "sent_state": list(self._sent_state),
            "state": self._state,
        }

    def sync_image(self) -> UpdatesImage:
        """Return the persistence image, patched with journaled cells.

        Same contract as :meth:`MatrixClock.sync_image`: the channel stores
        the returned object as owned, the clock retains it and patches only
        the cells modified since the previous call.
        """
        image = self._image
        if image is None or self._journal_full:
            image = UpdatesImage(
                self._size,
                array("q", self._value),
                array("q", self._cstate),
                array("q", self._origin),
                array("q", self._sent_state),
                self._state,
            )
            self._image = image
            self._journal_full = False
        else:
            value = self._value
            cstate = self._cstate
            origin = self._origin
            for idx in self._journal:
                image.value[idx] = value[idx]
                image.cstate[idx] = cstate[idx]
                image.origin[idx] = origin[idx]
            sent = self._sent_state
            for dest in self._journal_sent:
                image.sent_state[dest] = sent[dest]
            image.state = self._state
        self._journal.clear()
        self._journal_sent.clear()
        return image

    def restore(self, snapshot: Union[UpdatesImage, dict]) -> None:
        if isinstance(snapshot, UpdatesImage):
            if snapshot.size != self._size:
                raise ClockError("snapshot shape does not match clock size")
            self._value = array("q", snapshot.value)
            self._cstate = array("q", snapshot.cstate)
            self._origin = array("q", snapshot.origin)
            self._sent_state = array("q", snapshot.sent_state)
            self._state = snapshot.state
        else:
            value = snapshot["value"]
            if len(value) != self._size or any(
                len(row) != self._size for row in value
            ):
                raise ClockError("snapshot shape does not match clock size")

            def flat(rows: List[List[int]]) -> array:
                out: List[int] = []
                for row in rows:
                    out.extend(row)
                return array("q", out)

            self._value = flat(value)
            self._cstate = flat(snapshot["cstate"])
            self._origin = flat(snapshot["origin"])
            self._sent_state = array("q", snapshot["sent_state"])
            self._state = snapshot["state"]
        cstate = self._cstate
        self._changes = sorted(
            (cstate[idx], idx)
            for idx in range(self._size * self._size)
            if cstate[idx] > 0
        )
        self._dirty = 0
        self._journal.clear()
        self._journal_sent.clear()
        self._journal_full = True
        self._image = None

    def __repr__(self) -> str:
        return (
            f"UpdatesClock(size={self._size}, owner={self._owner}, "
            f"state={self._state})"
        )
