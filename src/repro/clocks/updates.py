"""The **Updates** optimized matrix-clock algorithm (Appendix A).

Instead of shipping the full s×s matrix on every message, each server keeps,
per matrix cell, the local *modification state* (a per-server counter of
clock modifications) and, per destination, the state value at the previous
send to that destination. A stamp then carries only the cells modified since
the previous send to the same destination — minus the cells whose current
value was learned *from* that destination, which it necessarily already
knows (the ``Mat[k,l].node ≠ j`` filter of Appendix A).

Wire format aside, delivery semantics are identical to the classic
full-matrix algorithm: the Raynal–Schiper–Toueg test decides deliverability
and delivery max-merges the shipped cells. Two facts make the test sound on
deltas:

- the cell ``(sender, me)`` is always in the delta (it is bumped by the very
  send being stamped), so the FIFO condition is directly checkable;
- any cell *absent* from the delta was already shipped to us by an earlier
  message from the same sender (or learned from us); the FIFO condition
  guarantees those earlier messages were delivered first, so our local
  matrix already dominates the absent cells and the ``W[k][me] <= M[k][me]``
  comparisons only need to run over delta cells.

The paper notes (§3) that even with this optimization the message size is
still O(s²) *in the worst case* — e.g. a server that was silent for a long
time ships almost everything it learned meanwhile — which is why domains are
needed on top of it; §4.1 combines both.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.clocks.base import CausalClock, Stamp
from repro.errors import ClockError


@dataclass(frozen=True)
class CellUpdate:
    """One shipped matrix cell: ``Mat[row][col] = value`` at the sender."""

    row: int
    col: int
    value: int


class UpdateStamp(Stamp):
    """A delta stamp: only the cells modified since the last send to
    the same destination."""

    __slots__ = ("_sender", "_dest", "_updates", "_index")

    def __init__(self, sender: int, dest: int, updates: Tuple[CellUpdate, ...]):
        self._sender = sender
        self._dest = dest
        self._updates = updates
        self._index: Dict[Tuple[int, int], int] = {
            (u.row, u.col): u.value for u in updates
        }

    @property
    def sender(self) -> int:
        return self._sender

    @property
    def dest(self) -> int:
        """Domain-local index of the destination server."""
        return self._dest

    @property
    def updates(self) -> Tuple[CellUpdate, ...]:
        return self._updates

    @property
    def wire_cells(self) -> int:
        """Cells actually serialized — the quantity the optimization shrinks."""
        return len(self._updates)

    def entry(self, row: int, col: int):
        """Value shipped for cell ``(row, col)``, or ``None`` if not shipped."""
        return self._index.get((row, col))

    def __repr__(self) -> str:
        return (
            f"UpdateStamp(sender={self._sender}, dest={self._dest}, "
            f"cells={len(self._updates)})"
        )


class UpdatesClock(CausalClock):
    """Matrix clock with Appendix-A delta propagation.

    State per Appendix A:

    - ``State`` — the local modification counter (``self._state``);
    - ``Mat[k][l] = (value, state, node)`` — cell value, the local ``State``
      at its last modification, and the peer the value was learned from
      (``owner`` itself for cells it bumped);
    - ``Node[j].state`` — the local ``State`` at the previous send to ``j``
      (``self._sent_state``), the per-destination high-water mark.
    """

    __slots__ = (
        "_size",
        "_owner",
        "_value",
        "_cstate",
        "_origin",
        "_sent_state",
        "_state",
        "_dirty",
    )

    def __init__(self, size: int, owner: int):
        if size <= 0:
            raise ClockError(f"matrix clock size must be positive, got {size}")
        if not 0 <= owner < size:
            raise ClockError(f"owner {owner} out of range for size {size}")
        self._size = size
        self._owner = owner
        self._value: List[List[int]] = [[0] * size for _ in range(size)]
        self._cstate: List[List[int]] = [[0] * size for _ in range(size)]
        self._origin: List[List[int]] = [[owner] * size for _ in range(size)]
        self._sent_state: List[int] = [0] * size
        self._state = 0
        self._dirty = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def owner(self) -> int:
        return self._owner

    def cell(self, row: int, col: int) -> int:
        return self._value[row][col]

    def _check_peer(self, index: int, what: str) -> None:
        if not 0 <= index < self._size:
            raise ClockError(
                f"{what} index {index} out of range for domain of size {self._size}"
            )

    def prepare_send(self, dest: int) -> UpdateStamp:
        """Record a send to ``dest`` and build the delta stamp.

        Appendix A, "Sending from Si to Sj": bump ``Mat[i][j]``, then ship
        every cell with ``state > Node[j].state`` whose value was not
        learned from ``j``, and advance ``Node[j].state``.
        """
        self._check_peer(dest, "destination")
        if dest == self._owner:
            raise ClockError("a server does not stamp messages to itself")
        me = self._owner
        self._state += 1
        self._value[me][dest] += 1
        self._cstate[me][dest] = self._state
        self._origin[me][dest] = me
        self._dirty += 1

        high_water = self._sent_state[dest]
        updates = tuple(
            CellUpdate(k, l, self._value[k][l])
            for k in range(self._size)
            for l in range(self._size)
            if self._cstate[k][l] > high_water and self._origin[k][l] != dest
        )
        self._sent_state[dest] = self._state
        return UpdateStamp(me, dest, updates)

    def can_deliver(self, stamp: Stamp) -> bool:
        """RST test evaluated on the delta (see module docstring for why
        delta cells suffice)."""
        if not isinstance(stamp, UpdateStamp):
            raise ClockError(f"expected UpdateStamp, got {type(stamp).__name__}")
        me = self._owner
        sender = stamp.sender
        self._check_peer(sender, "sender")
        shipped = stamp.entry(sender, me)
        if shipped is None:
            raise ClockError(
                f"malformed delta stamp from {sender}: missing its own "
                f"({sender}, {me}) send-count cell"
            )
        if shipped != self._value[sender][me] + 1:
            return False
        return all(
            update.value <= self._value[update.row][me]
            for update in stamp.updates
            if update.col == me and update.row != sender
        )

    def is_duplicate(self, stamp: Stamp) -> bool:
        if not isinstance(stamp, UpdateStamp):
            raise ClockError(f"expected UpdateStamp, got {type(stamp).__name__}")
        self._check_peer(stamp.sender, "sender")
        shipped = stamp.entry(stamp.sender, self._owner)
        if shipped is None:
            raise ClockError(
                f"malformed delta stamp from {stamp.sender}: missing its own "
                f"send-count cell"
            )
        return shipped <= self._value[stamp.sender][self._owner]

    def deliver(self, stamp: Stamp) -> None:
        """Apply a deliverable delta: max-merge every shipped cell.

        Appendix A, "Receiving on Si from Sj": cells that grow are
        re-stamped with the receiver's own ``State`` (so they propagate
        onward) and tagged as learned from the sender (so they are not
        echoed straight back).
        """
        if not self.can_deliver(stamp):
            raise ClockError(
                f"stamp {stamp} not deliverable at server {self._owner}; "
                "call can_deliver first and hold the message back"
            )
        assert isinstance(stamp, UpdateStamp)
        self._state += 1
        for update in stamp.updates:
            if update.value > self._value[update.row][update.col]:
                self._value[update.row][update.col] = update.value
                self._cstate[update.row][update.col] = self._state
                self._origin[update.row][update.col] = stamp.sender
                self._dirty += 1

    def dirty_cells(self) -> int:
        return self._dirty

    def clear_dirty(self) -> None:
        self._dirty = 0

    def snapshot(self) -> dict:
        return {
            "value": copy.deepcopy(self._value),
            "cstate": copy.deepcopy(self._cstate),
            "origin": copy.deepcopy(self._origin),
            "sent_state": list(self._sent_state),
            "state": self._state,
        }

    def restore(self, snapshot: dict) -> None:
        value = snapshot["value"]
        if len(value) != self._size or any(len(row) != self._size for row in value):
            raise ClockError("snapshot shape does not match clock size")
        self._value = copy.deepcopy(value)
        self._cstate = copy.deepcopy(snapshot["cstate"])
        self._origin = copy.deepcopy(snapshot["origin"])
        self._sent_state = list(snapshot["sent_state"])
        self._state = snapshot["state"]
        self._dirty = 0

    def __repr__(self) -> str:
        return (
            f"UpdatesClock(size={self._size}, owner={self._owner}, "
            f"state={self._state})"
        )
