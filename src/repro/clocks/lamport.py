"""Scalar Lamport clocks [Lamport 1978].

The paper cites Lamport's logical time (§1, [8]) as the original ordering
mechanism that vector and matrix clocks refine. We keep a full implementation
because (a) the trace tooling uses it to derive consistent total orders for
reporting, and (b) it is the natural baseline when measuring what the richer
clocks buy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ClockError


@dataclass(frozen=True)
class LamportStamp:
    """Timestamp of a single event: ``(time, process)``.

    The process identifier breaks ties, giving the classic total order that
    extends causal precedence.
    """

    time: int
    process: int

    def __lt__(self, other: "LamportStamp") -> bool:
        if not isinstance(other, LamportStamp):
            return NotImplemented
        return (self.time, self.process) < (other.time, other.process)

    def __le__(self, other: "LamportStamp") -> bool:
        if not isinstance(other, LamportStamp):
            return NotImplemented
        return (self.time, self.process) <= (other.time, other.process)


class LamportClock:
    """A scalar logical clock owned by one process.

    Usage follows Lamport's three rules:

    - :meth:`tick` before every local event;
    - :meth:`stamp_send` when sending (tick + read);
    - :meth:`observe` with the received timestamp when receiving.
    """

    __slots__ = ("_owner", "_time")

    def __init__(self, owner: int):
        if owner < 0:
            raise ClockError(f"process index must be >= 0, got {owner}")
        self._owner = owner
        self._time = 0

    @property
    def owner(self) -> int:
        """Index of the process owning this clock."""
        return self._owner

    @property
    def time(self) -> int:
        """Current scalar time (monotonically non-decreasing)."""
        return self._time

    def tick(self) -> LamportStamp:
        """Advance the clock for a local event and return its stamp."""
        self._time += 1
        return LamportStamp(self._time, self._owner)

    def stamp_send(self) -> LamportStamp:
        """Advance the clock for a send event and return the stamp to attach."""
        return self.tick()

    def observe(self, received: LamportStamp) -> LamportStamp:
        """Merge a received timestamp: ``t := max(t, received) + 1``.

        Returns the stamp of the receive event itself.
        """
        if received.time < 0:
            raise ClockError(f"negative timestamp received: {received}")
        self._time = max(self._time, received.time) + 1
        return LamportStamp(self._time, self._owner)

    def __repr__(self) -> str:
        return f"LamportClock(owner={self._owner}, time={self._time})"
