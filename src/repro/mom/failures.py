"""Failure injection: scheduled crashes, recoveries and partitions.

The AAA platform is fault-tolerant — "a solution to transient nodes or
network failures" (§3) — so the reproduction must demonstrate that causal
delivery survives them. The injector schedules fail-stop crashes with
later recovery and temporary network partitions on the shared simulator;
the causality checkers then run on the resulting traces exactly as in the
failure-free experiments.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.mom.bus import MessageBus


class FailureInjector:
    """Schedules failures against a bus before (or while) it runs."""

    def __init__(self, bus: MessageBus):
        self._bus = bus
        self.planned: List[Tuple[float, str]] = []

    def crash_at(self, time: float, server_id: int, down_for: float) -> None:
        """Crash ``server_id`` at ``time`` and recover it ``down_for`` ms
        later. The transport keeps retransmitting meanwhile, so the
        outage must be shorter than the transport's give-up horizon."""
        if down_for <= 0:
            raise ConfigurationError(f"down_for must be > 0, got {down_for}")
        server = self._bus.server(server_id)
        self._bus.sim.schedule_at(time, self._crash, server_id)
        self._bus.sim.schedule_at(time + down_for, self._recover, server_id)
        self.planned.append((time, f"crash S{server_id} for {down_for}ms"))

    def partition_at(
        self, time: float, first: int, second: int, duration: float
    ) -> None:
        """Silently drop traffic between two servers for ``duration`` ms."""
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        self._bus.sim.schedule_at(
            time, self._bus.network.partition, first, second
        )
        self._bus.sim.schedule_at(
            time + duration, self._bus.network.heal, first, second
        )
        self.planned.append(
            (time, f"partition S{first}|S{second} for {duration}ms")
        )

    def _crash(self, server_id: int) -> None:
        server = self._bus.server(server_id)
        if not server.is_crashed:
            server.crash()

    def _recover(self, server_id: int) -> None:
        server = self._bus.server(server_id)
        if server.is_crashed:
            server.recover()

    def __repr__(self) -> str:
        return f"FailureInjector(planned={len(self.planned)})"
