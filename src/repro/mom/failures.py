"""Failure injection: scheduled crashes, recoveries and partitions.

The AAA platform is fault-tolerant — "a solution to transient nodes or
network failures" (§3) — so the reproduction must demonstrate that causal
delivery survives them. The injector delegates to the bus-level
``schedule_crash`` / ``schedule_partition`` primitives (which both the
sequential :class:`~repro.mom.bus.MessageBus` and the sharded
:class:`~repro.mom.parallel.ShardedBus` implement), so a failure script
runs identically in either execution mode; the causality checkers then
run on the resulting traces exactly as in the failure-free experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple, Union

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mom.bus import MessageBus
    from repro.mom.parallel import ShardedBus

    AnyBus = Union[MessageBus, ShardedBus]


class FailureInjector:
    """Schedules failures against a bus before (or while) it runs."""

    def __init__(self, bus: "AnyBus"):
        self._bus = bus
        self.planned: List[Tuple[float, str]] = []

    def crash_at(self, time: float, server_id: int, down_for: float) -> None:
        """Crash ``server_id`` at ``time`` and recover it ``down_for`` ms
        later. The transport keeps retransmitting meanwhile, so the
        outage must be shorter than the transport's give-up horizon."""
        if down_for <= 0:
            raise ConfigurationError(f"down_for must be > 0, got {down_for}")
        self._bus.schedule_crash(time, server_id, down_for)
        self.planned.append((time, f"crash S{server_id} for {down_for}ms"))

    def partition_at(
        self, time: float, first: int, second: int, duration: float
    ) -> None:
        """Silently drop traffic between two servers for ``duration`` ms."""
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        self._bus.schedule_partition(time, first, second, duration)
        self.planned.append(
            (time, f"partition S{first}|S{second} for {duration}ms")
        )

    def __repr__(self) -> str:
        return f"FailureInjector(planned={len(self.planned)})"
