"""Declarative scenarios: describe a run as data, execute it, audit it.

A scenario is a JSON-friendly dict (or file) describing a complete
experiment — topology, agents, scripted sends, failures — so that bug
reports, regression cases and what-if studies can be exchanged as
artifacts instead of code:

.. code-block:: json

    {
      "topology": {"kind": "bus", "servers": 12, "domain_size": 4},
      "clock": "matrix",
      "seed": 7,
      "latency": {"kind": "uniform", "low": 0.5, "high": 15.0},
      "agents": [
        {"name": "echo", "server": 9, "kind": "echo"},
        {"name": "driver", "server": 0, "kind": "pingpong",
         "target": "echo", "rounds": 20}
      ],
      "sends": [
        {"at": 10.0, "from": "driver", "to": "echo", "payload": "extra"}
      ],
      "failures": [
        {"kind": "crash", "at": 100.0, "server": 9, "down_for": 200.0},
        {"kind": "partition", "at": 400.0, "between": [0, 9],
         "duration": 100.0}
      ]
    }

:func:`run_scenario` boots the bus, wires everything, runs to quiescence
and returns a :class:`ScenarioResult` with the causality verdicts, the
metrics snapshot and named-agent handles. Topology may also be an
explicit ``{"domains": {"A": [0,1,2], ...}}`` map. The CLI
``python -m repro.mom scenario.json`` prints the audit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Union

from repro.mom.workloads import BroadcastDriver, PingPongDriver
from repro.errors import ConfigurationError
from repro.mom.agent import Agent, EchoAgent, FunctionAgent
from repro.mom.config import BusConfig
from repro.mom.failures import FailureInjector
from repro.mom.parallel import AnyBus, make_bus
from repro.simulation.network import (
    ConstantLatency,
    ExponentialLatency,
    UniformLatency,
)
from repro.topology.builders import (
    bus,
    daisy,
    from_domain_map,
    single_domain,
    tree,
)


class _CollectorAgent(Agent):
    """The generic scripted agent: logs deliveries, optionally echoes."""

    def __init__(self, echo: bool = False):
        super().__init__()
        self.echo = echo
        self.log: List[Any] = []

    def react(self, ctx, sender, payload):
        self.log.append(payload)
        if self.echo:
            ctx.send(sender, payload)


@dataclass
class ScenarioResult:
    """Everything a scenario run produces."""

    bus: AnyBus
    agents: Dict[str, Agent]
    agent_ids: Dict[str, Any]
    causal_ok: bool
    violations: int
    metrics: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        status = "OK" if self.causal_ok else "VIOLATED"
        return (
            f"scenario: causal delivery {status} "
            f"({self.violations} violation(s)), "
            f"{int(self.metrics.get('bus.notifications', 0))} notifications, "
            f"t={self.bus.sim.now:.1f}ms"
        )


def _build_topology(spec: Dict[str, Any]):
    if "domains" in spec:
        return from_domain_map(spec["domains"])
    kind = spec.get("kind", "flat")
    servers = spec.get("servers")
    if not isinstance(servers, int):
        raise ConfigurationError("topology.servers must be an integer")
    size = spec.get("domain_size", 0)
    if kind == "flat":
        return single_domain(servers)
    if kind == "bus":
        return bus(servers, size)
    if kind == "daisy":
        return daisy(servers, size)
    if kind == "tree":
        return tree(servers, fanout=spec.get("fanout", 2), domain_size=size)
    raise ConfigurationError(f"unknown topology kind {kind!r}")


def _build_latency(spec: Optional[Dict[str, Any]]):
    if spec is None:
        return None
    kind = spec.get("kind", "constant")
    if kind == "constant":
        return ConstantLatency(spec.get("ms", 1.0))
    if kind == "uniform":
        return UniformLatency(spec["low"], spec["high"])
    if kind == "exponential":
        return ExponentialLatency(spec["mean"], spec.get("floor", 0.05))
    raise ConfigurationError(f"unknown latency kind {kind!r}")


def _build_agent(spec: Dict[str, Any]) -> Agent:
    kind = spec.get("kind", "collector")
    if kind == "echo":
        return EchoAgent()
    if kind == "collector":
        return _CollectorAgent(echo=False)
    if kind == "collector-echo":
        return _CollectorAgent(echo=True)
    if kind == "pingpong":
        return PingPongDriver(rounds=spec.get("rounds", 10))
    if kind == "broadcast":
        return BroadcastDriver(rounds=spec.get("rounds", 3))
    raise ConfigurationError(f"unknown agent kind {kind!r}")


def run_scenario(
    scenario: Union[Dict[str, Any], str, IO[str]],
    run: bool = True,
) -> ScenarioResult:
    """Execute a scenario description.

    Args:
        scenario: a dict, a path to a JSON file, or an open stream.
        run: set False to get the wired-but-unstarted bus back (for tests
            that want to add custom instrumentation first).
    """
    if isinstance(scenario, str):
        with open(scenario) as handle:
            scenario = json.load(handle)
    elif hasattr(scenario, "read"):
        scenario = json.load(scenario)
    if not isinstance(scenario, dict):
        raise ConfigurationError("scenario must be a JSON object")

    topology = _build_topology(scenario.get("topology", {}))
    config = BusConfig(
        topology=topology,
        clock_algorithm=scenario.get("clock", "matrix"),
        seed=scenario.get("seed", 0),
        latency=_build_latency(scenario.get("latency")),
        loss_rate=scenario.get("loss_rate", 0.0),
        validate=scenario.get("validate", True),
        parallel=scenario.get("parallel", "off"),
        workers=scenario.get("workers", 0),
    )
    mom = make_bus(config)

    agents: Dict[str, Agent] = {}
    agent_ids: Dict[str, Any] = {}
    specs = scenario.get("agents", [])
    for spec in specs:
        name = spec.get("name")
        if not name or name in agents:
            raise ConfigurationError(
                f"every agent needs a unique name (got {name!r})"
            )
        agent = _build_agent(spec)
        agents[name] = agent
        agent_ids[name] = mom.deploy(agent, spec["server"])
    # second pass: bind references (targets may be declared later)
    for spec in specs:
        agent = agents[spec["name"]]
        if isinstance(agent, PingPongDriver):
            target = spec.get("target")
            if target not in agent_ids:
                raise ConfigurationError(
                    f"pingpong agent {spec['name']!r} needs a valid target"
                )
            agent.bind(agent_ids[target])
        elif isinstance(agent, BroadcastDriver):
            targets = spec.get("targets")
            if not targets:
                raise ConfigurationError(
                    f"broadcast agent {spec['name']!r} needs targets"
                )
            agent.bind([agent_ids[t] for t in targets])

    for send in scenario.get("sends", []):
        sender = agent_ids[send["from"]]
        target = agent_ids[send["to"]]
        mom.schedule_send(
            float(send.get("at", 0.0)), sender, target, send.get("payload")
        )

    injector = FailureInjector(mom)
    for failure in scenario.get("failures", []):
        kind = failure.get("kind", "crash")
        if kind == "crash":
            injector.crash_at(
                failure["at"], failure["server"], failure["down_for"]
            )
        elif kind == "partition":
            first, second = failure["between"]
            injector.partition_at(
                failure["at"], first, second, failure["duration"]
            )
        else:
            raise ConfigurationError(f"unknown failure kind {kind!r}")

    if not run:
        return ScenarioResult(
            bus=mom, agents=agents, agent_ids=agent_ids,
            causal_ok=True, violations=0,
        )

    mom.start()
    mom.run_until_idle()
    report = mom.check_app_causality()
    return ScenarioResult(
        bus=mom,
        agents=agents,
        agent_ids=agent_ids,
        causal_ok=report.respects_causality,
        violations=len(report.violations),
        metrics=mom.metrics.snapshot(),
    )
