"""Bus configuration: one object per experiment.

Everything that varies between the paper's experiments is a field here:
the topology (flat vs bus vs daisy vs tree), the stamping algorithm
(full matrix vs Appendix-A Updates), the cost model, the network, the
seed. ``validate=False`` is the escape hatch the theorem tests use to boot
deliberately cyclic topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Type

from repro.clocks.base import CausalClock
from repro.clocks.matrix import MatrixClock
from repro.clocks.updates import UpdatesClock
from repro.errors import ConfigurationError
from repro.protocol import AdHocCore, CausalCore, core_names, get_core, has_core
from repro.simulation.costs import CostModel
from repro.simulation.network import ConstantLatency, LatencyModel
from repro.topology.domains import Topology

def _fifo_clock() -> Type[CausalClock]:
    # imported lazily: baselines depend on clocks, not the reverse
    from repro.baselines.local_fifo import FifoClock

    return FifoClock


# Legacy clock table, kept as a *mutable extension point*: a test (or an
# experiment script) can drop a bare CausalClock subclass in here and boot
# it without writing a CausalCore — `core` wraps it in an AdHocCore. The
# registered cores in repro.protocol.cores are the first-class path and
# win whenever the table entry matches the registered clock class.
_CLOCKS: "dict[str, Optional[Type[CausalClock]]]" = {
    "matrix": MatrixClock,
    "updates": UpdatesClock,
    # deliberately broken baseline (per-pair FIFO only, §2): boots, runs,
    # and loses global causal order — for demonstrations and negative tests
    "fifo": None,  # resolved lazily in clock_cls
}


def _algorithm_names() -> "list[str]":
    return sorted(set(_CLOCKS) | set(core_names()))


@dataclass
class BusConfig:
    """Static configuration of a :class:`~repro.mom.bus.MessageBus`."""

    topology: Topology
    """The domain decomposition (see :mod:`repro.topology.builders`)."""

    clock_algorithm: str = "matrix"
    """``"matrix"`` (full-matrix stamps, §3's classical algorithm) or
    ``"updates"`` (Appendix A delta stamps)."""

    cost_model: CostModel = field(default_factory=CostModel)
    """Simulated-time constants (see :mod:`repro.simulation.costs`)."""

    latency: Optional[LatencyModel] = None
    """One-way network latency model; defaults to the cost model's
    constant ``latency_ms``."""

    loss_rate: float = 0.0
    """Network packet loss probability (exercises the reliable transport)."""

    seed: int = 0
    """Master seed; every random stream derives from it."""

    record_app_trace: bool = True
    """Record agent-level sends/deliveries for the causality checker."""

    record_hop_trace: bool = False
    """Record per-hop (intra-domain) messages too — needed by the
    per-domain causality checks, sizeable for big runs."""

    record_delivered_log: bool = False
    """Keep each engine's committed-delivery prefix (the ordered nid list
    of every non-boot reaction commit). Off by default — it grows with
    run length. The replay identity oracle
    (:meth:`~repro.mom.bus.MessageBus.protocol_snapshot` vs.
    :class:`repro.obs.replay.Replayer`) turns it on to compare delivered
    prefixes too."""

    validate: bool = True
    """Run :func:`repro.topology.graph.validate_topology` at boot. The
    theorem tests set this to False to boot cyclic topologies on purpose."""

    retransmit_ms: float = 50.0
    """Transport retransmission timeout (base, doubles per attempt)."""

    channel_ack_timeout_ms: float = 500.0
    """Channel-level ACK timeout: an envelope still unacked this long after
    its send is retransmitted (with its original stamp). This is what
    bridges a *receiver* crash that wiped not-yet-committed envelopes: the
    transport already acked their arrival, so only the channel can notice
    the missing transaction ACK. Doubles per retry, capped at 8× base."""

    max_transport_attempts: int = 30
    """Transport give-up threshold."""

    accounting: bool = True
    """Always-on causality-cost accounting (:mod:`repro.metrics`). On by
    default — the hot-path cost is a preallocated-handle increment per
    event. ``False`` (or ``REPRO_METRICS=0`` in the environment) disables
    it entirely; hot paths then pay one ``is not None`` check per edge."""

    parallel: str = "off"
    """Sharded-parallel execution policy for :func:`repro.mom.parallel.make_bus`
    (docs/parallel.md): ``"off"`` runs the classic sequential kernel,
    ``"auto"`` shards the simulation across worker processes when the
    configuration is eligible (deterministic latency, no loss, multi-domain
    topology), falling back to sequential otherwise. The environment
    variable ``REPRO_PARALLEL`` (``0``/``off``, ``auto``, or a worker
    count) overrides this field either way. Results are bit-identical to
    sequential in both modes."""

    workers: int = 0
    """Worker-process count for parallel runs; ``0`` picks
    ``os.cpu_count()``. The shard plan never uses more workers than the
    topology has domains."""

    def __post_init__(self):
        if self.clock_algorithm not in _CLOCKS and not has_core(
            self.clock_algorithm
        ):
            raise ConfigurationError(
                f"unknown clock algorithm {self.clock_algorithm!r}; "
                f"choose one of {_algorithm_names()}"
            )
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.parallel not in ("off", "auto"):
            raise ConfigurationError(
                f"parallel must be 'off' or 'auto', got {self.parallel!r}"
            )
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {self.workers}"
            )

    @property
    def core(self) -> CausalCore:
        """The :class:`~repro.protocol.core.CausalCore` selected by
        :attr:`clock_algorithm`.

        Resolution order: a ``_CLOCKS`` entry that *differs* from the
        registered core's clock class is an explicit override and wins
        (wrapped in an :class:`~repro.protocol.core.AdHocCore`);
        otherwise the registered core is used directly.
        """
        name = self.clock_algorithm
        if name in _CLOCKS:
            cls = _CLOCKS[name]
            if cls is None:
                cls = _fifo_clock()
            if has_core(name) and get_core(name).clock_cls is cls:
                return get_core(name)
            return AdHocCore(name, cls)
        return get_core(name)

    @property
    def clock_cls(self) -> Type[CausalClock]:
        """The clock class selected by :attr:`clock_algorithm`."""
        return self.core.clock_cls

    def latency_model(self) -> LatencyModel:
        """The effective latency model."""
        return self.latency or ConstantLatency(self.cost_model.latency_ms)
