"""Wire units: application notifications and per-hop envelopes.

A :class:`Notification` is what agents exchange — the paper's
application-level message. The channel carries it across each domain hop
wrapped in an :class:`Envelope` holding the hop endpoints, the domain the
hop uses and the piggybacked matrix timestamp (§5: "The Channel [...]
piggybacks messages with a matrix timestamp corresponding to the domain to
which the message is sent"). A multi-hop notification is therefore exactly
a §4.2 *chain* of real messages realizing one virtual message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.clocks.base import Stamp
from repro.mom.identifiers import AgentId


@dataclass(frozen=True)
class Notification:
    """One application-level message between two agents.

    Attributes:
        nid: bus-wide unique notification id (assigned at send).
        sender: originating agent.
        target: destination agent.
        payload: opaque application data.
        sent_at: simulated time of the originating agent's send (for
            end-to-end latency metrics).
    """

    nid: int
    sender: AgentId
    target: AgentId
    payload: Any
    sent_at: float

    @property
    def dest_server(self) -> int:
        return self.target.server

    def __repr__(self) -> str:
        return f"Notification(#{self.nid} {self.sender!r}->{self.target!r})"


@dataclass(frozen=True)
class Envelope:
    """One hop of a notification: a real intra-domain message.

    Attributes:
        notification: the carried application message.
        src_server / dst_server: the hop's endpoints (global ids).
        domain_id: the domain whose matrix clock stamped this hop.
        stamp: the piggybacked causal timestamp.
        hop_seq: per-sender sequence number used by the channel-level
            transaction ACK (§5's ``Recv(ACK); Remove(evt)``).
    """

    notification: Notification
    src_server: int
    dst_server: int
    domain_id: str
    stamp: Stamp
    hop_seq: int

    @property
    def final_dest(self) -> int:
        """The notification's final destination server."""
        return self.notification.dest_server

    def hop_mid(self) -> tuple:
        """A unique id for this hop message, for hop-level traces."""
        return ("hop", self.src_server, self.hop_seq)

    def __repr__(self) -> str:
        return (
            f"Envelope({self.notification!r} hop "
            f"S{self.src_server}->S{self.dst_server} in {self.domain_id}, "
            f"seq={self.hop_seq})"
        )


@dataclass(frozen=True)
class ChannelAck:
    """Channel-level transaction acknowledgment: the receiver committed
    the envelope with this ``hop_seq``; the sender may Remove it from
    QueueOUT (§5's pseudocode, last three lines)."""

    hop_seq: int
