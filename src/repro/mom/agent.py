"""The agent programming model (§3).

"Agents are autonomous reactive objects executing concurrently, and
communicating through an event/reaction pattern. Agents are persistent and
their reaction is atomic."

Subclass :class:`Agent` and implement :meth:`Agent.react`; inside a
reaction, use the :class:`ReactionContext` to send notifications. Sends
are buffered and committed atomically with the reaction (crash before
commit = reaction never happened; the notification is redelivered on
recovery). Agent state that must survive crashes goes through
:meth:`Agent.snapshot` / :meth:`Agent.restore`.
"""

from __future__ import annotations

import abc
import copy
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import AgentError
from repro.mom.identifiers import AgentId


class ReactionContext:
    """Facilities available to an agent during one (atomic) reaction."""

    def __init__(self, agent_id: AgentId, now: float):
        self._agent_id = agent_id
        self._now = now
        self._outbox: List[Tuple[AgentId, Any]] = []
        self._timers: List[Tuple[float, AgentId, Any]] = []

    @property
    def my_id(self) -> AgentId:
        """The reacting agent's own identity."""
        return self._agent_id

    @property
    def now(self) -> float:
        """Simulated time at the start of the reaction, in ms."""
        return self._now

    def send(self, target: AgentId, payload: Any) -> None:
        """Send a notification to another agent (buffered; committed
        atomically with the reaction)."""
        if not isinstance(target, AgentId):
            raise AgentError(f"send target must be an AgentId, got {target!r}")
        self._outbox.append((target, payload))

    def send_after(self, delay_ms: float, target: AgentId, payload: Any) -> None:
        """Send a notification ``delay_ms`` after this reaction commits.

        Timers are **volatile**: a crash before the timer fires silently
        drops it (unlike buffered sends, which commit atomically with the
        reaction). Use them for workload pacing, heartbeats, timeouts —
        not for state the application cannot afford to lose.
        """
        if not isinstance(target, AgentId):
            raise AgentError(f"send target must be an AgentId, got {target!r}")
        if delay_ms < 0:
            raise AgentError(f"negative timer delay: {delay_ms}")
        self._timers.append((delay_ms, target, payload))

    @property
    def outbox(self) -> List[Tuple[AgentId, Any]]:
        """The buffered sends of this reaction (read by the engine)."""
        return list(self._outbox)

    @property
    def timers(self) -> List[Tuple[float, AgentId, Any]]:
        """The buffered delayed sends of this reaction (read by the engine)."""
        return list(self._timers)


class Agent(abc.ABC):
    """A persistent reactive object living on one agent server."""

    def __init__(self):
        self._agent_id: Optional[AgentId] = None

    @property
    def agent_id(self) -> AgentId:
        """The identity assigned at deployment."""
        if self._agent_id is None:
            raise AgentError("agent not deployed yet")
        return self._agent_id

    def _deployed(self, agent_id: AgentId) -> None:
        """Called by the engine exactly once, at deployment."""
        if self._agent_id is not None:
            raise AgentError(f"agent already deployed as {self._agent_id!r}")
        self._agent_id = agent_id

    @abc.abstractmethod
    def react(self, ctx: ReactionContext, sender: AgentId, payload: Any) -> None:
        """Handle one notification. Runs atomically; use ``ctx.send``."""

    def on_boot(self, ctx: ReactionContext) -> None:
        """Optional hook run once when the bus starts (e.g. to fire the
        first message of a workload). Same atomicity rules as a reaction."""

    def snapshot(self) -> Any:
        """Durable state; default captures the full ``__dict__`` minus the
        identity. Override for leaner or custom persistence."""
        state = {
            key: value
            for key, value in self.__dict__.items()
            if key != "_agent_id"
        }
        return copy.deepcopy(state)

    def restore(self, snapshot: Any) -> None:
        """Reload state saved by :meth:`snapshot` (crash recovery)."""
        for key, value in copy.deepcopy(snapshot).items():
            setattr(self, key, value)


class FunctionAgent(Agent):
    """Wrap a plain function as an agent — handy in tests and examples.

    The function receives ``(ctx, sender, payload)``. Note that closures
    are not persisted; use a proper :class:`Agent` subclass when state
    must survive crashes.
    """

    def __init__(self, fn: Callable[[ReactionContext, AgentId, Any], None]):
        super().__init__()
        self._fn = fn

    def react(self, ctx: ReactionContext, sender: AgentId, payload: Any) -> None:
        self._fn(ctx, sender, payload)

    def snapshot(self) -> Any:
        return None

    def restore(self, snapshot: Any) -> None:
        pass


class EchoAgent(Agent):
    """§6.1's measurement partner: "an agent on each agent server, which
    sends back received messages (ping-pong)". Counts what it echoed."""

    def __init__(self):
        super().__init__()
        self.echoed = 0

    def react(self, ctx: ReactionContext, sender: AgentId, payload: Any) -> None:
        self.echoed += 1
        ctx.send(sender, payload)
