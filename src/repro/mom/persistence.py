"""Simulated per-server durable storage.

Agents are persistent and reactions atomic (§3); the channel keeps "a
persistent image of the matrix on each server in order to recover
communication in case of failure". This store models that durability:
values survive :meth:`~repro.mom.server.AgentServer.crash`, while
everything *not* written here is lost.

Writes are synchronous snapshots (deep copies), so later in-memory
mutation cannot retroactively corrupt the "disk" — the property the
crash-recovery tests rely on. Time cost of persistence is charged by the
channel/engine through the :class:`~repro.simulation.costs.CostModel`;
the store itself only counts traffic.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional

from repro.errors import PersistenceError


class PersistentStore:
    """A key → snapshot map that survives server crashes."""

    def __init__(self, server_id: int):
        self._server_id = server_id
        self._data: Dict[str, Any] = {}
        self.writes = 0
        self.cells_written = 0

    @property
    def server_id(self) -> int:
        return self._server_id

    def save(self, key: str, value: Any, cells: int = 0, owned: bool = False) -> None:
        """Durably store ``value``.

        Args:
            key: storage slot name.
            value: snapshot to persist. Deep-copied unless ``owned``.
            cells: logical size of the write, in matrix cells, for the
                disk-traffic accounting of §3's "high disk I/O activity".
            owned: the caller hands over a private or immutable snapshot
                (e.g. a fresh ``clock.snapshot()`` or a dict of frozen
                envelopes); the store keeps it without copying. Only pass
                True when no live reference can mutate the value later.
        """
        if not key:
            raise PersistenceError("empty persistence key")
        self._data[key] = value if owned else copy.deepcopy(value)
        self.writes += 1
        self.cells_written += cells

    def put_entry(
        self, key: str, entry: Any, value: Any, cells: int = 0
    ) -> None:
        """Durably upsert one entry of the dict stored at ``key``.

        Equivalent to re-saving the whole table with ``entry`` added —
        same one-write, ``cells``-cell accounting — without copying the
        table. ``value`` is kept by reference, so callers must hand over
        immutable or private objects (the unacked table stores frozen
        envelopes). The table is created on first use.
        """
        if not key:
            raise PersistenceError("empty persistence key")
        table = self._data.get(key)
        if table is None:
            table = {}
            self._data[key] = table
        table[entry] = value
        self.writes += 1
        self.cells_written += cells

    def delete_entry(self, key: str, entry: Any, cells: int = 0) -> None:
        """Durably remove one entry of the dict stored at ``key``.

        Equivalent to re-saving the whole table with ``entry`` removed;
        counts one write. Missing tables and missing entries are fine —
        the write still happened (the seed implementation re-saved the
        table unconditionally too).
        """
        if not key:
            raise PersistenceError("empty persistence key")
        table = self._data.get(key)
        if table is not None:
            table.pop(entry, None)
        self.writes += 1
        self.cells_written += cells

    def load(self, key: str, default: Any = None) -> Any:
        """Read back a snapshot (deep copy; the store keeps its own)."""
        if key not in self._data:
            return default
        return copy.deepcopy(self._data[key])

    def has(self, key: str) -> bool:
        return key in self._data

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def keys(self):
        return sorted(self._data)

    def __repr__(self) -> str:
        return (
            f"PersistentStore(server={self._server_id}, "
            f"keys={len(self._data)}, writes={self.writes})"
        )
