"""The Channel: reliable transmission, routing, and causal order (§5).

Per the paper's pseudocode, the sender side stamps each outgoing message
with the matrix clock of the domain the next hop lives in, and keeps it in
QueueOUT until the receiver's transaction ACK arrives; the receiver side
checks the stamp against its own domain clock, holds back messages that
arrived too early, and — once deliverable — commits atomically: merge the
clock, persist, hand the message to the local Engine (QueueIN) or back to
QueueOUT for the next hop, then ACK.

Every protocol decision on both paths — stamping, the deliverability and
duplicate tests, the merge, and the hold-back indexing — is delegated to
the server's :class:`~repro.protocol.core.CausalCore`, so the channel
itself is protocol-agnostic: plugging in a different causal-delivery
algorithm is a registration (:mod:`repro.protocol.registry`), not a
channel change. The contract the channel relies on is verified statically
by rules R018–R023 (:mod:`repro.analysis.contract`) and the small-scope
model checker (:mod:`repro.analysis.model`).

Crash-consistency invariants:

- a hop is stamped, recorded in the unacked table and persisted in one
  atomic step, so a sender crash never loses or double-counts a send — on
  recovery every unacked envelope is retransmitted *with its original
  stamp* and the receiver's matrix clock suppresses duplicates;
- the receiver's clock merge, persistence, forwarding and ACK all happen
  at the commit instant, so a receiver crash before commit simply means
  "never received" (the sender retransmits), and after commit the
  retransmission is recognized as a duplicate and re-ACKed.

Hold-back wake-up. The clock contract (:mod:`repro.clocks.base`) makes a
stamp deliverable only if it is the FIFO-next message from its sender:
``W[s][me] == M[s][me] + 1``. So at any instant at most *one* held-back
sequence number per sender can possibly pass ``can_deliver``, and the
hold-back store indexes envelopes by ``(sender, shipped seq)``. A commit
then probes exactly one bucket per sender with held messages — the one at
``M[s][me] + 1`` — instead of rescanning the whole queue; candidates that
fail only the transitive part of the RST test stay indexed and are probed
again on the next commit in the domain (delivery only ever advances the
receiver column, so nothing else can become deliverable in between).
Release order is arrival order, same as the seed's queue scan.

Persistence is incremental on the wall clock, never on the simulated one:
clock images are journal-patched (:meth:`CausalClock.sync_image`) and the
unacked table is updated entry-wise (``put_entry``/``delete_entry``), but
every persist still counts the same writes and the same cells as the
full-snapshot implementation it replaced, so disk-cost results are
bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.errors import RoutingError, TopologyError
from repro.mom.accounting import CELL_BYTES
from repro.mom.domain_item import DomainItem
from repro.mom.payloads import ChannelAck, Envelope, Notification
from repro.protocol.core import CausalCore
from repro.simulation.metrics import LazyCounter

if TYPE_CHECKING:
    from repro.mom.server import AgentServer
    from repro.obs.tracer import Tracer


class _HoldbackStore:
    """Per-domain held-back envelopes, indexed for O(1) wake-up probes.

    ``by_sender[sender][seq]`` holds the envelopes from domain-local
    ``sender`` whose shipped sequence number towards us is ``seq``, each
    tagged with a monotonically increasing arrival number (the seed's
    queue position, used to release in the same order). ``mids`` mirrors
    the hop message-ids for O(1) duplicate detection on retransmissions.
    The bucket key is the core's :meth:`~repro.protocol.core.CausalCore.
    holdback_key`, so protocol plug-ins with a different FIFO structure
    keep the O(1) probe.
    """

    __slots__ = ("core", "by_sender", "mids", "count")

    def __init__(self, core: CausalCore) -> None:
        self.core = core
        self.by_sender: Dict[int, Dict[int, List[Tuple[int, Envelope]]]] = {}
        self.mids: Set[Tuple] = set()
        self.count = 0

    def _key(self, envelope: Envelope) -> Tuple[int, int]:
        return self.core.holdback_key(envelope.stamp)

    def add(self, arrival: int, envelope: Envelope) -> None:
        sender, seq = self._key(envelope)
        buckets = self.by_sender.get(sender)
        if buckets is None:
            buckets = {}
            self.by_sender[sender] = buckets
        buckets.setdefault(seq, []).append((arrival, envelope))
        self.mids.add(envelope.hop_mid())
        self.count += 1

    def remove(self, arrival: int, envelope: Envelope) -> None:
        sender, seq = self._key(envelope)
        buckets = self.by_sender[sender]
        bucket = buckets[seq]
        bucket.remove((arrival, envelope))
        if not bucket:
            del buckets[seq]
            if not buckets:
                del self.by_sender[sender]
        self.mids.discard(envelope.hop_mid())
        self.count -= 1

    def clear(self) -> None:
        self.by_sender.clear()
        self.mids.clear()
        self.count = 0


class Channel:
    """One server's channel. Created by :class:`~repro.mom.server.AgentServer`."""

    def __init__(self, server: AgentServer) -> None:
        self._server = server
        self._core: CausalCore = server.core
        self._items: Dict[str, DomainItem] = {}
        for domain in server.domains:
            item = DomainItem(domain, server.server_id, self._core)
            if server.bus.acct is not None:
                item.acct = server.bus.acct.domain(
                    server.server_id, domain.domain_id
                )
            self._items[domain.domain_id] = item
        self._hop_seq = 0
        self._unacked: Dict[int, Envelope] = {}
        self._holdback: Dict[str, _HoldbackStore] = {
            d: _HoldbackStore(self._core) for d in self._items
        }
        self._arrivals = 0
        self._pending_commits: Set[Tuple] = set()
        # Hot counters, resolved once instead of a registry lookup per hop.
        # LazyCounter keeps the registration itself lazy so counters that
        # never fire don't appear in snapshots (same key set as before).
        metrics = server.metrics
        lazy = LazyCounter
        self._ctr_hops_sent = lazy(metrics, "channel.hops_sent")
        self._ctr_cells_stamped = lazy(metrics, "channel.cells_stamped")
        self._ctr_hops_resent = lazy(metrics, "channel.hops_resent")
        self._ctr_hops_delivered = lazy(metrics, "channel.hops_delivered")
        self._ctr_duplicates = lazy(metrics, "channel.duplicates")
        self._ctr_heldback = lazy(metrics, "channel.heldback")
        self._ctr_forwarded = lazy(metrics, "channel.forwarded")
        # observability hook (repro.obs); None = tracing off
        self._tracer: Optional["Tracer"] = None
        # cost accounting (repro.metrics); None = accounting off.
        # _acct_held_since remembers each held-back envelope's arrival
        # instant so release can record the dwell histogram.
        self._sacct = server.acct
        self._acct_held_since: Dict[Tuple, float] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def domain_items(self) -> Dict[str, DomainItem]:
        return dict(self._items)

    def item(self, domain_id: str) -> DomainItem:
        try:
            return self._items[domain_id]
        except KeyError:
            raise TopologyError(
                f"server {self._server.server_id} is not in domain "
                f"{domain_id!r} but received a message stamped for it"
            ) from None

    @property
    def unacked_count(self) -> int:
        return len(self._unacked)

    @property
    def heldback_count(self) -> int:
        return sum(store.count for store in self._holdback.values())

    def holdback_depth(self, domain_id: str) -> int:
        """Envelopes currently held back in one domain's store."""
        return self._holdback[domain_id].count

    @property
    def hop_seq(self) -> int:
        """The last hop sequence number stamped by this channel."""
        return self._hop_seq

    def unacked_hop_seqs(self) -> List[int]:
        """Hop sequence numbers still awaiting a transaction ACK
        (QueueOUT), ascending."""
        return sorted(self._unacked)

    def heldback_mids(self) -> Dict[str, List[List[int]]]:
        """Held-back hop ids per domain, each as ``[src, hop_seq]``,
        sorted — the JSON-ready view :meth:`MessageBus.protocol_snapshot`
        and the replay identity oracle compare."""
        return {
            domain_id: sorted(
                [mid[1], mid[2]] for mid in store.mids
            )
            for domain_id, store in sorted(self._holdback.items())
        }

    def pending_mids(self) -> List[List[int]]:
        """Hop ids with a receive commit charged but not yet fired, each
        as ``[src, hop_seq]``, sorted."""
        return sorted([mid[1], mid[2]] for mid in self._pending_commits)

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------

    def post(self, notification: Notification) -> None:
        """Queue a notification for its next hop towards the destination.

        Stamping, queueing in the unacked table and persistence happen
        atomically now; the send cost is then charged on the processor and
        the envelope leaves for the network when it elapses.
        """
        dest = notification.dest_server
        me = self._server.server_id
        if dest == me:
            raise RoutingError(
                "channel.post() called for a local destination; "
                "local delivery is the engine's job"
            )
        next_hop = self._server.routing.next_hop(dest)
        domain = self._server.topology.shared_domain(me, next_hop)
        item = self._items[domain.domain_id]
        stamp = self._core.stamp(item.clock, item.local_id(next_hop))

        self._hop_seq += 1
        envelope = Envelope(
            notification=notification,
            src_server=me,
            dst_server=next_hop,
            domain_id=domain.domain_id,
            stamp=stamp,
            hop_seq=self._hop_seq,
        )
        self._unacked[envelope.hop_seq] = envelope
        self._persist_send_state(item, envelope)
        # The hop's causal send instant is *now* — the stamping transaction —
        # not the later wire transmit; recording here keeps the hop trace's
        # local orders aligned with the matrix-clock protocol's view.
        self._server.bus.record_hop_send(envelope)
        if self._tracer is not None:
            self._tracer.channel_stamp(me, envelope)

        cost = self._server.config.cost_model.send_cost(
            stamp, item.clock.size, item.clock.dirty_cells()
        )
        item.clock.clear_dirty()
        self._ctr_hops_sent.add()
        self._ctr_cells_stamped.add(stamp.wire_cells)
        if item.acct is not None:
            item.acct.stamp_bytes.inc(stamp.wire_cells * CELL_BYTES)
        epoch = self._server.epoch
        self._server.processor.submit(cost, self._transmit, envelope, epoch, 1)

    def _transmit(self, envelope: Envelope, epoch: int, attempt: int) -> None:
        if epoch != self._server.epoch:
            return
        if self._tracer is not None:
            self._tracer.channel_transmit(
                self._server.server_id, envelope, attempt
            )
        self._server.transport.send(
            envelope.dst_server, envelope, cells=envelope.stamp.wire_cells
        )
        # Arm the transaction-ACK timer from the *wire* send instant —
        # sender-side transmit queueing must not count against the receiver.
        base = self._server.config.channel_ack_timeout_ms
        timeout = min(base * (2 ** (attempt - 1)), base * 8)
        self._server.sim.schedule_local(
            self._server.server_id,
            timeout, self._check_ack, envelope.hop_seq, attempt, epoch,
        )

    def _check_ack(self, hop_seq: int, attempt: int, epoch: int) -> None:
        """§5's persistent QueueOUT, made live: if the transaction ACK has
        not arrived, re-send the envelope with its *original* stamp — the
        receiver's matrix clock and hold-back dedup make this idempotent.

        This is what bridges receiver crashes: the transport acked mere
        arrival, so envelopes wiped from the receiver's volatile hold-back
        or pending-commit state would otherwise be lost forever.
        """
        if epoch != self._server.epoch:
            return
        envelope = self._unacked.get(hop_seq)
        if envelope is None:
            return  # acked; done
        item = self._items[envelope.domain_id]
        cost = self._server.config.cost_model.send_cost(
            envelope.stamp, item.clock.size, 0
        )
        self._ctr_hops_resent.add()
        if self._sacct is not None:
            self._sacct.ack_retries.inc()
        self._server.processor.submit(
            cost, self._transmit, envelope, epoch, attempt + 1
        )

    def resend_unacked(self) -> None:
        """Crash recovery: retransmit every persisted-but-unacked envelope
        with its original stamp (duplicates die at the receiver's clock)."""
        for hop_seq in sorted(self._unacked):
            envelope = self._unacked[hop_seq]
            item = self._items[envelope.domain_id]
            cost = self._server.config.cost_model.send_cost(
                envelope.stamp, item.clock.size, 0
            )
            self._ctr_hops_resent.add()
            epoch = self._server.epoch
            self._server.processor.submit(
                cost, self._transmit, envelope, epoch, 1
            )

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def on_packet(self, src: int, packet: Any) -> None:
        """Transport upcall: an envelope or a channel-level ACK arrived."""
        if isinstance(packet, ChannelAck):
            self._on_ack(packet)
            return
        assert isinstance(packet, Envelope), packet
        self._on_envelope(packet)

    def _on_ack(self, ack: ChannelAck) -> None:
        removed = self._unacked.pop(ack.hop_seq, None)
        if removed is None:
            return  # duplicate ACK after a retransmission
        if self._tracer is not None:
            self._tracer.channel_ack(self._server.server_id, ack.hop_seq)
        self._server.store.delete_entry("channel.unacked", ack.hop_seq)
        epoch = self._server.epoch
        self._server.processor.submit(
            self._server.config.cost_model.ack_ms, lambda _e: None, epoch
        )

    def _on_envelope(self, envelope: Envelope) -> None:
        item = self.item(envelope.domain_id)
        key = envelope.hop_mid()
        if key in self._pending_commits:
            return  # commit already charged; the retransmission is stale
        if self._core.duplicate(item.clock, envelope.stamp):
            self._ctr_duplicates.add()
            self._ack(envelope)
            return
        if self._tracer is not None:
            # the wire leg ends here; the critical-path profiler splits
            # transit from receive processing on this edge
            self._tracer.channel_arrive(self._server.server_id, envelope)
        if self._core.deliverable(item.clock, envelope.stamp):
            self._start_commit(envelope, item)
        else:
            store = self._holdback[envelope.domain_id]
            if key in store.mids:
                self._ctr_duplicates.add()
                return  # a retransmitted copy is already waiting
            self._arrivals += 1
            store.add(self._arrivals, envelope)
            self._ctr_heldback.add()
            if item.acct is not None:
                item.acct.holdback_enters.inc()
                item.acct.holdback_depth.inc()
                self._acct_held_since[key] = self._server.sim.now
            if self._tracer is not None:
                self._tracer.channel_holdback_enter(
                    self._server.server_id, envelope
                )

    def _start_commit(self, envelope: Envelope, item: DomainItem) -> None:
        """Charge the receive cost; the commit fires when it elapses."""
        self._pending_commits.add(envelope.hop_mid())
        cost = self._server.config.cost_model.recv_cost(
            envelope.stamp, item.clock.size, envelope.stamp.wire_cells
        )
        epoch = self._server.epoch
        self._server.processor.submit(cost, self._commit, envelope, epoch)

    def _commit(self, envelope: Envelope, epoch: int) -> None:
        """The receiver transaction of §5's pseudocode, at one instant:
        merge the domain clock, persist, route the message onward (QueueIN
        or QueueOUT), ACK, and release any unblocked held-back messages."""
        if epoch != self._server.epoch:
            return
        self._pending_commits.discard(envelope.hop_mid())
        item = self._items[envelope.domain_id]
        self._core.merge(item.clock, envelope.stamp)
        if item.acct is not None:
            item.acct.merge_cells.inc(item.clock.dirty_cells())
            item.acct.commits.inc()
        if self._tracer is not None:
            # dirty_cells() right after the merge = cells this commit moved
            self._tracer.channel_commit(
                self._server.server_id, envelope, item.clock.dirty_cells()
            )
        item.clock.clear_dirty()
        self._persist_clock(item)
        self._ctr_hops_delivered.add()
        self._server.bus.record_hop_receive(envelope)
        self._ack(envelope)

        if envelope.final_dest == self._server.server_id:
            self._server.engine.enqueue(envelope.notification)
        else:
            self._ctr_forwarded.add()
            if self._sacct is not None:
                self._sacct.forwards.inc()
            if self._tracer is not None:
                self._tracer.channel_route_forward(
                    self._server.server_id, envelope
                )
            self.post(envelope.notification)

        self._release_holdback(envelope.domain_id)

    def _ack(self, envelope: Envelope) -> None:
        self._server.transport.send(
            envelope.src_server, ChannelAck(envelope.hop_seq)
        )

    def _release_holdback(self, domain_id: str) -> None:
        """Start commits for every held-back envelope the fresh clock state
        now admits. One pass suffices per release: each commit that later
        fires runs its own release.

        Only the bucket at the FIFO-next sequence number per sender can
        contain deliverable envelopes (see module docstring), so the probe
        cost is O(senders with held messages), not O(held messages)."""
        store = self._holdback[domain_id]
        by_sender = store.by_sender
        if not by_sender:
            return
        item = self._items[domain_id]
        clock = item.clock
        core = self._core
        ready: List[Tuple[int, Envelope]] = []
        for sender, buckets in by_sender.items():
            bucket = buckets.get(core.next_expected(clock, sender))
            if not bucket:
                continue
            for arrival, env in bucket:
                if env.hop_mid() in self._pending_commits:
                    continue
                if core.deliverable(clock, env.stamp):
                    ready.append((arrival, env))
        if not ready:
            return
        ready.sort()  # release in arrival order, like the seed's queue scan
        acct = item.acct
        for arrival, env in ready:
            store.remove(arrival, env)
            if acct is not None:
                acct.holdback_depth.dec()
                since = self._acct_held_since.pop(env.hop_mid(), None)
                if since is not None:
                    acct.dwell_ms.record(self._server.sim.now - since)
            if self._tracer is not None:
                self._tracer.channel_holdback_release(
                    self._server.server_id, env
                )
        for _, env in ready:
            self._start_commit(env, item)

    # ------------------------------------------------------------------
    # Persistence / recovery
    # ------------------------------------------------------------------

    def _persist_send_state(self, item: DomainItem, envelope: Envelope) -> None:
        cells = item.clock.size * item.clock.size
        self._server.store.save(
            f"channel.clock.{item.domain_id}",
            item.clock.sync_image(),
            cells=cells,
            owned=True,
        )
        # Envelopes (and their stamps) are immutable; storing the reference
        # is a faithful snapshot.
        self._server.store.put_entry(
            "channel.unacked", envelope.hop_seq, envelope
        )
        self._server.store.save("channel.hop_seq", self._hop_seq)

    def _persist_clock(self, item: DomainItem) -> None:
        cells = item.clock.size * item.clock.size
        self._server.store.save(
            f"channel.clock.{item.domain_id}",
            item.clock.sync_image(),
            cells=cells,
            owned=True,
        )

    def on_crash(self) -> None:
        """Drop all volatile state (holdback queues, pending commits)."""
        for store in self._holdback.values():
            store.clear()
        self._pending_commits.clear()
        self._unacked.clear()
        # account the wipe: the held-back envelopes are gone (the gauge's
        # peak keeps the pre-crash high-water mark)
        self._acct_held_since.clear()
        for item in self._items.values():
            if item.acct is not None:
                item.acct.holdback_depth.set(0.0)

    def on_recover(self) -> None:
        """Reload clocks, the unacked table and the hop counter from the
        persistent store, then retransmit everything unacked."""
        for domain_id, item in self._items.items():
            snapshot = self._server.store.load(f"channel.clock.{domain_id}")
            if snapshot is not None:
                item.clock.restore(snapshot)
        self._unacked = self._server.store.load("channel.unacked", default={})
        self._hop_seq = self._server.store.load("channel.hop_seq", default=0)
        self.resend_unacked()

    def __repr__(self) -> str:
        return (
            f"Channel(server={self._server.server_id}, "
            f"domains={sorted(self._items)}, unacked={len(self._unacked)}, "
            f"heldback={self.heldback_count})"
        )
