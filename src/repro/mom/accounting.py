"""Always-on causality-cost accounting for the MOM (the instrument catalog).

One :class:`BusAccounting` per bus builds every instrument the protocol
layers update, hands each component a *preallocated handle bundle*
(:class:`ServerAccounting`, :class:`DomainAccounting`) at boot, and
registers the snapshot-time collector that pulls state too cheap to push
(queue depths, resident clock cells, clock merge-mode counts, routing
BFS work).

Hot-path discipline (mirrors the tracer's ``_tracer is not None``):

- every per-event update is one attribute access on a bundle the
  component resolved at construction — no registry lookup, no dict, no
  allocation;
- with accounting disabled (``REPRO_METRICS=0`` or
  ``BusConfig(accounting=False)``) the bundles are ``None`` and the hot
  paths pay a single pointer compare per edge;
- accounting never schedules events, never draws randomness, never
  touches the experiment :class:`~repro.simulation.metrics.MetricsRegistry`
  — an accounted run is bit-identical to a disabled one (pinned by
  ``tests/test_metrics_accounting.py``).

Instrument catalog (labels in braces; see ``docs/observability.md``):

====================================  =========  ==================================================
``channel_stamp_bytes_total``         {srv,dom}  causality-stamp bytes serialized (8 B per cell)
``channel_merge_cells_total``         {srv,dom}  matrix cells advanced by receive-side merges
``channel_commits_total``             {srv,dom}  receiver transactions committed
``channel_holdback_enters_total``     {srv,dom}  envelopes that arrived too early
``channel_holdback_depth``            {srv,dom}  live hold-back occupancy (gauge + peak)
``channel_holdback_dwell_ms``         {dom}      histogram of hold-back dwell times
``channel_ack_retries_total``         {srv}      transaction-ACK timeouts -> stamped resends
``channel_forwards_total``            {srv}      router store-and-forward re-posts
``channel_unacked_depth``             {srv}      QueueOUT occupancy (pulled)
``clock_state_cells``                 {srv,dom}  resident matrix cells, s² per member (pulled)
``clock_merges``                      {srv,dom,mode}  window vs full merges (pulled)
``engine_reactions_total``            {srv}      atomic reactions committed
``engine_queue_depth``                {srv}      QueueIN occupancy (pulled)
``engine_reaction_rate``              {srv}      sim-time EWMA of reaction throughput
``bus_notifications_total``           {}         agent-level sends accepted
``bus_delivery_ms``                   {}         cross-server end-to-end delivery histogram
``routing_bfs_trees_total``           {}         lazily materialized BFS trees
``routing_bfs_scans_total``           {}         BFS neighbour scans while building them
====================================  =========  ==================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.metrics.histogram import LogHistogram
from repro.metrics.instruments import Counter, EwmaRate, Gauge
from repro.metrics.registry import Registry

if TYPE_CHECKING:
    from repro.mom.bus import MessageBus

#: Bytes per matrix-clock cell on the wire (``array('q')`` cells).
CELL_BYTES = 8


class DomainAccounting:
    """Per-(server, domain) hot-path handles, stored on the DomainItem."""

    __slots__ = (
        "stamp_bytes",
        "merge_cells",
        "commits",
        "holdback_enters",
        "holdback_depth",
        "dwell_ms",
    )

    def __init__(
        self, registry: Registry, server_id: int, domain_id: str
    ) -> None:
        labels = {"server": str(server_id), "domain": domain_id}
        self.stamp_bytes: Counter = registry.counter(
            "channel_stamp_bytes_total",
            labels,
            help="causality-stamp bytes serialized onto the wire",
        )
        self.merge_cells: Counter = registry.counter(
            "channel_merge_cells_total",
            labels,
            help="matrix-clock cells advanced by receive-side merges",
        )
        self.commits: Counter = registry.counter(
            "channel_commits_total",
            labels,
            help="receiver transactions committed",
        )
        self.holdback_enters: Counter = registry.counter(
            "channel_holdback_enters_total",
            labels,
            help="envelopes held back on arrival (causal dependency unmet)",
        )
        self.holdback_depth: Gauge = registry.gauge(
            "channel_holdback_depth",
            labels,
            help="envelopes currently held back",
        )
        self.dwell_ms: LogHistogram = registry.histogram(
            "channel_holdback_dwell_ms",
            {"domain": domain_id},
            help="sim-time ms an envelope spent held back before release",
        )


class ServerAccounting:
    """Per-server hot-path handles, stored on the AgentServer."""

    __slots__ = (
        "ack_retries",
        "forwards",
        "reactions",
        "reaction_rate",
    )

    def __init__(self, registry: Registry, server_id: int) -> None:
        labels = {"server": str(server_id)}
        self.ack_retries: Counter = registry.counter(
            "channel_ack_retries_total",
            labels,
            help="transaction-ACK timeouts that triggered a stamped resend",
        )
        self.forwards: Counter = registry.counter(
            "channel_forwards_total",
            labels,
            help="router store-and-forward re-posts towards the next domain",
        )
        self.reactions: Counter = registry.counter(
            "engine_reactions_total",
            labels,
            help="atomic agent reactions committed",
        )
        self.reaction_rate: EwmaRate = registry.rate(
            "engine_reaction_rate",
            labels,
            help="EWMA reaction throughput (events/s of sim-time)",
            tau_ms=1000.0,
        )


class BusAccounting:
    """The bus-wide accounting surface: global handles + bundle factory."""

    __slots__ = ("registry", "notifications", "delivery_ms")

    def __init__(self, registry: Registry) -> None:
        self.registry = registry
        self.notifications: Counter = registry.counter(
            "bus_notifications_total",
            help="agent-level sends accepted by the bus",
        )
        self.delivery_ms: LogHistogram = registry.histogram(
            "bus_delivery_ms",
            help="end-to-end delivery of cross-server notifications (ms)",
        )

    def server(self, server_id: int) -> ServerAccounting:
        return ServerAccounting(self.registry, server_id)

    def domain(self, server_id: int, domain_id: str) -> DomainAccounting:
        return DomainAccounting(self.registry, server_id, domain_id)


def install_collector(registry: Registry, bus: "MessageBus") -> None:
    """Register the pull side: depths and resident state, read at
    snapshot time in sorted server order (deterministic)."""

    def collect() -> None:
        for server_id in sorted(bus.servers):
            server = bus.servers[server_id]
            labels = {"server": str(server_id)}
            registry.gauge(
                "channel_unacked_depth",
                labels,
                help="envelopes stamped but not yet transaction-ACKed",
            ).set(float(server.channel.unacked_count))
            registry.gauge(
                "engine_queue_depth",
                labels,
                help="notifications waiting in the engine's QueueIN",
            ).set(float(server.engine.queued))
            for domain_id, item in sorted(
                server.channel.domain_items.items()
            ):
                dlabels = {"server": str(server_id), "domain": domain_id}
                clock = item.clock
                registry.gauge(
                    "clock_state_cells",
                    dlabels,
                    help="resident matrix-clock cells (s^2 per member)",
                ).set(float(clock.size * clock.size))
                for mode in ("window", "full"):
                    registry.gauge(
                        "clock_merges",
                        {**dlabels, "mode": mode},
                        help="deliveries by merge strategy (window = only "
                        "changed cells replayed)",
                    ).set(float(getattr(clock, f"stat_{mode}_merges", 0)))
                # resync the live value after crashes wiped stores; the
                # push side keeps the peak honest between snapshots
                store_depth = server.channel.holdback_depth(domain_id)
                registry.gauge(
                    "channel_holdback_depth", dlabels
                ).set(float(store_depth))

    registry.add_collector(collect)
