"""Sharded-parallel bus execution, bit-identical to sequential.

:func:`make_bus` is the front door: given a :class:`BusConfig` it returns
either a classic sequential :class:`~repro.mom.bus.MessageBus` or a
:class:`ShardedBus` that runs one event kernel per server shard in forked
worker processes under conservative (LBTS + lookahead) synchronization —
see ``docs/parallel.md`` for the full argument. The observable results —
traces, causality verdicts, metrics snapshots, ``cost_snapshot()`` bytes —
are **identical** in both modes; parallelism only changes wall-clock time.

Eligibility (anything else falls back to sequential, silently):

- the latency model is deterministic (``ConstantLatency``) with
  ``min_ms > 0`` — the lookahead of the conservative sync;
- ``loss_rate == 0`` — loss draws would be consumed in shard-dependent
  order;
- the shard plan yields at least two non-empty shards (multi-domain
  topology, at least two workers requested);
- the platform supports the ``fork`` start method (agents and scripted
  payloads are shipped to workers by memory inheritance, not pickling).

The :class:`ShardedBus` mirrors the scripting surface of the sequential
bus (``deploy`` / ``schedule_send`` / ``schedule_crash`` /
``schedule_partition`` / ``start`` / ``run`` / ``run_until_idle``) and its
read surface (``metrics``, ``accounting``, ``app_trace``,
``check_app_causality``, ``cost_snapshot``, ``total_*``, ``stats_table``).
Workers replay only the script entries owned by their local servers, in
recorded order, so every per-owner event-key counter matches the
sequential kernel exactly; after each run the parent gathers worker state
and rebuilds the merged registries/traces from scratch (worker state is
cumulative, so re-merging stays idempotent).
"""

from __future__ import annotations

import math
import multiprocessing
import os
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.causality.checker import (
    CausalityReport,
    check_all_domains,
    check_trace,
)
from repro.causality.trace import Trace
from repro.errors import ConfigurationError, SimulationError
from repro.metrics.registry import Registry
from repro.mom.agent import Agent
from repro.mom.bus import MessageBus
from repro.mom.config import BusConfig
from repro.mom.identifiers import AgentId
from repro.simulation.metrics import MetricsRegistry
from repro.simulation.shard import ShardContext
from repro.simulation.sync import ShardCoordinator, serve
from repro.simulation.telemetry import (
    CoordinatorTelemetry,
    WorkerTelemetry,
)
from repro.simulation.telemetry import enabled as telemetry_enabled
from repro.simulation.telemetry import merged as merge_telemetry
from repro.topology.graph import validate_topology
from repro.topology.shardplan import ShardPlan, build_shard_plan, lookahead_ms

AnyBus = Union[MessageBus, "ShardedBus"]

#: Script entry tags (primitive, per-owner replayable — docs/parallel.md).
_SEND = "send"
_CRASH = "crash"
_PARTITION = "partition"


def resolve_mode(config: BusConfig) -> Tuple[str, int]:
    """The effective (mode, workers) after the ``REPRO_PARALLEL`` override.

    ``REPRO_PARALLEL``: ``0``/``off``/``no``/``false`` force sequential,
    ``auto`` enables auto-selection with the config's (or the machine's)
    worker count, an integer enables auto-selection with that many
    workers. Unset defers to ``config.parallel`` / ``config.workers``.
    """
    workers = config.workers or os.cpu_count() or 1
    env = os.environ.get("REPRO_PARALLEL")
    if env is not None:
        value = env.strip().lower()
        if value in ("", "0", "off", "no", "false"):
            return ("off", 0)
        if value == "auto":
            return ("auto", workers)
        try:
            count = int(value)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_PARALLEL must be 'off', 'auto' or an integer, "
                f"got {env!r}"
            ) from None
        return ("auto", count) if count > 1 else ("off", 0)
    if config.parallel == "off":
        return ("off", 0)
    return ("auto", workers)


def shard_eligibility(
    config: BusConfig, workers: int
) -> Tuple[Optional[ShardPlan], str]:
    """``(plan, reason)``: a usable shard plan, or ``(None, why-not)``."""
    latency = config.latency_model()
    if not latency.deterministic:
        return None, "latency model draws randomness per packet"
    if latency.min_ms <= 0:
        return None, "zero minimum latency leaves no lookahead"
    if config.loss_rate:
        return None, "packet loss draws randomness per packet"
    if workers < 2:
        return None, "fewer than two workers requested"
    if "fork" not in multiprocessing.get_all_start_methods():
        return None, "platform lacks the fork start method"
    plan = build_shard_plan(config.topology, workers)
    if plan.worker_count < 2:
        return None, "topology shards into a single worker"
    return plan, "eligible"


def make_bus(config: BusConfig) -> AnyBus:
    """Build the right bus for ``config``: sharded when enabled *and*
    eligible, the classic sequential :class:`MessageBus` otherwise."""
    mode, workers = resolve_mode(config)
    if mode == "off":
        return MessageBus(config)
    plan, _reason = shard_eligibility(config, workers)
    if plan is None:
        return MessageBus(config)
    return ShardedBus(config, plan)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _worker_main(
    conn: Any,
    config: BusConfig,
    shard_id: int,
    members: Any,
    deployments: List[Tuple[int, Agent]],
    script: List[tuple],
) -> None:
    """Entry point of one forked shard worker.

    Builds an ordinary :class:`MessageBus` restricted to ``members``,
    re-deploys the (memory-inherited) local agents in global deployment
    order, replays the locally-owned script entries in recorded order —
    reproducing the sequential kernel's per-owner event keys — then serves
    the coordinator's grant/collect loop.
    """
    bus = MessageBus(config, shard=ShardContext(shard_id, members))
    for server_id, agent in deployments:
        if server_id in members:
            # this is the fork's private copy; re-deploying re-assigns the
            # identical (server, per-server-index) id the parent computed
            agent._agent_id = None
            bus.deploy(agent, server_id)
    for entry in script:
        kind = entry[0]
        if kind == _SEND:
            _, at, sender, target, payload = entry
            if sender.server in members:
                bus.schedule_send(at, sender, target, payload)
        elif kind == _CRASH:
            _, at, server_id, down_for = entry
            if server_id in members:
                bus.schedule_crash(at, server_id, down_for)
        elif kind == _PARTITION:
            _, at, first, second, duration = entry
            for owner in (first, second):
                if owner in members:
                    bus.sim.schedule_setup(
                        at, owner, bus.network.partition, first, second
                    )
                    bus.sim.schedule_setup(
                        at + duration, owner, bus.network.heal, first, second
                    )
        else:  # pragma: no cover - parent and worker share this module
            raise ConfigurationError(f"unknown script entry {kind!r}")
    bus.start()
    worker_telemetry = (
        WorkerTelemetry(shard_id) if telemetry_enabled() else None
    )
    serve(
        conn,
        bus.sim,
        bus.network,
        lambda tag: _collect_state(bus),
        telemetry=worker_telemetry,
        flight=lambda exc: _flight_payload(bus, exc),
    )


def _flight_payload(
    bus: MessageBus, exc: BaseException
) -> Optional[Dict[str, Any]]:
    """The worker's crash flight record, shipped over the pipe.

    mom cannot import the obs layer (R006), so everything goes through
    the duck-typed tracer handle: ``dump()`` writes the full artifact
    directory from inside the worker when it can; the raw ring rows ride
    the pipe regardless, so the coordinator can still write an
    ``events.jsonl`` even when the worker-side dump failed. Returns
    ``None`` when tracing is off or autodumps are disabled."""
    if os.environ.get("REPRO_OBS_AUTODUMP", "1") == "0":
        return None
    tracer = getattr(bus, "_obs_tracer", None)
    record: Optional[Dict[str, Any]] = None
    if tracer is not None:
        path: Optional[str] = None
        try:
            path = tracer.dump("shard-worker-crash")
        except Exception:
            path = None  # unwritable tempdir: the rows still ship
        rows: List[Dict[str, Any]] = [
            {
                "record": "meta",
                "now": bus.sim.now,
                "capacity": tracer.ring.capacity,
                "next_seq": tracer.ring.next_seq,
                "dropped": tracer.ring.dropped,
                "server_ids": sorted(bus.servers),
                "domains": {d: list(s) for d, s in tracer.domains.items()},
                "reason": "shard-worker-crash",
                "error": repr(exc),
            }
        ]
        rows.extend(
            {"record": "event", **event._asdict()}
            for event in tracer.ring.events()
        )
        record = {"path": path, "rows": rows}
    return record


def _dump_trace(trace: Optional[Trace]) -> Optional[dict]:
    if trace is None:
        return None
    return {
        process: [(e.kind, e.message) for e in trace.events_of(process)]
        for process in trace.processes
    }


def _collect_state(bus: MessageBus) -> Dict[str, Any]:
    """Everything the parent needs to reconstruct the sequential read
    surface, cumulative as of now (pickled through the worker pipe)."""
    state: Dict[str, Any] = {
        "metrics": bus.metrics.dump_state(),
        "accounting": (
            bus.accounting.dump_state()
            if bus.accounting is not None
            else None
        ),
        "scan_counts": (
            dict(bus.routing_index.scan_counts)
            if bus.routing_index is not None
            else {}
        ),
        "app_trace": _dump_trace(bus.app_trace),
        "hop_trace": _dump_trace(bus.hop_trace),
        "agents": [
            (agent.agent_id.server, agent.agent_id.local, agent.snapshot())
            for server in bus.servers.values()
            for agent in server.engine.agents
        ],
        "network": (
            bus.network.packets_sent,
            bus.network.packets_dropped,
            bus.network.cells_transmitted,
        ),
        "persisted_cells": bus.total_persisted_cells(),
        "clock_state_cells": bus.total_clock_state_cells(),
        "server_rows": [
            (
                server_id,
                server.is_crashed,
                len(server.channel.domain_items),
                server.channel.unacked_count,
                server.channel.heldback_count,
                server.engine.queued,
                server.store.cells_written,
                server.processor.busy_total,
            )
            for server_id, server in sorted(bus.servers.items())
        ],
    }
    tracer = getattr(bus, "_obs_tracer", None)
    state["obs_events"] = list(tracer.ring.events()) if tracer else None
    state["obs_hists"] = (
        {name: hist.dump_state() for name, hist in tracer.histograms.items()}
        if tracer
        else None
    )
    state["obs_cpu"] = list(tracer.cpu_slices) if tracer else None
    state["obs_ring"] = (
        {
            "capacity": tracer.ring.capacity,
            "next_seq": tracer.ring.next_seq,
            "dropped": tracer.ring.dropped,
        }
        if tracer
        else None
    )
    return state


# ----------------------------------------------------------------------
# Parent-side facades
# ----------------------------------------------------------------------


class _SimClock:
    """The read-only slice of :class:`Simulator` the parent exposes as
    ``bus.sim``: the merged clock and event count. Scheduling goes through
    the bus-level ``schedule_*`` methods instead."""

    def __init__(self) -> None:
        self.now = 0.0
        self.processed_events = 0

    def __repr__(self) -> str:
        return f"_SimClock(now={self.now:.3f})"


class _NetworkStats:
    """The read-only slice of :class:`Network` the parent exposes as
    ``bus.network``: merged wire counters plus the latency model."""

    def __init__(self, latency: Any) -> None:
        self._latency = latency
        self.packets_sent = 0
        self.packets_dropped = 0
        self.cells_transmitted = 0

    @property
    def latency(self) -> Any:
        return self._latency

    def __repr__(self) -> str:
        return (
            f"_NetworkStats(sent={self.packets_sent}, "
            f"dropped={self.packets_dropped})"
        )


class ShardedBus:
    """A bus whose simulation runs sharded across forked workers.

    Scripting mirrors :class:`MessageBus` (``deploy``, ``schedule_send``,
    ``schedule_crash``, ``schedule_partition``) but must complete before
    :meth:`start` — workers fork there and replay the recorded script.
    After every :meth:`run` / :meth:`run_until_idle` the parent merges
    worker state, so agents, traces, metrics and accounting read exactly
    as they would after the same sequential run.
    """

    def __init__(self, config: BusConfig, plan: ShardPlan):
        if config.validate:
            validate_topology(config.topology)
        self.config = config
        self.plan = plan
        self.lookahead = lookahead_ms(config.latency_model().min_ms)
        if self.lookahead <= 0:
            raise ConfigurationError(
                "sharded execution needs a positive minimum latency"
            )
        self.sim = _SimClock()
        self.network = _NetworkStats(config.latency_model())
        self.metrics = MetricsRegistry()
        self._accounting_enabled = (
            config.accounting and os.environ.get("REPRO_METRICS") != "0"
        )
        self.accounting: Optional[Registry] = (
            Registry() if self._accounting_enabled else None
        )
        self.app_trace: Optional[Trace] = (
            Trace() if config.record_app_trace else None
        )
        self.hop_trace: Optional[Trace] = (
            Trace() if config.record_hop_trace else None
        )
        self._deployments: List[Tuple[int, Agent]] = []
        self._agents: Dict[AgentId, Agent] = {}
        self._agent_counts: Dict[int, int] = {}
        self._script: List[tuple] = []
        self._started = False
        self._finished = False
        self._coordinator: Optional[ShardCoordinator] = None
        self._procs: List[Any] = []
        self._shard_map: Dict[int, int] = {
            server: index
            for index, shard in enumerate(plan.shards)
            for server in shard
        }
        self._persisted_cells = 0
        self._clock_state_cells = 0
        self._server_rows: List[tuple] = []
        self._obs_events: List[Any] = []
        self._obs_hist_states: List[Dict[str, Any]] = []
        self._obs_cpu: List[tuple] = []
        self._obs_ring_meta: Optional[Dict[str, int]] = None
        self._telemetry: Optional[CoordinatorTelemetry] = (
            CoordinatorTelemetry(plan.worker_count, self.lookahead)
            if telemetry_enabled()
            else None
        )
        self._worker_telemetry: List[Optional[Dict[str, Any]]] = []
        self._shard_telemetry: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Scripting (pre-start)
    # ------------------------------------------------------------------

    def _check_scriptable(self, what: str) -> None:
        if self._started:
            raise ConfigurationError(
                f"{what} after start() is not supported on a sharded bus; "
                "script everything first, then start"
            )

    def deploy(self, agent: Agent, server_id: int) -> AgentId:
        """Install an agent (before :meth:`start`); same ids as sequential."""
        self._check_scriptable("deploy")
        if server_id not in self.config.topology.servers:
            raise ConfigurationError(f"unknown server {server_id}")
        local = self._agent_counts.get(server_id, 0)
        self._agent_counts[server_id] = local + 1
        agent_id = AgentId(server_id, local)
        agent._deployed(agent_id)
        self._deployments.append((server_id, agent))
        self._agents[agent_id] = agent
        return agent_id

    def schedule_send(
        self, at: float, sender: AgentId, target: AgentId, payload: Any
    ) -> None:
        """Script a send at absolute time ``at`` (see
        :meth:`MessageBus.schedule_send`)."""
        self._check_scriptable("schedule_send")
        self._script.append((_SEND, at, sender, target, payload))

    def schedule_crash(
        self, at: float, server_id: int, down_for: float
    ) -> None:
        """Script a fail-stop crash with recovery ``down_for`` ms later."""
        self._check_scriptable("schedule_crash")
        if server_id not in self.config.topology.servers:
            raise ConfigurationError(f"unknown server {server_id}")
        self._script.append((_CRASH, at, server_id, down_for))

    def schedule_partition(
        self, at: float, first: int, second: int, duration: float
    ) -> None:
        """Script a network partition between two servers."""
        self._check_scriptable("schedule_partition")
        self._script.append((_PARTITION, at, first, second, duration))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Fork one worker per shard and boot every agent (at t=0)."""
        if self._started:
            raise ConfigurationError("bus already started")
        self._started = True
        ctx = multiprocessing.get_context("fork")
        conns = []
        for shard_id, members in enumerate(self.plan.shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    self.config,
                    shard_id,
                    members,
                    self._deployments,
                    self._script,
                ),
                daemon=True,
                name=f"repro-shard-{shard_id}",
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            self._procs.append(proc)
        self._coordinator = ShardCoordinator(
            conns,
            self.lookahead,
            self._shard_map.__getitem__,
            telemetry=self._telemetry,
        )

    def run(self, until: Optional[float] = None) -> int:
        """Advance the sharded simulation (semantics of
        :meth:`Simulator.run`); merges worker state afterwards."""
        coordinator = self._require_running("run")
        if coordinator is None:  # already quiesced and shut down
            if until is not None and until > self.sim.now:
                self.sim.now = until
            return 0
        fired = coordinator.advance(until=until)
        self._sync()
        return fired

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run to quiescence, then release the worker processes."""
        coordinator = self._require_running("run_until_idle")
        if coordinator is None:
            return 0
        fired = coordinator.advance(max_events=max_events)
        if not coordinator.idle:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        self._sync()
        self.close()
        return fired

    def _require_running(self, what: str) -> Optional[ShardCoordinator]:
        if not self._started:
            raise ConfigurationError(
                f"{what}() before start() on a sharded bus"
            )
        return self._coordinator if not self._finished else None

    def close(self) -> None:
        """Shut the workers down (idempotent; state merged so far stays)."""
        if self._finished:
            return
        self._finished = True
        if self._coordinator is not None:
            self._coordinator.finish()
        for proc in self._procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - safety net
                proc.terminate()
        self._procs = []

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            if self._started and not self._finished:
                self.close()
        except (OSError, ValueError, AttributeError):
            # interpreter shutdown: pipes may be gone, modules half-torn
            return

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    def _sync(self) -> None:
        """Rebuild the merged read surface from fresh worker state dumps.

        Worker state is cumulative, so every sync rebuilds from scratch —
        repeated syncs after successive ``run`` calls stay exact."""
        assert self._coordinator is not None
        states = self._coordinator.collect()
        self.sim.now = self._coordinator.now
        self.sim.processed_events = self._coordinator.processed_events

        metrics = MetricsRegistry()
        for state in states:
            metrics.merge_state(state["metrics"])
        self.metrics = metrics

        if self._accounting_enabled:
            registry = Registry()
            for state in states:
                if state["accounting"] is not None:
                    registry.merge_state(state["accounting"])
            # Routing BFS cost: shards materialize overlapping destination
            # trees, so plain counter sums over-count. The per-destination
            # scan counts are pure functions of (topology, dest); the union
            # over shards is exactly the sequential tree set.
            scan_union: Dict[int, int] = {}
            for state in states:
                scan_union.update(state["scan_counts"])
            if len(registry):
                registry.counter("routing_bfs_trees_total").value = len(
                    scan_union
                )
                registry.counter("routing_bfs_scans_total").value = sum(
                    scan_union.values()
                )
            self.accounting = registry

        if self.config.record_app_trace:
            self.app_trace = self._merge_traces(
                [state["app_trace"] for state in states]
            )
        if self.config.record_hop_trace:
            self.hop_trace = self._merge_traces(
                [state["hop_trace"] for state in states]
            )

        for state in states:
            for server, local, snapshot in state["agents"]:
                if snapshot is not None:
                    self._agents[AgentId(server, local)].restore(snapshot)

        self.network.packets_sent = sum(s["network"][0] for s in states)
        self.network.packets_dropped = sum(s["network"][1] for s in states)
        self.network.cells_transmitted = sum(
            s["network"][2] for s in states
        )
        self._persisted_cells = sum(s["persisted_cells"] for s in states)
        self._clock_state_cells = sum(
            s["clock_state_cells"] for s in states
        )
        self._server_rows = sorted(
            row for state in states for row in state["server_rows"]
        )
        merged_events = sorted(
            (event.t, shard, event.seq, event)
            for shard, state in enumerate(states)
            if state["obs_events"] is not None
            for event in state["obs_events"]
        )
        # Per-shard ring seqs collide after the merge; re-sequence in the
        # global (t, shard, seq) order so seq-based reasoning — the `why`
        # blocker scan, the critpath release linkage — works on merged
        # dumps exactly as on sequential ones. Per-server relative order
        # is preserved: a server lives on exactly one shard.
        self._obs_events = [
            entry[3]._replace(seq=index)
            for index, entry in enumerate(merged_events)
        ]
        self._obs_hist_states = [
            state["obs_hists"]
            for state in states
            if state.get("obs_hists")
        ]
        self._obs_cpu = sorted(
            (
                row
                for state in states
                for row in (state.get("obs_cpu") or [])
            ),
            key=lambda row: (row[1], row[0]),
        )
        ring_rows = [
            state["obs_ring"] for state in states if state.get("obs_ring")
        ]
        self._obs_ring_meta = (
            {
                "capacity": sum(r["capacity"] for r in ring_rows),
                "next_seq": sum(r["next_seq"] for r in ring_rows),
                "dropped": sum(r["dropped"] for r in ring_rows),
            }
            if ring_rows
            else None
        )
        self._worker_telemetry = list(self._coordinator.worker_telemetry)
        if self._telemetry is not None:
            self._shard_telemetry = merge_telemetry(
                self._telemetry.dump(),
                [row for row in self._worker_telemetry if row],
                self.plan.worker_count,
                self.lookahead,
                coordinator_wait_s=self._telemetry.wall_wait_s,
            )

    @staticmethod
    def _merge_traces(dumps: List[Optional[dict]]) -> Trace:
        """Union of per-shard local histories, re-validated strictly.

        Every trace process (agent or server) lives on exactly one shard,
        so its complete local history is recorded there; the union is the
        sequential trace and :meth:`Trace.from_histories` re-checks
        send/receive consistency across the stitched shards."""
        histories: Dict[Any, list] = {}
        for dump in dumps:
            if dump is None:
                continue
            for process, local in dump.items():
                if process in histories:
                    raise SimulationError(
                        f"trace process {process!r} recorded on two shards"
                    )
                histories[process] = local
        return Trace.from_histories(histories)

    # ------------------------------------------------------------------
    # Read surface (parity with MessageBus)
    # ------------------------------------------------------------------

    def agent(self, agent_id: AgentId) -> Agent:
        try:
            return self._agents[agent_id]
        except KeyError:
            raise ConfigurationError(
                f"no agent {agent_id!r} deployed"
            ) from None

    def check_app_causality(self) -> CausalityReport:
        """Check the merged agent-level trace for causal delivery."""
        if self.app_trace is None:
            raise ConfigurationError("app trace recording is disabled")
        return check_trace(self.app_trace, scope="app")

    def check_domain_causality(self) -> Dict[Any, CausalityReport]:
        """Check the merged hop-level trace restricted to each domain."""
        if self.hop_trace is None:
            raise ConfigurationError("hop trace recording is disabled")
        membership = self.config.topology.membership()
        return check_all_domains(self.hop_trace, membership)

    def export_app_trace(self, stream: Any) -> int:
        """Write the merged app trace as JSONL — the exact artifact the
        sequential bus produces (the export only reads ``app_trace``)."""
        if self.app_trace is None:
            raise ConfigurationError("app trace recording is disabled")
        return MessageBus.export_app_trace(self, stream)  # type: ignore[arg-type]

    def cost_snapshot(self) -> Optional[Dict[str, Any]]:
        """The merged accounting snapshot — byte-identical to the
        sequential run's (the differential suite pins this)."""
        if self.accounting is None:
            return None
        return self.accounting.snapshot(
            now=self.sim.now,
            meta={
                "servers": len(self.config.topology.servers),
                "domains": sorted(self.config.topology.domain_ids),
                "seed": self.config.seed,
                "clock": self.config.clock_algorithm,
            },
        )

    def total_persisted_cells(self) -> int:
        return self._persisted_cells

    def total_clock_state_cells(self) -> int:
        return self._clock_state_cells

    def trace_events(self) -> List[Any]:
        """Merged observability events (when ``REPRO_TRACE`` attached a
        tracer inside each worker), ordered by ``(time, shard, seq)`` and
        re-sequenced globally in that order."""
        return list(self._obs_events)

    def obs_histogram_states(self) -> List[Dict[str, Any]]:
        """Per-shard tracer histogram ``dump_state`` payloads (merge them
        with :func:`repro.obs.shardmon.merged_trace_dump`)."""
        return list(self._obs_hist_states)

    def obs_cpu_slices(self) -> List[tuple]:
        """Merged tracer CPU slices, ordered by (start, server)."""
        return list(self._obs_cpu)

    def obs_ring_meta(self) -> Optional[Dict[str, int]]:
        """Summed ring capacity/next_seq/dropped across the worker rings."""
        return None if self._obs_ring_meta is None else dict(
            self._obs_ring_meta
        )

    def shard_telemetry(self) -> Optional[Dict[str, Any]]:
        """The merged shardmon payload of the last sync: deterministic
        ``sim`` observables plus the separated ``wallclock`` section.
        ``None`` before the first run or under ``REPRO_SHARDMON=0``."""
        return self._shard_telemetry

    @property
    def flight_records(self) -> List[str]:
        """Artifact paths of worker flight records written on crashes."""
        if self._coordinator is None:
            return []
        return list(self._coordinator.flight_records)

    def stats_table(self) -> str:
        """Per-server operational summary, merged across shards."""
        header = (
            f"{'server':>6}  {'state':>7}  {'domains':>7}  {'unacked':>7}  "
            f"{'heldback':>8}  {'queued':>6}  {'disk cells':>10}  "
            f"{'cpu ms':>8}"
        )
        lines = [header, "-" * len(header)]
        for row in self._server_rows:
            (server_id, crashed, n_domains, unacked, heldback, queued,
             cells, busy) = row
            state = "crashed" if crashed else "up"
            lines.append(
                f"{server_id:>6}  {state:>7}  {n_domains:>7}  "
                f"{unacked:>7}  {heldback:>8}  {queued:>6}  "
                f"{cells:>10}  {busy:>8.1f}"
            )
        lines.append(
            f"t={self.sim.now:.1f}ms  "
            f"packets={self.network.packets_sent}  "
            f"wire_cells={self.network.cells_transmitted}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ShardedBus(shards={self.plan.worker_count}, "
            f"servers={len(self.config.topology.servers)}, "
            f"t={self.sim.now:.1f}ms)"
        )
