"""DomainItem: a server's per-domain state (§5).

The paper's structure, transliterated::

    Class DomainItem {
        short domainId;          // domain identifier
        short domainServerId;    // identifier of the server in this domain
        short[] idTable;         // ServerId <-> domainServerId correspondence
        MatrixClock mclock;      // the matrix clock of the domain
        DomainItem next;         // a pointer to the next domain
    }

A causal router-server simply holds several DomainItems — "a server can
belong to an arbitrary number of domains, and any server can be a
causal-router-server".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.clocks.base import CausalClock
from repro.errors import TopologyError
from repro.protocol.core import CausalCore
from repro.topology.domains import Domain

if TYPE_CHECKING:
    from repro.mom.accounting import DomainAccounting


class DomainItem:
    """One server's view of one domain: local identity + domain clock."""

    __slots__ = (
        "domain", "domain_server_id", "core", "_clock", "_local_ids", "acct"
    )

    def __init__(
        self, domain: Domain, server_id: int, core: CausalCore
    ) -> None:
        """Args:
        domain: the topology domain this item covers.
        server_id: this server's *global* id; must be a member.
        core: the causal-delivery core (:mod:`repro.protocol`) that
            creates and drives this domain's clock.
        """
        self.domain = domain
        # The idTable, materialized once: Domain.local_id is a linear
        # tuple.index scan, too slow to repeat on every hop.
        self._local_ids: Dict[int, int] = {
            server: local for local, server in enumerate(domain.servers)
        }
        self.domain_server_id = self._local_ids_lookup(server_id)
        self.core = core
        self._clock = core.create_clock(domain.size, self.domain_server_id)
        # cost-accounting handle bundle, attached by the Channel at boot;
        # None = accounting off (one pointer compare on the hot path)
        self.acct: Optional["DomainAccounting"] = None

    @property
    def domain_id(self) -> str:
        return self.domain.domain_id

    @property
    def clock(self) -> CausalClock:
        return self._clock

    def _local_ids_lookup(self, global_server: int) -> int:
        try:
            return self._local_ids[global_server]
        except KeyError:
            raise TopologyError(
                f"server {global_server} is not in domain {self.domain_id!r}"
            ) from None

    def local_id(self, global_server: int) -> int:
        """§5's idTable lookup: global ServerId → domainServerId."""
        return self._local_ids_lookup(global_server)

    def global_id(self, domain_server_id: int) -> int:
        """Reverse lookup: domainServerId → global ServerId."""
        return self.domain.global_id(domain_server_id)

    def __repr__(self) -> str:
        return (
            f"DomainItem({self.domain_id!r}, "
            f"domainServerId={self.domain_server_id}, "
            f"size={self.domain.size})"
        )
