"""The §6.1 measurement protocol, as agents.

"We have created an agent on each agent server, which sends back received
messages (ping-pong). Messages are sent by a main agent on server 0, which
computes the round-trip average time for 100 sends. We did three series of
tests: unicast on the local server, unicast on a remote server, broadcast
on all servers."

The echo partner is :class:`repro.mom.agent.EchoAgent`; the two main
agents here drive the unicast and broadcast series. Round counts are
configurable — with the default constant-latency network the simulation is
deterministic, so a handful of rounds already yields the exact mean the
paper needed 100 noisy rounds for.

These drivers are ordinary agents with no dependency on the bench harness,
so they live in :mod:`repro.mom` (the scenario runner needs them too);
:mod:`repro.bench.workloads` re-exports them for compatibility.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import ConfigurationError
from repro.mom.agent import Agent, ReactionContext
from repro.mom.identifiers import AgentId


class PingPongDriver(Agent):
    """The main agent of the unicast series: sends a ping, waits for the
    echo, repeats; records per-round round-trip times."""

    def __init__(self, rounds: int):
        super().__init__()
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds
        self.target: Optional[AgentId] = None
        self.completed = 0
        self.rtts: List[float] = []
        self._round_started = 0.0

    def bind(self, target: AgentId) -> None:
        """Point the driver at its echo partner (call before the bus starts)."""
        self.target = target

    def on_boot(self, ctx: ReactionContext) -> None:
        if self.target is None:
            raise ConfigurationError("PingPongDriver.bind() was never called")
        self._round_started = ctx.now
        ctx.send(self.target, 0)

    def react(self, ctx: ReactionContext, sender: AgentId, payload: Any) -> None:
        assert self.target is not None  # on_boot already enforced bind()
        self.rtts.append(ctx.now - self._round_started)
        self.completed += 1
        if self.completed < self.rounds:
            self._round_started = ctx.now
            ctx.send(self.target, self.completed)

    @property
    def mean_rtt(self) -> float:
        if not self.rtts:
            raise ConfigurationError("no completed rounds yet")
        return sum(self.rtts) / len(self.rtts)


class OpenLoopDriver(Agent):
    """Open-loop load generator: sends to its target every ``period_ms``,
    regardless of whether previous messages were delivered — the standard
    way to measure delivery latency under load (saturation shows up as a
    growing gap between send rate and service rate).

    Pacing uses the engine's volatile timers (``ctx.send_after``)."""

    _TICK = "__open_loop_tick__"

    def __init__(self, period_ms: float, count: int):
        super().__init__()
        if period_ms <= 0:
            raise ConfigurationError(f"period must be > 0, got {period_ms}")
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        self.period_ms = period_ms
        self.count = count
        self.target: Optional[AgentId] = None
        self.sent = 0
        self.started_at = 0.0

    def bind(self, target: AgentId) -> None:
        self.target = target

    def on_boot(self, ctx: ReactionContext) -> None:
        if self.target is None:
            raise ConfigurationError("OpenLoopDriver.bind() was never called")
        self.started_at = ctx.now
        self._fire(ctx)

    def react(self, ctx: ReactionContext, sender: AgentId, payload: Any) -> None:
        if payload == self._TICK:
            self._fire(ctx)

    def _fire(self, ctx: ReactionContext) -> None:
        assert self.target is not None  # on_boot already enforced bind()
        # The payload carries the *intended* send instant of this message
        # (the open-loop schedule), so the sink can measure true sojourn
        # time including any sender-side queueing the load causes.
        intended = self.started_at + self.sent * self.period_ms
        ctx.send(self.target, intended)
        self.sent += 1
        if self.sent < self.count:
            # pace against the absolute schedule so per-tick reaction costs
            # do not accumulate as drift
            next_intended = self.started_at + self.sent * self.period_ms
            ctx.send_after(max(0.0, next_intended - ctx.now), ctx.my_id, self._TICK)


class SinkAgent(Agent):
    """The passive end of the open-loop experiment: records, per message,
    the sojourn time from intended send to delivery."""

    def __init__(self):
        super().__init__()
        self.received = 0
        self.sojourn_ms: List[float] = []

    def react(self, ctx: ReactionContext, sender: AgentId, payload: Any) -> None:
        if payload != OpenLoopDriver._TICK:
            self.received += 1
            self.sojourn_ms.append(ctx.now - payload)


class BroadcastDriver(Agent):
    """The main agent of the broadcast series: each round sends one message
    to an echo agent on *every* server and waits for all echoes before
    starting the next round; records per-round completion times."""

    def __init__(self, rounds: int):
        super().__init__()
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds
        self.targets: List[AgentId] = []
        self.completed = 0
        self.round_times: List[float] = []
        self._pending = 0
        self._round_started = 0.0

    def bind(self, targets: List[AgentId]) -> None:
        """Set the echo partners, one per server."""
        if not targets:
            raise ConfigurationError("broadcast needs at least one target")
        self.targets = list(targets)

    def on_boot(self, ctx: ReactionContext) -> None:
        if not self.targets:
            raise ConfigurationError("BroadcastDriver.bind() was never called")
        self._start_round(ctx)

    def _start_round(self, ctx: ReactionContext) -> None:
        self._round_started = ctx.now
        self._pending = len(self.targets)
        for target in self.targets:
            ctx.send(target, self.completed)

    def react(self, ctx: ReactionContext, sender: AgentId, payload: Any) -> None:
        self._pending -= 1
        if self._pending > 0:
            return
        self.round_times.append(ctx.now - self._round_started)
        self.completed += 1
        if self.completed < self.rounds:
            self._start_round(ctx)

    @property
    def mean_round_time(self) -> float:
        if not self.round_times:
            raise ConfigurationError("no completed rounds yet")
        return sum(self.round_times) / len(self.round_times)
