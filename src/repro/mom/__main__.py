"""Scenario CLI: run a declarative MOM scenario and print the audit.

Usage::

    python -m repro.mom scenario.json
    python -m repro.mom scenario.json --stats      # per-server table too
    python -m repro.mom scenario.json --trace out.jsonl
    python -m repro.mom scenario.json --metrics-out costs.json
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.mom.scenario import run_scenario


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mom",
        description="run a declarative MOM scenario (see repro.mom.scenario)",
    )
    parser.add_argument("scenario", help="path to a scenario JSON file")
    parser.add_argument(
        "--stats", action="store_true", help="print the per-server table"
    )
    parser.add_argument(
        "--trace", metavar="PATH", help="export the app trace as JSONL"
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the cost-accounting snapshot as JSON "
        "(view with `python -m repro.metrics top PATH`)",
    )
    args = parser.parse_args(argv)

    try:
        result = run_scenario(args.scenario)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(result.summary())
    if args.stats:
        print()
        print(result.bus.stats_table())
    if args.trace:
        with open(args.trace, "w") as handle:
            events = result.bus.export_app_trace(handle)
        print(f"app trace ({events} events) written to {args.trace}")
    if args.metrics_out:
        snapshot = result.bus.cost_snapshot()
        if snapshot is None:
            print(
                "error: cost accounting is disabled (REPRO_METRICS=0)",
                file=sys.stderr,
            )
            return 2
        from repro.metrics import write_json

        with open(args.metrics_out, "w") as handle:
            write_json(snapshot, handle)
        print(f"cost snapshot written to {args.metrics_out}")
    return 0 if result.causal_ok else 1


if __name__ == "__main__":
    sys.exit(main())
