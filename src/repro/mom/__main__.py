"""Scenario CLI: run a declarative MOM scenario and print the audit.

Usage::

    python -m repro.mom scenario.json
    python -m repro.mom scenario.json --stats      # per-server table too
    python -m repro.mom scenario.json --trace out.jsonl
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.mom.scenario import run_scenario


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mom",
        description="run a declarative MOM scenario (see repro.mom.scenario)",
    )
    parser.add_argument("scenario", help="path to a scenario JSON file")
    parser.add_argument(
        "--stats", action="store_true", help="print the per-server table"
    )
    parser.add_argument(
        "--trace", metavar="PATH", help="export the app trace as JSONL"
    )
    args = parser.parse_args(argv)

    try:
        result = run_scenario(args.scenario)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(result.summary())
    if args.stats:
        print()
        print(result.bus.stats_table())
    if args.trace:
        with open(args.trace, "w") as handle:
            events = result.bus.export_app_trace(handle)
        print(f"app trace ({events} events) written to {args.trace}")
    return 0 if result.causal_ok else 1


if __name__ == "__main__":
    sys.exit(main())
